"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report;
these helpers format them without any plotting dependency.
"""

from __future__ import annotations


def format_cell(value, float_format: str = "{:.2f}") -> str:
    """Format one cell: floats via ``float_format``, rest via str."""
    if isinstance(value, float):
        return float_format.format(value)
    return str(value)


def render_table(
    headers: list[str],
    rows: list[list],
    float_format: str = "{:.2f}",
) -> str:
    """Render an aligned, markdown-compatible text table."""
    if not headers:
        raise ValueError("headers must not be empty")
    text_rows = [
        [format_cell(cell, float_format) for cell in row] for row in rows
    ]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    def line(cells):
        return (
            "| "
            + " | ".join(c.ljust(w) for c, w in zip(cells, widths))
            + " |"
        )

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    out = [line(headers), separator]
    out.extend(line(row) for row in text_rows)
    return "\n".join(out)


def render_dict_table(
    rows: list[dict],
    columns: list[str] | None = None,
    float_format: str = "{:.2f}",
) -> str:
    """Render a list of dicts; columns default to first-row key order."""
    if not rows:
        raise ValueError("rows must not be empty")
    if columns is None:
        columns = list(rows[0])
    table_rows = [[row.get(col, "") for col in columns] for row in rows]
    return render_table(columns, table_rows, float_format)

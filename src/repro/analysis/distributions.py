"""Fig. 2 reproduction: spatial/temporal access distributions.

Fig. 2 of the paper motivates the 2-D GMM by showing, per benchmark,
a spatial access histogram that "can be fitted with different Gaussian
functions" and a temporal distribution with "uneven access frequency
within a specific range of addresses".  This module extracts both from
a trace and quantifies them:

* :func:`workload_distributions` -- the histograms themselves,
* :func:`gmm_spatial_fit` -- how well a mixture fits the spatial
  profile (improving log-likelihood with K, Fig. 2's visual claim),
* :func:`temporal_information_gain` -- how much the temporal dimension
  adds over a spatial-only model (Sec. 2.3's argument for going 2-D).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gmm.em import EMTrainer
from repro.traces.record import MemoryTrace
from repro.traces.stats import (
    SpatialHistogram,
    TemporalHistogram,
    spatial_histogram,
    temporal_histogram,
)


@dataclass(frozen=True)
class WorkloadDistributions:
    """The two Fig. 2 panels for one benchmark."""

    workload: str
    spatial: SpatialHistogram
    temporal: TemporalHistogram

    @property
    def spatial_modality(self) -> int:
        """Number of separated spatial peaks (>= 2 per Fig. 2)."""
        return self.spatial.modality(threshold_fraction=0.01)

    @property
    def temporal_nonuniformity(self) -> float:
        """Time-variation of the access profile (> 0 per Fig. 2)."""
        return self.temporal.column_nonuniformity()


def workload_distributions(
    workload: str,
    trace: MemoryTrace,
    n_spatial_bins: int = 120,
    n_time_bins: int = 40,
) -> WorkloadDistributions:
    """Compute both Fig. 2 panels for a trace."""
    return WorkloadDistributions(
        workload=workload,
        spatial=spatial_histogram(trace, n_spatial_bins),
        temporal=temporal_histogram(
            trace, n_time_bins, n_spatial_bins
        ),
    )


def _standardise(values: np.ndarray) -> np.ndarray:
    std = values.std()
    if std < 1e-12:
        std = 1.0
    return (values - values.mean()) / std


def gmm_spatial_fit(
    trace: MemoryTrace,
    component_counts: tuple[int, ...] = (1, 2, 4, 8),
    max_samples: int = 20_000,
    seed: int = 0,
) -> dict[int, float]:
    """Mean log-likelihood of 1-D spatial GMMs for increasing K.

    Fig. 2's claim -- the spatial profile is a *mixture* -- shows up as
    the likelihood improving markedly from K=1 to larger K.
    """
    rng = np.random.default_rng(seed)
    pages = trace.page_indices().astype(np.float64)
    if pages.shape[0] > max_samples:
        pages = rng.choice(pages, size=max_samples, replace=False)
    # 1-D data embedded in 2-D with an independent dummy axis keeps
    # the same GMM machinery; the dummy axis is standard normal noise
    # and contributes a constant to every model's likelihood.
    points = np.column_stack(
        [_standardise(pages), rng.standard_normal(pages.shape[0])]
    )
    out = {}
    for k in component_counts:
        result = EMTrainer(n_components=k, max_iter=40, tol=1e-3).fit(
            points, np.random.default_rng(seed)
        )
        out[k] = result.log_likelihood
    return out


def temporal_information_gain(
    features: np.ndarray,
    n_components: int = 16,
    max_samples: int = 20_000,
    seed: int = 0,
    n_init: int = 3,
) -> float:
    """Log-likelihood gain of the 2-D model over spatial-only.

    Fits two mixtures on (P, T) feature rows: one on the real data and
    one on data whose T column is shuffled (destroying any
    spatio-temporal association while preserving both marginals).  The
    difference in mean log-likelihood is the information the temporal
    dimension actually carries -- Sec. 2.3's justification for the
    second input ("only considering spatial distribution will degrade
    GMM prediction performance").

    Both fits run ``n_init`` restarts (best likelihood wins) so the
    measured gap reflects the data, not one seeding's luck -- a
    single lucky init on the shuffled baseline can otherwise flip
    the sign of a small gain.  The batched fast path makes the
    restarts nearly free.
    """
    rng = np.random.default_rng(seed)
    features = np.asarray(features, dtype=np.float64)
    if features.ndim != 2 or features.shape[1] != 2:
        raise ValueError("features must have shape (N, 2)")
    if features.shape[0] > max_samples:
        index = rng.choice(
            features.shape[0], size=max_samples, replace=False
        )
        features = features[index]
    points = np.column_stack(
        [_standardise(features[:, 0]), _standardise(features[:, 1])]
    )
    shuffled = points.copy()
    rng.shuffle(shuffled[:, 1])
    trainer = EMTrainer(
        n_components=n_components, max_iter=40, tol=1e-3, n_init=n_init
    )
    real = trainer.fit(points, np.random.default_rng(seed))
    independent = trainer.fit(shuffled, np.random.default_rng(seed))
    return real.log_likelihood - independent.log_likelihood

"""Evaluation tooling: distributions, figures, tables, sweeps."""

from repro.analysis.distributions import (
    WorkloadDistributions,
    gmm_spatial_fit,
    temporal_information_gain,
    workload_distributions,
)
from repro.analysis.figures import (
    bar_chart,
    grouped_bar_chart,
    histogram_figure,
)
from repro.analysis.mrc import (
    lru_stack_distances,
    miss_rate_curve,
    working_set_curve,
)
from repro.analysis.sweep import (
    SweepPoint,
    run_grid,
    sweep_cache_capacity,
    sweep_n_components,
    sweep_threshold_quantile,
    sweep_windowing,
)
from repro.analysis.tables import render_dict_table, render_table

__all__ = [
    "SweepPoint",
    "WorkloadDistributions",
    "bar_chart",
    "gmm_spatial_fit",
    "grouped_bar_chart",
    "histogram_figure",
    "lru_stack_distances",
    "miss_rate_curve",
    "render_dict_table",
    "render_table",
    "working_set_curve",
    "run_grid",
    "sweep_cache_capacity",
    "sweep_n_components",
    "sweep_threshold_quantile",
    "sweep_windowing",
    "temporal_information_gain",
    "workload_distributions",
]

"""Parameter sweeps for the ablation benches.

Each sweep varies one design choice of DESIGN.md's ablation list and
reruns the end-to-end pipeline, reusing a single prepared workload
where the swept parameter allows it.

Sweep points are fully independent end-to-end runs (own config, own
trace, own GMM), so every sweep accepts a
:class:`~repro.core.config.ParallelConfig` and fans its grid out
through :func:`run_grid` -- the same deterministic-merge executor the
fabric and the serving loop use.  Results always come back in grid
order, so a parallel sweep is indistinguishable from a sequential
one.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.cache.setassoc import CacheGeometry
from repro.core.config import (
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
)
from repro.core.parallel import ParallelExecutor
from repro.core.system import IcgmmSystem


@dataclass(frozen=True)
class SweepPoint:
    """One sweep sample: the varied value and its outcomes."""

    value: object
    lru_miss_percent: float
    gmm_miss_percent: float

    @property
    def reduction_points(self) -> float:
        """Absolute miss-rate reduction at this point."""
        return self.lru_miss_percent - self.gmm_miss_percent


def _run_point(config: IcgmmConfig, workload: str, value) -> SweepPoint:
    system = IcgmmSystem(config)
    result = system.run_benchmark(workload)
    return SweepPoint(
        value=value,
        lru_miss_percent=result.lru.miss_rate_percent,
        gmm_miss_percent=result.best_gmm.miss_rate_percent,
    )


def run_grid(
    fn,
    points,
    parallel: ParallelConfig | None = None,
    star: bool = True,
):
    """Evaluate independent grid points, optionally in parallel.

    The benchmark/ablation matrices (policy x geometry, K x workload,
    ...) are lists of argument tuples evaluated by a module-level
    function; this runner fans them out through a
    :class:`~repro.core.parallel.ParallelExecutor` and returns
    results in *point order* regardless of completion order (the
    first failing point's exception propagates).  ``fn`` and the
    points must be picklable for the process backend; with
    ``parallel=None`` (or ``workers=1``) the grid runs inline.
    """
    executor = ParallelExecutor.from_config(parallel)
    try:
        return executor.map(fn, points, star=star)
    finally:
        executor.shutdown()


def _sweep(
    configs_and_values: list[tuple[IcgmmConfig, object]],
    workload: str,
    parallel: ParallelConfig | None,
) -> list[SweepPoint]:
    """Shared driver of the concrete sweeps below."""
    return run_grid(
        _run_point,
        [
            (config, workload, value)
            for config, value in configs_and_values
        ],
        parallel=parallel,
    )


def sweep_n_components(
    workload: str,
    component_counts: tuple[int, ...] = (4, 16, 64, 256),
    config: IcgmmConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[SweepPoint]:
    """Miss rate vs number of Gaussians K.

    The paper fixes K = 256 for the FPGA engine; this sweep shows the
    miss-rate curve saturating well below that on the synthetic
    traces (why the simulator default is smaller).
    """
    base = config if config is not None else IcgmmConfig()
    return _sweep(
        [
            (
                dataclasses.replace(
                    base,
                    gmm=dataclasses.replace(base.gmm, n_components=k),
                ),
                k,
            )
            for k in component_counts
        ],
        workload,
        parallel,
    )


def sweep_threshold_quantile(
    workload: str,
    quantiles: tuple[float, ...] = (0.0, 0.01, 0.02, 0.05, 0.10),
    config: IcgmmConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[SweepPoint]:
    """Miss rate vs admission threshold quantile.

    Low quantiles bypass only one-touch traffic; high quantiles start
    refusing pages with real reuse -- the sweep exposes the optimum.
    """
    base = config if config is not None else IcgmmConfig()
    return _sweep(
        [
            (
                dataclasses.replace(
                    base,
                    gmm=dataclasses.replace(
                        base.gmm, threshold_quantile=q
                    ),
                ),
                q,
            )
            for q in quantiles
        ],
        workload,
        parallel,
    )


def sweep_cache_capacity(
    workload: str,
    capacities_bytes: tuple[int, ...] = (
        1 * 1024 * 1024,
        2 * 1024 * 1024,
        4 * 1024 * 1024,
        8 * 1024 * 1024,
    ),
    config: IcgmmConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[SweepPoint]:
    """Miss rate vs cache capacity (block size and ways fixed)."""
    base = config if config is not None else IcgmmConfig()
    return _sweep(
        [
            (
                dataclasses.replace(
                    base,
                    geometry=CacheGeometry(
                        capacity_bytes=capacity,
                        block_bytes=base.geometry.block_bytes,
                        associativity=base.geometry.associativity,
                    ),
                ),
                capacity,
            )
            for capacity in capacities_bytes
        ],
        workload,
        parallel,
    )


def sweep_windowing(
    workload: str,
    len_windows: tuple[int, ...] = (8, 32, 128),
    config: IcgmmConfig | None = None,
    parallel: ParallelConfig | None = None,
) -> list[SweepPoint]:
    """Miss rate vs Algorithm 1 window length.

    The paper picks ``len_window = 32`` empirically; the sweep probes
    the sensitivity of that choice.
    """
    base = config if config is not None else IcgmmConfig()
    return _sweep(
        [
            (
                dataclasses.replace(base, len_window=len_window),
                len_window,
            )
            for len_window in len_windows
        ],
        workload,
        parallel,
    )

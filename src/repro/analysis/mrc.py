"""Miss-rate curves via LRU stack-distance analysis (Mattson).

A single pass over the trace yields the *stack distance* of every
request -- the number of distinct pages touched since the previous
access to the same page.  Because LRU possesses the inclusion
property, the full miss-rate-vs-capacity curve of a fully-associative
LRU cache falls out of the stack-distance histogram in one pass:
a request hits at capacity ``C`` iff its stack distance is < ``C``.

The implementation uses a Fenwick tree over access positions for
O(N log N) total time, and is cross-checked against the trace-driven
simulator in the test suite.
"""

from __future__ import annotations

import numpy as np

#: Stack distance reported for cold (first-touch) accesses.
COLD = np.inf


class _FenwickTree:
    """Binary indexed tree over ``n`` positions (prefix sums)."""

    def __init__(self, n: int) -> None:
        self._tree = np.zeros(n + 1, dtype=np.int64)
        self._n = n

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._n:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of entries in ``[0, index]``."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return int(total)


def lru_stack_distances(pages: np.ndarray) -> np.ndarray:
    """Per-request LRU stack distance (``inf`` for first touches).

    The stack distance of request ``i`` to page ``p`` is the number of
    *distinct* pages referenced since the previous access to ``p``.
    """
    pages = np.asarray(pages)
    n = pages.shape[0]
    distances = np.full(n, COLD, dtype=np.float64)
    tree = _FenwickTree(n)
    last_position: dict[int, int] = {}
    for position in range(n):
        page = int(pages[position])
        previous = last_position.get(page)
        if previous is not None:
            # Distinct pages since `previous` = live markers after it.
            distances[position] = tree.prefix_sum(
                position - 1
            ) - tree.prefix_sum(previous)
            tree.add(previous, -1)
        tree.add(position, 1)
        last_position[page] = position
    return distances


def miss_rate_curve(
    pages: np.ndarray, capacities: list[int]
) -> dict[int, float]:
    """Exact fully-associative LRU miss rate at each capacity.

    One stack-distance pass serves every capacity: a request misses at
    capacity ``C`` iff its stack distance is >= ``C`` (cold misses
    always miss).
    """
    if not capacities:
        raise ValueError("capacities must not be empty")
    if any(c < 1 for c in capacities):
        raise ValueError("capacities must be >= 1")
    pages = np.asarray(pages)
    if pages.shape[0] == 0:
        return {c: 0.0 for c in capacities}
    distances = lru_stack_distances(pages)
    n = pages.shape[0]
    return {
        c: float(np.sum(distances >= c)) / n for c in capacities
    }


def working_set_curve(
    pages: np.ndarray, window: int
) -> np.ndarray:
    """Distinct pages per non-overlapping window of ``window`` requests.

    The working-set profile of Denning: a compact summary of how much
    cache a phase needs, used by the analysis examples.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    pages = np.asarray(pages)
    sizes = []
    for start in range(0, pages.shape[0], window):
        chunk = pages[start : start + window]
        if chunk.shape[0] > 0:
            sizes.append(np.unique(chunk).shape[0])
    return np.asarray(sizes, dtype=np.int64)

"""ASCII figure rendering.

matplotlib is not available in the offline environment, so the
benchmark harness renders its "figures" as text: horizontal bar charts
for Fig. 6-style comparisons and block histograms for Fig. 2-style
distributions.
"""

from __future__ import annotations

import numpy as np

#: Glyph used for bar bodies.
_BAR = "#"


def bar_chart(
    labels: list[str],
    values: list[float],
    width: int = 50,
    value_format: str = "{:.2f}",
) -> str:
    """Horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("nothing to plot")
    if width < 1:
        raise ValueError("width must be >= 1")
    peak = max(values)
    label_width = max(len(label) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        if peak > 0:
            bar = _BAR * max(0, int(round(width * value / peak)))
        else:
            bar = ""
        lines.append(
            f"{label.ljust(label_width)} |{bar.ljust(width)}| "
            + value_format.format(value)
        )
    return "\n".join(lines)


def grouped_bar_chart(
    group_labels: list[str],
    series: dict[str, list[float]],
    width: int = 40,
    value_format: str = "{:.2f}",
) -> str:
    """Grouped horizontal bars (Fig. 6 layout: workload x strategy)."""
    if not series:
        raise ValueError("series must not be empty")
    for name, values in series.items():
        if len(values) != len(group_labels):
            raise ValueError(
                f"series {name!r} length mismatch with group labels"
            )
    peak = max(max(values) for values in series.values())
    series_width = max(len(name) for name in series)
    label_width = max(len(label) for label in group_labels)
    lines = []
    for index, group in enumerate(group_labels):
        lines.append(f"{group}:")
        for name, values in series.items():
            value = values[index]
            if peak > 0:
                bar = _BAR * max(0, int(round(width * value / peak)))
            else:
                bar = ""
            lines.append(
                f"  {name.ljust(series_width)} "
                f"|{bar.ljust(width)}| " + value_format.format(value)
            )
        if index != len(group_labels) - 1:
            lines.append("")
    return "\n".join(lines)


def histogram_figure(
    counts: np.ndarray,
    height: int = 8,
    title: str = "",
) -> str:
    """Vertical block histogram of pre-binned counts (Fig. 2 style)."""
    counts = np.asarray(counts, dtype=np.float64)
    if counts.size == 0:
        raise ValueError("counts must not be empty")
    if height < 1:
        raise ValueError("height must be >= 1")
    peak = counts.max()
    lines = [title] if title else []
    if peak == 0:
        levels = np.zeros(counts.size, dtype=int)
    else:
        levels = np.round(height * counts / peak).astype(int)
    for row in range(height, 0, -1):
        lines.append(
            "".join("#" if level >= row else " " for level in levels)
        )
    lines.append("-" * counts.size)
    return "\n".join(lines)

"""Wiring of the ICGMM dataflow architecture (Fig. 5).

:class:`IcgmmDataflow` assembles the three kernels and their FIFOs into
one simulation and reports per-request latencies -- the nanosecond-
accurate counterpart of the fast statistical simulator.  Its main job
in the reproduction is validating the Sec. 4.3/5.3 overlap claim: with
the dataflow architecture the 3 us GMM inference disappears inside the
75 us SSD read, so the measured miss path equals the SSD latency.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.desim.kernels import (
    DataflowTiming,
    cache_control_kernel,
    gmm_policy_kernel,
    host_request_source,
    open_loop_source,
    response_collector,
)
from repro.desim.sim import Fifo, Simulator
from repro.hardware.ssd import SsdLatencyEmulator


@dataclass(frozen=True)
class DataflowResult:
    """Outcome of a dataflow run.

    Attributes
    ----------
    latencies_ns:
        Per-request host-observed latency.
    stats:
        Hit/miss/eviction counters (same semantics as the fast
        simulator's counters, measured over the whole run).
    total_time_ns:
        Simulated completion time of the final response.
    """

    latencies_ns: np.ndarray
    stats: CacheStats
    total_time_ns: int

    @property
    def average_latency_us(self) -> float:
        """Mean request latency in microseconds."""
        if self.latencies_ns.size == 0:
            return 0.0
        return float(np.mean(self.latencies_ns)) / 1_000.0

    def percentile_us(self, q: float) -> float:
        """Latency percentile ``q`` (0-100) in microseconds."""
        if self.latencies_ns.size == 0:
            return 0.0
        return float(np.percentile(self.latencies_ns, q)) / 1_000.0


class IcgmmDataflow:
    """The assembled ICGMM pipeline.

    Parameters
    ----------
    cache:
        Tag-store state (fresh per run).
    policy:
        Replacement/admission policy (shared semantics with the fast
        simulator).
    ssd:
        SSD latency emulator.
    timing:
        Dataflow timing constants; ``timing.overlap`` selects the
        dataflow (concurrent) or naive (sequential) miss path.
    fifo_capacity:
        Depth of the inter-kernel FIFOs.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        policy: ReplacementPolicy,
        ssd: SsdLatencyEmulator | None = None,
        timing: DataflowTiming | None = None,
        fifo_capacity: int = 16,
    ) -> None:
        self.cache = cache
        self.policy = policy
        self.ssd = ssd if ssd is not None else SsdLatencyEmulator()
        self.timing = timing if timing is not None else DataflowTiming()
        self.fifo_capacity = fifo_capacity

    def run(
        self,
        pages: np.ndarray,
        is_write: np.ndarray,
        scores: np.ndarray | None = None,
        open_loop_interval_ns: int | None = None,
    ) -> DataflowResult:
        """Simulate the request stream end to end.

        With ``open_loop_interval_ns`` set, the host issues a request
        every that many nanoseconds without waiting for responses
        (latencies then include queueing delay); the default is the
        closed-loop mode matching the average-access-time measurement.
        """
        pages = np.asarray(pages)
        is_write = np.asarray(is_write)
        if pages.shape != is_write.shape:
            raise ValueError("pages and is_write must have the same shape")
        if scores is None:
            scores = np.zeros(pages.shape[0])
        else:
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != pages.shape:
                raise ValueError(
                    "scores and pages must have the same shape"
                )
        requests = [
            (int(p), bool(w), float(s))
            for p, w, s in zip(pages, is_write, scores)
        ]

        sim = Simulator()
        trace_fifo = Fifo(sim, self.fifo_capacity, "trace")
        response_fifo = Fifo(sim, self.fifo_capacity, "rsp")
        score_request_fifo = Fifo(sim, self.fifo_capacity, "gmm-req")
        score_response_fifo = Fifo(sim, self.fifo_capacity, "gmm-rsp")
        stats = CacheStats()
        latencies: list[int] = []

        if open_loop_interval_ns is None:
            sim.process(
                host_request_source(
                    sim, requests, trace_fifo, response_fifo, latencies
                ),
                name="host",
            )
        else:
            issue_times: list[int] = []
            sim.process(
                open_loop_source(
                    sim,
                    requests,
                    trace_fifo,
                    open_loop_interval_ns,
                    issue_times,
                ),
                name="host",
            )
            sim.process(
                response_collector(
                    sim,
                    len(requests),
                    response_fifo,
                    issue_times,
                    latencies,
                ),
                name="collector",
            )
        sim.process(
            gmm_policy_kernel(
                sim,
                score_request_fifo,
                score_response_fifo,
                self.timing.gmm_latency_ns,
            ),
            name="policy-engine",
        )
        sim.process(
            cache_control_kernel(
                sim,
                self.cache,
                self.policy,
                self.ssd,
                self.timing,
                trace_fifo,
                response_fifo,
                score_request_fifo,
                score_response_fifo,
                stats,
            ),
            name="cache-control",
        )
        total_time = sim.run()
        return DataflowResult(
            latencies_ns=np.asarray(latencies, dtype=np.int64),
            stats=stats,
            total_time_ns=total_time,
        )

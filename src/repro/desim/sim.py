"""A small discrete-event simulation kernel.

The ICGMM hardware is a *dataflow* design: independent free-running
kernels connected by FIFOs, with data-driven control (Sec. 4.3).  This
module provides the event loop and process model used to simulate that
architecture at nanosecond resolution.

Processes are Python generators that yield *commands*:

* ``Delay(ns)`` -- suspend for a fixed simulated time.
* ``Get(fifo)`` -- pop the next item (blocking while empty); the item
  is delivered as the value of the ``yield`` expression.
* ``Put(fifo, item)`` -- push an item (blocking while full).

The scheduler is deterministic: events at equal times fire in the
order they were scheduled.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Iterator


@dataclass(frozen=True)
class Delay:
    """Suspend the yielding process for ``ns`` nanoseconds."""

    ns: int

    def __post_init__(self) -> None:
        if self.ns < 0:
            raise ValueError("delay must be >= 0")


@dataclass(frozen=True)
class Get:
    """Pop the next item from ``fifo`` (blocks while empty)."""

    fifo: "Fifo"


@dataclass(frozen=True)
class Put:
    """Push ``item`` into ``fifo`` (blocks while full)."""

    fifo: "Fifo"
    item: Any


class Process:
    """A running coroutine inside the simulator."""

    def __init__(self, generator: Generator, name: str = "") -> None:
        self.generator = generator
        self.name = name or repr(generator)
        self.finished = False

    def __repr__(self) -> str:
        state = "done" if self.finished else "running"
        return f"Process({self.name}, {state})"


class Simulator:
    """Deterministic event-driven scheduler."""

    def __init__(self) -> None:
        self.now = 0
        self._sequence = 0
        self._events: list[tuple[int, int, Callable[[], None]]] = []
        self._processes: list[Process] = []

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: int, action: Callable[[], None]) -> None:
        """Run ``action`` after ``delay_ns`` simulated nanoseconds."""
        if delay_ns < 0:
            raise ValueError("delay_ns must be >= 0")
        self._sequence += 1
        heapq.heappush(
            self._events, (self.now + delay_ns, self._sequence, action)
        )

    def process(self, generator: Generator, name: str = "") -> Process:
        """Register a coroutine and start it immediately."""
        proc = Process(generator, name)
        self._processes.append(proc)
        self.schedule(0, lambda: self._step(proc, None))
        return proc

    # ------------------------------------------------------------------
    # Process driving
    # ------------------------------------------------------------------
    def _step(self, proc: Process, value: Any) -> None:
        """Advance ``proc`` by one yielded command."""
        if proc.finished:
            return
        try:
            command = proc.generator.send(value)
        except StopIteration:
            proc.finished = True
            return
        if isinstance(command, Delay):
            self.schedule(command.ns, lambda: self._step(proc, None))
        elif isinstance(command, Get):
            command.fifo._enqueue_get(proc)
        elif isinstance(command, Put):
            command.fifo._enqueue_put(proc, command.item)
        else:
            raise TypeError(
                f"process {proc.name} yielded unknown command"
                f" {command!r}"
            )

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------
    def run(self, until_ns: int | None = None) -> int:
        """Drain events (optionally stopping at ``until_ns``).

        Returns the simulated time reached.  A dataflow with
        free-running kernels parked on empty FIFOs drains cleanly:
        parked processes hold no events, so the loop terminates once
        all *actionable* work is done.
        """
        while self._events:
            time, _, action = self._events[0]
            if until_ns is not None and time > until_ns:
                self.now = until_ns
                return self.now
            heapq.heappop(self._events)
            self.now = time
            action()
        return self.now

    @property
    def pending_events(self) -> int:
        """Number of scheduled events (parked processes excluded)."""
        return len(self._events)


class Fifo:
    """Bounded FIFO channel between processes (Fig. 5 interfaces)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._items: list[Any] = []
        self._waiting_getters: list[Process] = []
        self._waiting_putters: list[tuple[Process, Any]] = []

    def __len__(self) -> int:
        return len(self._items)

    @property
    def is_full(self) -> bool:
        """Whether a put would block right now."""
        return len(self._items) >= self.capacity

    def get(self) -> Get:
        """Yieldable get command."""
        return Get(self)

    def put(self, item: Any) -> Put:
        """Yieldable put command."""
        return Put(self, item)

    # ------------------------------------------------------------------
    # Scheduler-side plumbing
    # ------------------------------------------------------------------
    def _enqueue_get(self, proc: Process) -> None:
        if self._items:
            item = self._items.pop(0)
            self._admit_waiting_putter()
            self.sim.schedule(0, lambda: self.sim._step(proc, item))
        else:
            self._waiting_getters.append(proc)

    def _enqueue_put(self, proc: Process, item: Any) -> None:
        if self._waiting_getters:
            getter = self._waiting_getters.pop(0)
            self.sim.schedule(0, lambda: self.sim._step(getter, item))
            self.sim.schedule(0, lambda: self.sim._step(proc, None))
        elif len(self._items) < self.capacity:
            self._items.append(item)
            self.sim.schedule(0, lambda: self.sim._step(proc, None))
        else:
            self._waiting_putters.append((proc, item))

    def _admit_waiting_putter(self) -> None:
        if self._waiting_putters and len(self._items) < self.capacity:
            putter, item = self._waiting_putters.pop(0)
            self._items.append(item)
            self.sim.schedule(0, lambda: self.sim._step(putter, None))


def drain(iterator: Iterator) -> Generator:
    """Adapt a plain iterator into a no-delay producer process body."""
    for _ in iterator:
        yield Delay(0)

"""The Fig. 5 kernels as simulation processes.

Three free-running kernels mirror the hardware modules:

* :func:`host_request_source` -- the host issuing memory requests over
  CXL (closed loop: the next request leaves after the previous
  response arrives, matching the average-access-time measurement).
* :func:`gmm_policy_kernel` -- the cache policy engine: waits on its
  trace FIFO, takes ``gmm_latency_ns`` per score, answers on the
  response FIFO.  It runs forever until it receives the shutdown
  sentinel -- the "free-running kernel" of Sec. 4.1.
* :func:`cache_control_kernel` -- the cache control engine: tag
  compare, hit service, and on a miss the concurrent triggering of the
  policy engine and the SSD emulator (the overlap of Sec. 4.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.desim.sim import Delay, Fifo, Simulator
from repro.hardware.ssd import SsdLatencyEmulator

#: Sentinel telling a free-running kernel to shut down.
SHUTDOWN = None


@dataclass(frozen=True)
class DataflowTiming:
    """Timing constants of the on-FPGA dataflow (Sec. 5.3).

    Attributes
    ----------
    tag_compare_ns:
        Parallel tag comparison time (a couple of cycles at 233 MHz;
        part of the 1 us hit path).
    hit_latency_ns:
        Total DRAM cache hit service time (measured 1 us).
    gmm_latency_ns:
        Policy engine inference latency (measured 3 us).
    overlap:
        Whether the miss path triggers the policy engine and the SSD
        concurrently (the dataflow architecture) or sequentially (the
        naive control the ablation compares against).
    """

    tag_compare_ns: int = 10
    hit_latency_ns: int = 1_000
    gmm_latency_ns: int = 3_000
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.tag_compare_ns < 0:
            raise ValueError("tag_compare_ns must be >= 0")
        if self.hit_latency_ns < self.tag_compare_ns:
            raise ValueError(
                "hit_latency_ns must cover the tag compare time"
            )
        if self.gmm_latency_ns < 0:
            raise ValueError("gmm_latency_ns must be >= 0")


def host_request_source(
    sim: Simulator,
    requests: list[tuple[int, bool, float]],
    trace_fifo: Fifo,
    response_fifo: Fifo,
    latencies_ns: list[int],
):
    """Closed-loop host: issue, await response, record latency."""
    for request in requests:
        start = sim.now
        yield trace_fifo.put(request)
        yield response_fifo.get()
        latencies_ns.append(sim.now - start)
    yield trace_fifo.put(SHUTDOWN)


def open_loop_source(
    sim: Simulator,
    requests: list[tuple[int, bool, float]],
    trace_fifo: Fifo,
    interval_ns: int,
    issue_times_ns: list[int],
):
    """Open-loop host: issue one request every ``interval_ns``.

    Models asynchronous traffic (prefetchers, multiple cores): the
    host does *not* wait for responses, so requests queue in the trace
    FIFO when the cache engine falls behind -- the latency then
    includes queueing delay, unlike the closed-loop measurement.
    A full FIFO exerts back-pressure (the put blocks), as the
    hardware's bounded FIFOs do.
    """
    if interval_ns < 0:
        raise ValueError("interval_ns must be >= 0")
    for request in requests:
        issue_times_ns.append(sim.now)
        yield trace_fifo.put(request)
        if interval_ns > 0:
            yield Delay(interval_ns)
    yield trace_fifo.put(SHUTDOWN)


def response_collector(
    sim: Simulator,
    n_requests: int,
    response_fifo: Fifo,
    issue_times_ns: list[int],
    latencies_ns: list[int],
):
    """Pair in-order responses with issue times (open-loop mode)."""
    for index in range(n_requests):
        yield response_fifo.get()
        latencies_ns.append(sim.now - issue_times_ns[index])


def gmm_policy_kernel(
    sim: Simulator,
    score_request_fifo: Fifo,
    score_response_fifo: Fifo,
    gmm_latency_ns: int,
):
    """Free-running policy engine: score requests as they arrive."""
    while True:
        request = yield score_request_fifo.get()
        if request is SHUTDOWN:
            return
        yield Delay(gmm_latency_ns)
        yield score_response_fifo.put(request)


def cache_control_kernel(
    sim: Simulator,
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    ssd: SsdLatencyEmulator,
    timing: DataflowTiming,
    trace_fifo: Fifo,
    response_fifo: Fifo,
    score_request_fifo: Fifo,
    score_response_fifo: Fifo,
    stats: CacheStats,
):
    """Cache control engine: hit/miss service and replacement.

    The replacement *decisions* reuse the same policy objects as the
    fast simulator (:func:`repro.cache.setassoc.simulate`), so both
    simulators agree on hits and misses by construction; this kernel
    adds the nanosecond timing of the hardware pipeline around them.
    """
    access_index = 0
    while True:
        request = yield trace_fifo.get()
        if request is SHUTDOWN:
            yield score_request_fifo.put(SHUTDOWN)
            return
        page, is_write, score = request
        yield Delay(timing.tag_compare_ns)
        set_index, way = cache.lookup(page)

        if way is not None:
            policy.on_hit(cache, set_index, way, access_index, score)
            if is_write:
                cache.dirty[set_index][way] = True
            stats.hits += 1
            if is_write:
                stats.write_hits += 1
            yield Delay(timing.hit_latency_ns - timing.tag_compare_ns)
            yield response_fifo.put(("hit", page))
            access_index += 1
            continue

        # Miss: the SSD must be read; the policy engine scores the
        # page meanwhile (or afterwards, without the dataflow overlap).
        stats.misses += 1
        if is_write:
            stats.write_misses += 1
        miss_start = sim.now
        ssd_ns = ssd.read_latency_ns()
        if timing.overlap:
            yield score_request_fifo.put((page, score))
            yield score_response_fifo.get()
            elapsed = sim.now - miss_start
            if elapsed < ssd_ns:
                yield Delay(ssd_ns - elapsed)
        else:
            yield score_request_fifo.put((page, score))
            yield score_response_fifo.get()
            yield Delay(ssd_ns)

        if not policy.admit(page, score, is_write, access_index):
            stats.bypasses += 1
            if is_write:
                stats.bypassed_writes += 1
                # The store itself must still be programmed to flash.
                yield Delay(ssd.write_latency_ns())
            yield response_fifo.put(("bypass", page))
            access_index += 1
            continue

        victim = cache.find_invalid_way(set_index)
        if victim is None:
            victim = policy.select_victim(cache, set_index, access_index)
            stats.evictions += 1
            if cache.dirty[set_index][victim]:
                stats.dirty_evictions += 1
                # Dirty write-back: the 975 us total penalty path.
                yield Delay(ssd.write_latency_ns())
        stats.fills += 1
        cache.fill(
            set_index,
            victim,
            page,
            is_write,
            policy.fill_meta(page, score, access_index),
            float(access_index),
        )
        yield response_fifo.put(("fill", page))
        access_index += 1

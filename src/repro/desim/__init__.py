"""Discrete-event simulation of the Fig. 5 dataflow architecture."""

from repro.desim.dataflow import DataflowResult, IcgmmDataflow
from repro.desim.kernels import (
    SHUTDOWN,
    DataflowTiming,
    cache_control_kernel,
    gmm_policy_kernel,
    host_request_source,
)
from repro.desim.sim import Delay, Fifo, Get, Process, Put, Simulator

__all__ = [
    "DataflowResult",
    "DataflowTiming",
    "Delay",
    "Fifo",
    "Get",
    "IcgmmDataflow",
    "Process",
    "Put",
    "SHUTDOWN",
    "Simulator",
    "cache_control_kernel",
    "gmm_policy_kernel",
    "host_request_source",
]

"""Stacked LSTM with a linear regression head.

The Sec. 5.3 baseline: three stacked LSTM layers (hidden 128) consume a
window of 32 ``(page, timestamp)`` inputs; the final hidden state feeds
a linear head that regresses the page's future access frequency -- the
same quantity the GMM scores with its density.
"""

from __future__ import annotations

import numpy as np

from repro.lstm.cells import LstmCell


class LstmNetwork:
    """Stacked LSTM + linear head for sequence regression.

    Parameters
    ----------
    input_size:
        Feature dimension per timestep (2 in the paper: P and T).
    hidden_size:
        Hidden width of every layer (paper baseline: 128).
    n_layers:
        Number of stacked LSTM layers (paper baseline: 3).
    rng:
        Generator for initialisation.
    """

    def __init__(
        self,
        input_size: int = 2,
        hidden_size: int = 128,
        n_layers: int = 3,
        rng: np.random.Generator | None = None,
    ) -> None:
        if n_layers < 1:
            raise ValueError("n_layers must be >= 1")
        if rng is None:
            rng = np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.n_layers = n_layers
        self.cells = []
        for layer in range(n_layers):
            in_size = input_size if layer == 0 else hidden_size
            self.cells.append(LstmCell(in_size, hidden_size, rng))
        bound = 1.0 / np.sqrt(hidden_size)
        self.w_head = rng.uniform(-bound, bound, size=(hidden_size,))
        self.b_head = 0.0

    # ------------------------------------------------------------------
    # Introspection (feeds the FPGA resource model)
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total scalar parameters (cells + head)."""
        cells = sum(cell.parameter_count for cell in self.cells)
        return cells + self.w_head.size + 1

    def multiply_accumulate_ops_per_inference(
        self, sequence_length: int
    ) -> int:
        """MAC count for one scoring decision.

        Each cell timestep costs ``4H(D + H)`` multiplies; the head adds
        ``H``.  This is the number the Table 2 latency model divides by
        the DSP budget -- and the reason the LSTM is four orders of
        magnitude slower per decision than the GMM's ``7K`` multiplies.
        """
        per_step = sum(
            4 * cell.hidden_size * (cell.input_size + cell.hidden_size)
            for cell in self.cells
        )
        return sequence_length * per_step + self.hidden_size

    # ------------------------------------------------------------------
    # Forward
    # ------------------------------------------------------------------
    def forward(
        self, sequences: np.ndarray
    ) -> tuple[np.ndarray, list]:
        """Run a batch of sequences; returns ``(predictions, caches)``.

        Parameters
        ----------
        sequences:
            Array of shape ``(B, T, D)``.

        Returns
        -------
        predictions:
            Shape ``(B,)`` regression outputs.
        caches:
            Per-(timestep, layer) forward caches for :meth:`backward`.
        """
        sequences = np.asarray(sequences, dtype=np.float64)
        if sequences.ndim != 3 or sequences.shape[2] != self.input_size:
            raise ValueError(
                f"sequences must have shape (B, T, {self.input_size}),"
                f" got {sequences.shape}"
            )
        batch, steps, _ = sequences.shape
        h = [
            np.zeros((batch, self.hidden_size)) for _ in self.cells
        ]
        c = [
            np.zeros((batch, self.hidden_size)) for _ in self.cells
        ]
        caches: list[list[dict]] = []
        for t in range(steps):
            layer_input = sequences[:, t, :]
            step_caches = []
            for layer, cell in enumerate(self.cells):
                h[layer], c[layer], cache = cell.forward(
                    layer_input, h[layer], c[layer]
                )
                step_caches.append(cache)
                layer_input = h[layer]
            caches.append(step_caches)
        predictions = h[-1] @ self.w_head + self.b_head
        caches.append({"h_last": h[-1]})  # head cache
        return predictions, caches

    def predict(self, sequences: np.ndarray) -> np.ndarray:
        """Forward pass without caches (inference only)."""
        predictions, _ = self.forward(sequences)
        return predictions

    # ------------------------------------------------------------------
    # Backward
    # ------------------------------------------------------------------
    def backward(
        self,
        d_predictions: np.ndarray,
        caches: list,
    ) -> dict:
        """Full BPTT given head-output gradients.

        Returns a gradient dict: ``{"head_w", "head_b",
        "cells": [per-layer grad dicts]}``.
        """
        head_cache = caches[-1]
        step_caches = caches[:-1]
        steps = len(step_caches)
        h_last = head_cache["h_last"]
        grad_head_w = d_predictions @ h_last
        grad_head_b = float(np.sum(d_predictions))
        cell_grads = [cell.zero_grads() for cell in self.cells]
        batch = h_last.shape[0]
        d_h = [
            np.zeros((batch, self.hidden_size)) for _ in self.cells
        ]
        d_c = [
            np.zeros((batch, self.hidden_size)) for _ in self.cells
        ]
        d_h[-1] = d_predictions[:, None] * self.w_head[None, :]
        for t in range(steps - 1, -1, -1):
            d_from_above = None
            for layer in range(self.n_layers - 1, -1, -1):
                incoming_h = d_h[layer]
                if d_from_above is not None:
                    incoming_h = incoming_h + d_from_above
                d_x, d_h_prev, d_c_prev = self.cells[layer].backward(
                    incoming_h,
                    d_c[layer],
                    step_caches[t][layer],
                    cell_grads[layer],
                )
                d_h[layer] = d_h_prev
                d_c[layer] = d_c_prev
                d_from_above = d_x if layer > 0 else None
        return {
            "head_w": grad_head_w,
            "head_b": grad_head_b,
            "cells": cell_grads,
        }

"""A single LSTM cell with exact forward/backward passes.

Standard formulation (gates ordered i, f, g, o):

    i = sigmoid(W_x[0:H]   x + W_h[0:H]   h_prev + b[0:H])
    f = sigmoid(W_x[H:2H]  x + W_h[H:2H]  h_prev + b[H:2H])
    g = tanh   (W_x[2H:3H] x + W_h[2H:3H] h_prev + b[2H:3H])
    o = sigmoid(W_x[3H:4H] x + W_h[3H:4H] h_prev + b[3H:4H])
    c = f * c_prev + i * g
    h = o * tanh(c)

All operations are batched: ``x`` is ``(B, D)``, states are ``(B, H)``.
The backward pass is a hand-derived transpose of the forward graph and
is verified against numerical gradients in the test suite.
"""

from __future__ import annotations

import numpy as np


def _sigmoid(x: np.ndarray) -> np.ndarray:
    # Clipped for overflow safety; sigmoid saturates anyway.
    return 1.0 / (1.0 + np.exp(-np.clip(x, -60.0, 60.0)))


class LstmCell:
    """One LSTM layer processing one timestep at a time.

    Parameters
    ----------
    input_size:
        Dimension ``D`` of the inputs.
    hidden_size:
        Dimension ``H`` of the hidden/cell states.
    rng:
        Generator for weight initialisation (scaled uniform, the
        standard +-1/sqrt(H) recipe).  Forget-gate biases start at 1.0
        so early training does not forget everything.
    """

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        rng: np.random.Generator,
    ) -> None:
        if input_size < 1 or hidden_size < 1:
            raise ValueError("input_size and hidden_size must be >= 1")
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / np.sqrt(hidden_size)
        self.w_x = rng.uniform(
            -bound, bound, size=(4 * hidden_size, input_size)
        )
        self.w_h = rng.uniform(
            -bound, bound, size=(4 * hidden_size, hidden_size)
        )
        self.bias = np.zeros(4 * hidden_size)
        self.bias[hidden_size : 2 * hidden_size] = 1.0  # forget gate

    # ------------------------------------------------------------------
    # Parameter plumbing
    # ------------------------------------------------------------------
    @property
    def parameter_count(self) -> int:
        """Total scalar parameters in this cell."""
        return self.w_x.size + self.w_h.size + self.bias.size

    def parameters(self) -> dict[str, np.ndarray]:
        """Live references to the parameter arrays."""
        return {"w_x": self.w_x, "w_h": self.w_h, "bias": self.bias}

    def zero_grads(self) -> dict[str, np.ndarray]:
        """Fresh zero-filled gradient buffers matching the parameters."""
        return {
            "w_x": np.zeros_like(self.w_x),
            "w_h": np.zeros_like(self.w_h),
            "bias": np.zeros_like(self.bias),
        }

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(
        self,
        x: np.ndarray,
        h_prev: np.ndarray,
        c_prev: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, dict]:
        """One timestep; returns ``(h, c, cache)``.

        ``cache`` holds the intermediates the backward pass needs.
        """
        h = self.hidden_size
        pre = x @ self.w_x.T + h_prev @ self.w_h.T + self.bias
        i = _sigmoid(pre[:, 0:h])
        f = _sigmoid(pre[:, h : 2 * h])
        g = np.tanh(pre[:, 2 * h : 3 * h])
        o = _sigmoid(pre[:, 3 * h : 4 * h])
        c = f * c_prev + i * g
        tanh_c = np.tanh(c)
        h_out = o * tanh_c
        cache = {
            "x": x,
            "h_prev": h_prev,
            "c_prev": c_prev,
            "i": i,
            "f": f,
            "g": g,
            "o": o,
            "tanh_c": tanh_c,
        }
        return h_out, c, cache

    def backward(
        self,
        d_h: np.ndarray,
        d_c: np.ndarray,
        cache: dict,
        grads: dict[str, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Backprop one timestep.

        Parameters
        ----------
        d_h, d_c:
            Gradients flowing into this step's ``h`` and ``c`` outputs.
        cache:
            The forward cache for this step.
        grads:
            Accumulators from :meth:`zero_grads`; parameter gradients
            are *added* in place (BPTT sums over time).

        Returns
        -------
        (d_x, d_h_prev, d_c_prev)
        """
        i = cache["i"]
        f = cache["f"]
        g = cache["g"]
        o = cache["o"]
        tanh_c = cache["tanh_c"]
        d_o = d_h * tanh_c
        d_c_total = d_c + d_h * o * (1.0 - tanh_c**2)
        d_f = d_c_total * cache["c_prev"]
        d_i = d_c_total * g
        d_g = d_c_total * i
        d_c_prev = d_c_total * f
        # Through the gate nonlinearities.
        d_pre = np.concatenate(
            [
                d_i * i * (1.0 - i),
                d_f * f * (1.0 - f),
                d_g * (1.0 - g**2),
                d_o * o * (1.0 - o),
            ],
            axis=1,
        )
        grads["w_x"] += d_pre.T @ cache["x"]
        grads["w_h"] += d_pre.T @ cache["h_prev"]
        grads["bias"] += d_pre.sum(axis=0)
        d_x = d_pre @ self.w_x
        d_h_prev = d_pre @ self.w_h
        return d_x, d_h_prev, d_c_prev

"""From-scratch LSTM substrate: the paper's baseline policy engine.

Sec. 5.3 compares the GMM engine against "a three-layer LSTM model
... with hidden dimension = 128, input sequence length = 32" deployed
on the same FPGA.  This subpackage implements that model in numpy:

* :mod:`repro.lstm.cells` -- a single LSTM cell with exact forward and
  backward passes.
* :mod:`repro.lstm.network` -- stacked cells plus a linear regression
  head producing an access-frequency score per sequence.
* :mod:`repro.lstm.training` -- truncated BPTT with Adam and gradient
  clipping, plus sequence-windowing helpers.

The paper reports the LSTM is "hard to converge" at this lightweight
size on long traces; the test suite reproduces the qualitative point by
showing the LSTM needs orders of magnitude more compute per decision
(Table 2) while the GMM reaches a usable policy far faster.
"""

from repro.lstm.cells import LstmCell
from repro.lstm.network import LstmNetwork
from repro.lstm.training import (
    AdamOptimizer,
    LstmTrainer,
    make_sequences,
)

__all__ = [
    "AdamOptimizer",
    "LstmCell",
    "LstmNetwork",
    "LstmTrainer",
    "make_sequences",
]

"""BPTT training for the LSTM baseline.

MSE regression onto future access frequency, optimised with Adam and
global-norm gradient clipping.  Matches the training setup the paper
describes for its LSTM baseline ("trained on the same traces used for
GMM using the same inputs").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.lstm.network import LstmNetwork


def make_sequences(
    features: np.ndarray,
    targets: np.ndarray,
    sequence_length: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Window a feature stream into training sequences.

    Sequence ``i`` holds features ``[i, i + L)``; its target is the
    target of the window's *last* element (the request the engine must
    score when it arrives).

    Returns ``(sequences, sequence_targets)`` of shapes
    ``(N - L + 1, L, D)`` and ``(N - L + 1,)``.
    """
    features = np.asarray(features, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if features.ndim != 2:
        raise ValueError("features must have shape (N, D)")
    if targets.shape[0] != features.shape[0]:
        raise ValueError("targets must align with features")
    n = features.shape[0]
    if sequence_length < 1 or sequence_length > n:
        raise ValueError(
            "sequence_length must be in [1, len(features)]"
        )
    n_sequences = n - sequence_length + 1
    # Stride trick-free windowing: explicit gather keeps things simple
    # and the arrays writable.
    index = (
        np.arange(n_sequences)[:, None] + np.arange(sequence_length)
    )
    return features[index], targets[sequence_length - 1 :]


class AdamOptimizer:
    """Adam with per-array state, operating on parameter dicts."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._step = 0

    def update(
        self, params: list[np.ndarray], grads: list[np.ndarray]
    ) -> None:
        """Apply one Adam step to each (param, grad) pair in place."""
        self._step += 1
        correction1 = 1.0 - self.beta1**self._step
        correction2 = 1.0 - self.beta2**self._step
        for key, (param, grad) in enumerate(zip(params, grads)):
            if key not in self._m:
                self._m[key] = np.zeros_like(param)
                self._v[key] = np.zeros_like(param)
            m = self._m[key]
            v = self._v[key]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad**2
            param -= (
                self.learning_rate
                * (m / correction1)
                / (np.sqrt(v / correction2) + self.epsilon)
            )


@dataclass
class TrainingHistory:
    """Per-epoch mean training loss."""

    losses: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        """Loss of the last epoch (inf before any training)."""
        return self.losses[-1] if self.losses else float("inf")


class LstmTrainer:
    """Mini-batch BPTT trainer with MSE loss.

    Parameters
    ----------
    network:
        The :class:`LstmNetwork` to train (updated in place).
    learning_rate:
        Adam step size.
    clip_norm:
        Global gradient-norm ceiling (None disables clipping).
    """

    def __init__(
        self,
        network: LstmNetwork,
        learning_rate: float = 1e-3,
        clip_norm: float | None = 5.0,
    ) -> None:
        self.network = network
        self.optimizer = AdamOptimizer(learning_rate)
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive or None")
        self.clip_norm = clip_norm

    def _flatten(self, grads: dict) -> tuple[list, list]:
        """Pair up parameter and gradient arrays in a fixed order."""
        params: list[np.ndarray] = [self.network.w_head]
        grad_list: list[np.ndarray] = [grads["head_w"]]
        for cell, cell_grads in zip(self.network.cells, grads["cells"]):
            for name in ("w_x", "w_h", "bias"):
                params.append(cell.parameters()[name])
                grad_list.append(cell_grads[name])
        return params, grad_list

    def _clip(self, grad_list: list[np.ndarray], head_b_grad: float):
        if self.clip_norm is None:
            return grad_list, head_b_grad
        total = head_b_grad**2
        total += sum(float(np.sum(g**2)) for g in grad_list)
        norm = np.sqrt(total)
        if norm <= self.clip_norm:
            return grad_list, head_b_grad
        scale = self.clip_norm / norm
        return [g * scale for g in grad_list], head_b_grad * scale

    def train_batch(
        self, sequences: np.ndarray, targets: np.ndarray
    ) -> float:
        """One gradient step on a batch; returns the batch MSE."""
        predictions, caches = self.network.forward(sequences)
        errors = predictions - targets
        loss = float(np.mean(errors**2))
        d_predictions = 2.0 * errors / errors.shape[0]
        grads = self.network.backward(d_predictions, caches)
        params, grad_list = self._flatten(grads)
        grad_list, head_b_grad = self._clip(grad_list, grads["head_b"])
        self.optimizer.update(params, grad_list)
        self.network.b_head -= (
            self.optimizer.learning_rate * head_b_grad
        )
        return loss

    def fit(
        self,
        sequences: np.ndarray,
        targets: np.ndarray,
        epochs: int,
        batch_size: int,
        rng: np.random.Generator,
    ) -> TrainingHistory:
        """Shuffled mini-batch training; returns the loss history."""
        if epochs < 1:
            raise ValueError("epochs must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        n = sequences.shape[0]
        history = TrainingHistory()
        for _ in range(epochs):
            order = rng.permutation(n)
            losses = []
            for start in range(0, n, batch_size):
                batch = order[start : start + batch_size]
                losses.append(
                    self.train_batch(sequences[batch], targets[batch])
                )
            history.losses.append(float(np.mean(losses)))
        return history

"""Query-side of the chaos harness.

The :class:`FaultInjector` wraps a :class:`~repro.chaos.plan.FaultPlan`
with O(1)-ish lookups the victim layers call on their logical clocks:
the fabric asks ``device_down``/``link_factor`` per chunk, the serving
loop asks ``shard_stall_attempts``/``refresh_fault``, and the executor
asks ``worker_crash_attempts`` per dispatch round.  Queries are pure --
asking twice (e.g. when a chunk is retried after an exception) returns
the same answer -- and every *positive* answer is recorded exactly once
(deduped by ``(kind, start, target)``), so the observed timeline and
its digest are reproducible no matter how often a tick is replayed.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ChaosConfig
from repro.chaos.plan import (
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    _digest,
)


def _merge_windows(
    windows: list[tuple[int, int]],
) -> list[tuple[int, int]]:
    """Coalesce overlapping/adjacent ``[start, end)`` windows.

    Overlapping events on the same ``(kind, target)`` -- legal in
    hand-written plans, and possible when durations are clamped --
    used to record as *distinct* timeline entries covering one
    continuous outage, which skewed ``recovery_chunk`` and the
    recovery-latency pairing.  Coalescing at construction makes the
    observed timeline describe each contiguous outage exactly once.
    """
    merged: list[tuple[int, int]] = []
    for start, end in sorted(windows):
        if merged and start <= merged[-1][1]:
            merged[-1] = (
                merged[-1][0],
                max(merged[-1][1], end),
            )
        else:
            merged.append((start, end))
    return merged


class InjectedFaultError(RuntimeError):
    """A simulated fault raised into a victim layer by the harness.

    Distinguishable from organic failures so tests and operators can
    tell an injected refresh/build failure from a real one; the
    victim's graceful-degradation path must handle both identically.
    """


class FaultInjector:
    """Deterministic fault oracle over a generated plan.

    All queries run on the parent (single-threaded) side of each
    victim layer, so the record order -- and therefore
    :meth:`timeline_digest` -- is identical across worker counts.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        # Outage windows per (kind, device): ``device-fail`` and
        # ``device-correlated`` share the same query surface
        # (``device_down``) but keep their own kind on the observed
        # timeline.  Windows are coalesced per key at construction
        # (see :func:`_merge_windows`) so an overlap never records a
        # single contiguous outage twice.
        self._device_windows: dict[
            tuple[str, int], list[tuple[int, int]]
        ] = {}
        self._link_windows: dict[
            int, list[tuple[int, int, float]]
        ] = {}
        self._failslow_windows: dict[
            int, list[tuple[int, int, float]]
        ] = {}
        self._stalls: dict[tuple[int, int], int] = {}
        self._refresh: dict[int, str] = {}
        self._crashes: dict[tuple[int, int], int] = {}
        for event in plan.events:
            end = event.start + event.duration
            if event.kind in (
                KIND_DEVICE_FAIL,
                KIND_DEVICE_CORRELATED,
            ):
                self._device_windows.setdefault(
                    (event.kind, event.target), []
                ).append((event.start, end))
            elif event.kind == KIND_LINK_DEGRADE:
                self._link_windows.setdefault(
                    event.target, []
                ).append((event.start, end, event.magnitude))
            elif event.kind == KIND_DEVICE_FAILSLOW:
                self._failslow_windows.setdefault(
                    event.target, []
                ).append((event.start, end, event.magnitude))
            elif event.kind == KIND_SHARD_STALL:
                self._stalls[(event.start, event.target)] = (
                    event.duration
                )
            elif event.kind == KIND_REFRESH_FAIL:
                self._refresh[event.start] = "fail"
            elif event.kind == KIND_REFRESH_CORRUPT:
                self._refresh[event.start] = "corrupt"
            elif event.kind == KIND_WORKER_CRASH:
                self._crashes[(event.start, event.target)] = (
                    event.duration
                )
        for key, windows in self._device_windows.items():
            self._device_windows[key] = _merge_windows(windows)
        # Magnitude-carrying windows (link degradation, fail-slow
        # ramps) cannot be meaningfully merged across different
        # magnitudes; the ordering contract is *earliest window
        # wins*: windows are sorted by start and a query returns the
        # first one covering the chunk.
        for target in self._link_windows:
            self._link_windows[target] = sorted(
                set(self._link_windows[target])
            )
        for target in self._failslow_windows:
            self._failslow_windows[target] = sorted(
                set(self._failslow_windows[target])
            )
        self._records: list[FaultEvent] = []
        self._seen: set[tuple[str, int, int]] = set()

    @classmethod
    def from_config(
        cls,
        config: Optional[ChaosConfig],
        n_devices: int = 0,
        n_shards: int = 0,
        task_lanes: int = 0,
    ) -> Optional["FaultInjector"]:
        """Build an injector, or ``None`` when chaos is disabled.

        ``None`` (not a no-op injector) is the disabled form so every
        victim layer can gate on ``if injector is not None`` and run
        its exact pre-chaos code path otherwise.
        """
        if config is None or not config.enabled:
            return None
        plan = FaultPlan.generate(
            config,
            n_devices=n_devices,
            n_shards=n_shards,
            task_lanes=task_lanes,
        )
        return cls(plan)

    # ------------------------------------------------------------------
    # Fabric queries (logical clock: fabric chunk index)
    # ------------------------------------------------------------------
    def device_down(self, device: int, chunk: int) -> bool:
        """Is ``device`` inside any outage window at ``chunk``?

        Covers both the independent ``device-fail`` channel and the
        correlated blast channel; the observed timeline records the
        kind the outage came from.
        """
        down = False
        for kind in (KIND_DEVICE_FAIL, KIND_DEVICE_CORRELATED):
            for start, end in self._device_windows.get(
                (kind, device), ()
            ):
                if start <= chunk < end:
                    self._record(kind, start, device, end - start)
                    down = True
        return down

    def outage_end(self, device: int, chunk: int) -> Optional[int]:
        """First chunk at which ``device`` is healthy again.

        Windows of *both* outage kinds are coalesced for the answer:
        an independent outage running into a correlated blast on the
        same device is one contiguous outage, and its end is the end
        of the combined window, not of whichever event covers
        ``chunk``.
        """
        windows: list[tuple[int, int]] = []
        for kind in (KIND_DEVICE_FAIL, KIND_DEVICE_CORRELATED):
            windows.extend(
                self._device_windows.get((kind, device), ())
            )
        for start, end in _merge_windows(windows):
            if start <= chunk < end:
                return end
        return None

    def link_factor(self, device: int, chunk: int) -> float:
        """Link round-trip multiplier; 1.0 when healthy."""
        for start, end, factor in self._link_windows.get(device, ()):
            if start <= chunk < end:
                self._record(
                    KIND_LINK_DEGRADE,
                    start,
                    device,
                    end - start,
                    factor,
                )
                return factor
        return 1.0

    def failslow_factor(self, device: int, chunk: int) -> float:
        """Whole-path latency multiplier of a fail-slow ramp.

        Unlike :meth:`link_factor`'s binary windows, the multiplier
        *grows per chunk*: it ramps linearly from near-healthy at the
        window's first chunk up to the event's peak ``magnitude`` at
        its last chunk, then clears.  Earliest window wins when
        hand-written windows overlap.  Returns 1.0 when healthy.
        """
        for start, end, magnitude in self._failslow_windows.get(
            device, ()
        ):
            if start <= chunk < end:
                self._record(
                    KIND_DEVICE_FAILSLOW,
                    start,
                    device,
                    end - start,
                    magnitude,
                )
                progress = (chunk - start + 1) / (end - start)
                return 1.0 + (magnitude - 1.0) * progress
        return 1.0

    # ------------------------------------------------------------------
    # Serving queries (logical clocks: chunk index, build index)
    # ------------------------------------------------------------------
    def shard_stall_attempts(self, chunk: int, shard: int) -> int:
        attempts = self._stalls.get((chunk, shard), 0)
        if attempts:
            self._record(KIND_SHARD_STALL, chunk, shard, attempts)
        return attempts

    def refresh_fault(self, build_index: int) -> Optional[str]:
        """``"fail"``, ``"corrupt"``, or ``None`` for this build."""
        kind = self._refresh.get(build_index)
        if kind == "fail":
            self._record(KIND_REFRESH_FAIL, build_index, -1)
        elif kind == "corrupt":
            self._record(KIND_REFRESH_CORRUPT, build_index, -1)
        return kind

    # ------------------------------------------------------------------
    # Executor queries (logical clock: dispatch round)
    # ------------------------------------------------------------------
    def worker_crash_attempts(
        self, dispatch_round: int, task: int
    ) -> int:
        attempts = self._crashes.get((dispatch_round, task), 0)
        if attempts:
            self._record(
                KIND_WORKER_CRASH, dispatch_round, task, attempts
            )
        return attempts

    # ------------------------------------------------------------------
    # Observed timeline
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        start: int,
        target: int,
        duration: int = 1,
        magnitude: float = 0.0,
    ) -> None:
        key = (kind, start, target)
        if key in self._seen:
            return
        self._seen.add(key)
        self._records.append(
            FaultEvent(
                start=start,
                kind=kind,
                target=target,
                duration=duration,
                magnitude=magnitude,
            )
        )

    @property
    def records(self) -> tuple[FaultEvent, ...]:
        """Faults that actually fired, in canonical order."""
        return tuple(sorted(self._records))

    def timeline(self) -> list[dict]:
        return [event.as_dict() for event in self.records]

    def timeline_digest(self) -> str:
        """Canonical SHA-256 of the *observed* fault timeline."""
        return _digest(self.records)

"""Query-side of the chaos harness.

The :class:`FaultInjector` wraps a :class:`~repro.chaos.plan.FaultPlan`
with O(1)-ish lookups the victim layers call on their logical clocks:
the fabric asks ``device_down``/``link_factor`` per chunk, the serving
loop asks ``shard_stall_attempts``/``refresh_fault``, and the executor
asks ``worker_crash_attempts`` per dispatch round.  Queries are pure --
asking twice (e.g. when a chunk is retried after an exception) returns
the same answer -- and every *positive* answer is recorded exactly once
(deduped by ``(kind, start, target)``), so the observed timeline and
its digest are reproducible no matter how often a tick is replayed.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ChaosConfig
from repro.chaos.plan import (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultPlan,
    _digest,
)


class InjectedFaultError(RuntimeError):
    """A simulated fault raised into a victim layer by the harness.

    Distinguishable from organic failures so tests and operators can
    tell an injected refresh/build failure from a real one; the
    victim's graceful-degradation path must handle both identically.
    """


class FaultInjector:
    """Deterministic fault oracle over a generated plan.

    All queries run on the parent (single-threaded) side of each
    victim layer, so the record order -- and therefore
    :meth:`timeline_digest` -- is identical across worker counts.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._device_windows: dict[int, list[tuple[int, int]]] = {}
        self._link_windows: dict[
            int, list[tuple[int, int, float]]
        ] = {}
        self._stalls: dict[tuple[int, int], int] = {}
        self._refresh: dict[int, str] = {}
        self._crashes: dict[tuple[int, int], int] = {}
        for event in plan.events:
            end = event.start + event.duration
            if event.kind == KIND_DEVICE_FAIL:
                self._device_windows.setdefault(
                    event.target, []
                ).append((event.start, end))
            elif event.kind == KIND_LINK_DEGRADE:
                self._link_windows.setdefault(
                    event.target, []
                ).append((event.start, end, event.magnitude))
            elif event.kind == KIND_SHARD_STALL:
                self._stalls[(event.start, event.target)] = (
                    event.duration
                )
            elif event.kind == KIND_REFRESH_FAIL:
                self._refresh[event.start] = "fail"
            elif event.kind == KIND_REFRESH_CORRUPT:
                self._refresh[event.start] = "corrupt"
            elif event.kind == KIND_WORKER_CRASH:
                self._crashes[(event.start, event.target)] = (
                    event.duration
                )
        self._records: list[FaultEvent] = []
        self._seen: set[tuple[str, int, int]] = set()

    @classmethod
    def from_config(
        cls,
        config: Optional[ChaosConfig],
        n_devices: int = 0,
        n_shards: int = 0,
        task_lanes: int = 0,
    ) -> Optional["FaultInjector"]:
        """Build an injector, or ``None`` when chaos is disabled.

        ``None`` (not a no-op injector) is the disabled form so every
        victim layer can gate on ``if injector is not None`` and run
        its exact pre-chaos code path otherwise.
        """
        if config is None or not config.enabled:
            return None
        plan = FaultPlan.generate(
            config,
            n_devices=n_devices,
            n_shards=n_shards,
            task_lanes=task_lanes,
        )
        return cls(plan)

    # ------------------------------------------------------------------
    # Fabric queries (logical clock: fabric chunk index)
    # ------------------------------------------------------------------
    def device_down(self, device: int, chunk: int) -> bool:
        for start, end in self._device_windows.get(device, ()):
            if start <= chunk < end:
                self._record(
                    KIND_DEVICE_FAIL, start, device, end - start
                )
                return True
        return False

    def outage_end(self, device: int, chunk: int) -> Optional[int]:
        """First chunk at which ``device`` is healthy again."""
        for start, end in self._device_windows.get(device, ()):
            if start <= chunk < end:
                return end
        return None

    def link_factor(self, device: int, chunk: int) -> float:
        """Link round-trip multiplier; 1.0 when healthy."""
        for start, end, factor in self._link_windows.get(device, ()):
            if start <= chunk < end:
                self._record(
                    KIND_LINK_DEGRADE,
                    start,
                    device,
                    end - start,
                    factor,
                )
                return factor
        return 1.0

    # ------------------------------------------------------------------
    # Serving queries (logical clocks: chunk index, build index)
    # ------------------------------------------------------------------
    def shard_stall_attempts(self, chunk: int, shard: int) -> int:
        attempts = self._stalls.get((chunk, shard), 0)
        if attempts:
            self._record(KIND_SHARD_STALL, chunk, shard, attempts)
        return attempts

    def refresh_fault(self, build_index: int) -> Optional[str]:
        """``"fail"``, ``"corrupt"``, or ``None`` for this build."""
        kind = self._refresh.get(build_index)
        if kind == "fail":
            self._record(KIND_REFRESH_FAIL, build_index, -1)
        elif kind == "corrupt":
            self._record(KIND_REFRESH_CORRUPT, build_index, -1)
        return kind

    # ------------------------------------------------------------------
    # Executor queries (logical clock: dispatch round)
    # ------------------------------------------------------------------
    def worker_crash_attempts(
        self, dispatch_round: int, task: int
    ) -> int:
        attempts = self._crashes.get((dispatch_round, task), 0)
        if attempts:
            self._record(
                KIND_WORKER_CRASH, dispatch_round, task, attempts
            )
        return attempts

    # ------------------------------------------------------------------
    # Observed timeline
    # ------------------------------------------------------------------
    def _record(
        self,
        kind: str,
        start: int,
        target: int,
        duration: int = 1,
        magnitude: float = 0.0,
    ) -> None:
        key = (kind, start, target)
        if key in self._seen:
            return
        self._seen.add(key)
        self._records.append(
            FaultEvent(
                start=start,
                kind=kind,
                target=target,
                duration=duration,
                magnitude=magnitude,
            )
        )

    @property
    def records(self) -> tuple[FaultEvent, ...]:
        """Faults that actually fired, in canonical order."""
        return tuple(sorted(self._records))

    def timeline(self) -> list[dict]:
        return [event.as_dict() for event in self.records]

    def timeline_digest(self) -> str:
        """Canonical SHA-256 of the *observed* fault timeline."""
        return _digest(self.records)

"""Seeded fault timelines on a logical clock.

A :class:`FaultPlan` is the *schedule* of every fault a chaos run will
inject: device outages and link-latency degradation against the CXL
fabric, per-shard stalls and refresh-build faults against the serving
loop, and worker crashes against the parallel executor.  The plan is
generated once from a :class:`~repro.core.config.ChaosConfig` seed via
independent ``numpy`` ``SeedSequence`` child streams (one per fault
channel, one per target within a channel), and every event is pinned
to a *logical* tick -- chunk index, build index, or dispatch round --
never wall-clock time.  Same seed, same topology => byte-identical
timeline, regardless of worker count or host speed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import ChaosConfig

#: Fault kinds, one per channel.  ``target`` semantics per kind:
#: device id, device id, shard id, -1, -1, task lane, device id,
#: device id.
KIND_DEVICE_FAIL = "device-fail"
KIND_LINK_DEGRADE = "link-degrade"
KIND_SHARD_STALL = "shard-stall"
KIND_REFRESH_FAIL = "refresh-fail"
KIND_REFRESH_CORRUPT = "refresh-corrupt"
KIND_WORKER_CRASH = "worker-crash"
KIND_DEVICE_CORRELATED = "device-correlated"
KIND_DEVICE_FAILSLOW = "device-failslow"

FAULT_KINDS = (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_REFRESH_FAIL,
    KIND_REFRESH_CORRUPT,
    KIND_WORKER_CRASH,
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAILSLOW,
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``start`` is the logical tick the fault begins: the chunk index
    for fabric/serving faults, the build index for refresh faults,
    and the dispatch round for worker crashes.  ``duration`` is the
    window length in the same unit for windowed faults
    (device outages, link degradation) and the number of consecutive
    swallowed *attempts* for retry-style faults (shard stalls, worker
    crashes); refresh faults are always one build.  ``target`` is the
    device/shard/task lane the fault hits, or ``-1`` when the fault
    has no spatial target (refresh builds).  ``magnitude`` carries
    the link-degradation factor and is 0.0 for every other kind.
    """

    start: int
    kind: str
    target: int
    duration: int = 1
    magnitude: float = 0.0

    def as_dict(self) -> dict:
        return {
            "start": int(self.start),
            "kind": self.kind,
            "target": int(self.target),
            "duration": int(self.duration),
            "magnitude": float(self.magnitude),
        }


def _digest(events: Iterable[FaultEvent]) -> str:
    payload = json.dumps(
        [event.as_dict() for event in events],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _window_starts(
    rng: np.random.Generator,
    horizon: int,
    rate: float,
    duration: int,
) -> list[int]:
    """Non-overlapping window starts from per-tick Bernoulli draws."""
    draws = rng.random(horizon)
    starts: list[int] = []
    tick = 0
    while tick < horizon:
        if draws[tick] < rate:
            starts.append(tick)
            tick += duration
        else:
            tick += 1
    return starts


def _failslow_resets(
    config: ChaosConfig, device: int, start: int, duration: int
) -> list[FaultEvent]:
    """Watchdog-reset blips of one fail-slow ramp window.

    A fleet-scale fail-slow device does not just get slower: past
    some degradation level its controller starts tripping the
    watchdog, so the latency ramp is punctuated by transient
    one-chunk outages.  The blips are a pure function of the window
    geometry (no extra randomness): the first lands on the chunk
    where the interpolated multiplier reaches
    ``failslow_reset_factor``, then one every
    ``failslow_reset_period`` chunks to the window's end.  They are
    scheduled as ordinary ``device-fail`` events, so the existing
    outage/failover machinery serves them with zero access loss.
    """
    reset = config.failslow_reset_factor
    peak = config.failslow_max_factor
    if reset == 0.0 or peak <= 1.0 or reset > peak:
        return []
    # factor(c) = 1 + (peak - 1) * (c - start + 1) / duration
    offset = int(
        np.ceil(duration * (reset - 1.0) / (peak - 1.0))
    )
    first = start + max(offset, 1) - 1
    return [
        FaultEvent(
            start=chunk,
            kind=KIND_DEVICE_FAIL,
            target=device,
            duration=1,
        )
        for chunk in range(
            first, start + duration, config.failslow_reset_period
        )
    ]


class FaultPlan:
    """An immutable, sorted fault timeline.

    Construct directly from events (tests, replays) or via
    :meth:`generate` from a config + topology.  Events are kept
    sorted by ``(start, kind, target)`` so the timeline -- and its
    :meth:`digest` -- is canonical.
    """

    def __init__(
        self, config: ChaosConfig, events: Iterable[FaultEvent]
    ) -> None:
        self.config = config
        self.events: tuple[FaultEvent, ...] = tuple(sorted(events))

    @classmethod
    def generate(
        cls,
        config: ChaosConfig,
        n_devices: int = 0,
        n_shards: int = 0,
        task_lanes: int = 0,
    ) -> "FaultPlan":
        """Sample the full timeline from ``config.seed``.

        ``task_lanes`` bounds the per-round task index the worker
        crash channel covers; it defaults to
        ``max(n_devices, n_shards, 1)`` which matches how the fabric
        and serving loops fan tasks out.  Each channel (and each
        target within a channel) draws from its own ``SeedSequence``
        child, so enabling one channel never perturbs another
        (appending children preserves the earlier channels' streams,
        so pre-existing plans keep their exact timelines at equal
        seeds).

        Raises a :class:`ValueError` up front -- before any sampling
        -- when ``correlated_fail_k`` exceeds the fleet size, rather
        than failing inside the victim-sampling draw.
        """
        horizon = config.horizon_chunks
        if task_lanes <= 0:
            task_lanes = max(n_devices, n_shards, 1)
        if (
            config.correlated_fail_rate > 0.0
            and n_devices > 0
            and config.correlated_fail_k > n_devices
        ):
            raise ValueError(
                f"correlated_fail_k ({config.correlated_fail_k})"
                f" exceeds the fleet size ({n_devices} devices);"
                " a correlated blast cannot take down more devices"
                " than the fabric has"
            )
        channels = np.random.SeedSequence(config.seed).spawn(8)
        events: list[FaultEvent] = []

        if config.device_fail_rate > 0.0 and n_devices > 0:
            for device, seq in enumerate(channels[0].spawn(n_devices)):
                rng = np.random.default_rng(seq)
                for start in _window_starts(
                    rng,
                    horizon,
                    config.device_fail_rate,
                    config.device_fail_chunks,
                ):
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_DEVICE_FAIL,
                            target=device,
                            duration=min(
                                config.device_fail_chunks,
                                horizon - start,
                            ),
                        )
                    )

        if config.link_degrade_rate > 0.0 and n_devices > 0:
            for device, seq in enumerate(channels[1].spawn(n_devices)):
                rng = np.random.default_rng(seq)
                for start in _window_starts(
                    rng,
                    horizon,
                    config.link_degrade_rate,
                    config.link_degrade_chunks,
                ):
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_LINK_DEGRADE,
                            target=device,
                            duration=min(
                                config.link_degrade_chunks,
                                horizon - start,
                            ),
                            magnitude=config.link_degrade_factor,
                        )
                    )

        if config.shard_stall_rate > 0.0 and n_shards > 0:
            for shard, seq in enumerate(channels[2].spawn(n_shards)):
                draws = np.random.default_rng(seq).random(horizon)
                for chunk in np.flatnonzero(
                    draws < config.shard_stall_rate
                ):
                    events.append(
                        FaultEvent(
                            start=int(chunk),
                            kind=KIND_SHARD_STALL,
                            target=shard,
                            duration=config.shard_stall_attempts,
                        )
                    )

        refresh_total = (
            config.refresh_fail_rate + config.refresh_corrupt_rate
        )
        if refresh_total > 0.0:
            draws = np.random.default_rng(channels[3]).random(horizon)
            for build in range(horizon):
                if draws[build] < config.refresh_fail_rate:
                    kind = KIND_REFRESH_FAIL
                elif draws[build] < refresh_total:
                    kind = KIND_REFRESH_CORRUPT
                else:
                    continue
                events.append(
                    FaultEvent(start=build, kind=kind, target=-1)
                )

        if config.worker_crash_rate > 0.0:
            draws = np.random.default_rng(channels[4]).random(
                (horizon, task_lanes)
            )
            for round_index, lane in zip(
                *np.nonzero(draws < config.worker_crash_rate)
            ):
                events.append(
                    FaultEvent(
                        start=int(round_index),
                        kind=KIND_WORKER_CRASH,
                        target=int(lane),
                        duration=config.worker_crash_attempts,
                    )
                )

        if config.correlated_fail_rate > 0.0 and n_devices > 0:
            # One shared blast-radius stream (not per-device): the
            # window starts *and* every blast's victim set come from
            # the same child, so the correlation structure -- which
            # devices go down together -- is a pure function of the
            # seed, stable under fleet-size-preserving config edits.
            rng = np.random.default_rng(channels[6])
            k = min(config.correlated_fail_k, n_devices)
            for start in _window_starts(
                rng,
                horizon,
                config.correlated_fail_rate,
                config.correlated_fail_chunks,
            ):
                victims = np.sort(
                    rng.choice(n_devices, size=k, replace=False)
                )
                duration = min(
                    config.correlated_fail_chunks, horizon - start
                )
                for device in victims.tolist():
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_DEVICE_CORRELATED,
                            target=int(device),
                            duration=duration,
                        )
                    )

        if config.failslow_rate > 0.0 and n_devices > 0:
            # Fail-slow ramps: ``magnitude`` is the *peak* multiplier,
            # reached at the end of the window; the injector
            # interpolates the per-chunk factor from the window
            # geometry (see ``FaultInjector.failslow_factor``).
            for device, seq in enumerate(channels[7].spawn(n_devices)):
                rng = np.random.default_rng(seq)
                for start in _window_starts(
                    rng,
                    horizon,
                    config.failslow_rate,
                    config.failslow_chunks,
                ):
                    duration = min(
                        config.failslow_chunks, horizon - start
                    )
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_DEVICE_FAILSLOW,
                            target=device,
                            duration=duration,
                            magnitude=config.failslow_max_factor,
                        )
                    )
                    events.extend(
                        _failslow_resets(
                            config, device, start, duration
                        )
                    )

        return cls(config, events)

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> Sequence[FaultEvent]:
        return tuple(e for e in self.events if e.kind == kind)

    def as_dicts(self) -> list[dict]:
        return [event.as_dict() for event in self.events]

    def digest(self) -> str:
        """Canonical SHA-256 of the scheduled timeline."""
        return _digest(self.events)

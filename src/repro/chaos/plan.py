"""Seeded fault timelines on a logical clock.

A :class:`FaultPlan` is the *schedule* of every fault a chaos run will
inject: device outages and link-latency degradation against the CXL
fabric, per-shard stalls and refresh-build faults against the serving
loop, and worker crashes against the parallel executor.  The plan is
generated once from a :class:`~repro.core.config.ChaosConfig` seed via
independent ``numpy`` ``SeedSequence`` child streams (one per fault
channel, one per target within a channel), and every event is pinned
to a *logical* tick -- chunk index, build index, or dispatch round --
never wall-clock time.  Same seed, same topology => byte-identical
timeline, regardless of worker count or host speed.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.config import ChaosConfig

#: Fault kinds, one per channel.  ``target`` semantics per kind:
#: device id, device id, shard id, -1, -1, task lane.
KIND_DEVICE_FAIL = "device-fail"
KIND_LINK_DEGRADE = "link-degrade"
KIND_SHARD_STALL = "shard-stall"
KIND_REFRESH_FAIL = "refresh-fail"
KIND_REFRESH_CORRUPT = "refresh-corrupt"
KIND_WORKER_CRASH = "worker-crash"

FAULT_KINDS = (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_REFRESH_FAIL,
    KIND_REFRESH_CORRUPT,
    KIND_WORKER_CRASH,
)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``start`` is the logical tick the fault begins: the chunk index
    for fabric/serving faults, the build index for refresh faults,
    and the dispatch round for worker crashes.  ``duration`` is the
    window length in the same unit for windowed faults
    (device outages, link degradation) and the number of consecutive
    swallowed *attempts* for retry-style faults (shard stalls, worker
    crashes); refresh faults are always one build.  ``target`` is the
    device/shard/task lane the fault hits, or ``-1`` when the fault
    has no spatial target (refresh builds).  ``magnitude`` carries
    the link-degradation factor and is 0.0 for every other kind.
    """

    start: int
    kind: str
    target: int
    duration: int = 1
    magnitude: float = 0.0

    def as_dict(self) -> dict:
        return {
            "start": int(self.start),
            "kind": self.kind,
            "target": int(self.target),
            "duration": int(self.duration),
            "magnitude": float(self.magnitude),
        }


def _digest(events: Iterable[FaultEvent]) -> str:
    payload = json.dumps(
        [event.as_dict() for event in events],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _window_starts(
    rng: np.random.Generator,
    horizon: int,
    rate: float,
    duration: int,
) -> list[int]:
    """Non-overlapping window starts from per-tick Bernoulli draws."""
    draws = rng.random(horizon)
    starts: list[int] = []
    tick = 0
    while tick < horizon:
        if draws[tick] < rate:
            starts.append(tick)
            tick += duration
        else:
            tick += 1
    return starts


class FaultPlan:
    """An immutable, sorted fault timeline.

    Construct directly from events (tests, replays) or via
    :meth:`generate` from a config + topology.  Events are kept
    sorted by ``(start, kind, target)`` so the timeline -- and its
    :meth:`digest` -- is canonical.
    """

    def __init__(
        self, config: ChaosConfig, events: Iterable[FaultEvent]
    ) -> None:
        self.config = config
        self.events: tuple[FaultEvent, ...] = tuple(sorted(events))

    @classmethod
    def generate(
        cls,
        config: ChaosConfig,
        n_devices: int = 0,
        n_shards: int = 0,
        task_lanes: int = 0,
    ) -> "FaultPlan":
        """Sample the full timeline from ``config.seed``.

        ``task_lanes`` bounds the per-round task index the worker
        crash channel covers; it defaults to
        ``max(n_devices, n_shards, 1)`` which matches how the fabric
        and serving loops fan tasks out.  Each channel (and each
        target within a channel) draws from its own ``SeedSequence``
        child, so enabling one channel never perturbs another.
        """
        horizon = config.horizon_chunks
        if task_lanes <= 0:
            task_lanes = max(n_devices, n_shards, 1)
        channels = np.random.SeedSequence(config.seed).spawn(6)
        events: list[FaultEvent] = []

        if config.device_fail_rate > 0.0 and n_devices > 0:
            for device, seq in enumerate(channels[0].spawn(n_devices)):
                rng = np.random.default_rng(seq)
                for start in _window_starts(
                    rng,
                    horizon,
                    config.device_fail_rate,
                    config.device_fail_chunks,
                ):
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_DEVICE_FAIL,
                            target=device,
                            duration=min(
                                config.device_fail_chunks,
                                horizon - start,
                            ),
                        )
                    )

        if config.link_degrade_rate > 0.0 and n_devices > 0:
            for device, seq in enumerate(channels[1].spawn(n_devices)):
                rng = np.random.default_rng(seq)
                for start in _window_starts(
                    rng,
                    horizon,
                    config.link_degrade_rate,
                    config.link_degrade_chunks,
                ):
                    events.append(
                        FaultEvent(
                            start=start,
                            kind=KIND_LINK_DEGRADE,
                            target=device,
                            duration=min(
                                config.link_degrade_chunks,
                                horizon - start,
                            ),
                            magnitude=config.link_degrade_factor,
                        )
                    )

        if config.shard_stall_rate > 0.0 and n_shards > 0:
            for shard, seq in enumerate(channels[2].spawn(n_shards)):
                draws = np.random.default_rng(seq).random(horizon)
                for chunk in np.flatnonzero(
                    draws < config.shard_stall_rate
                ):
                    events.append(
                        FaultEvent(
                            start=int(chunk),
                            kind=KIND_SHARD_STALL,
                            target=shard,
                            duration=config.shard_stall_attempts,
                        )
                    )

        refresh_total = (
            config.refresh_fail_rate + config.refresh_corrupt_rate
        )
        if refresh_total > 0.0:
            draws = np.random.default_rng(channels[3]).random(horizon)
            for build in range(horizon):
                if draws[build] < config.refresh_fail_rate:
                    kind = KIND_REFRESH_FAIL
                elif draws[build] < refresh_total:
                    kind = KIND_REFRESH_CORRUPT
                else:
                    continue
                events.append(
                    FaultEvent(start=build, kind=kind, target=-1)
                )

        if config.worker_crash_rate > 0.0:
            draws = np.random.default_rng(channels[4]).random(
                (horizon, task_lanes)
            )
            for round_index, lane in zip(
                *np.nonzero(draws < config.worker_crash_rate)
            ):
                events.append(
                    FaultEvent(
                        start=int(round_index),
                        kind=KIND_WORKER_CRASH,
                        target=int(lane),
                        duration=config.worker_crash_attempts,
                    )
                )

        return cls(config, events)

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> Sequence[FaultEvent]:
        return tuple(e for e in self.events if e.kind == kind)

    def as_dicts(self) -> list[dict]:
        return [event.as_dict() for event in self.events]

    def digest(self) -> str:
        """Canonical SHA-256 of the scheduled timeline."""
        return _digest(self.events)

"""Canonical chaos scenarios shared by the recovery bench and CLI.

Each scenario activates exactly one fault channel of
:class:`~repro.core.config.ChaosConfig` at a rate tuned to fire a
handful of events over a typical run, and a runner drives the victim
layer chunk by chunk, collecting everything the scorecard needs: the
observed fault timeline (and its digest), per-chunk miss counters (so
post-recovery windows can be priced against a no-fault baseline over
the *same* chunk range), degraded/failover traffic, and retry
counters.  Everything is deterministic in the chaos seed; the bench
asserts byte-identical rows across repeat runs and worker counts.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import (
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
)
from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    FleetHealthConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.cxl.fabric import CxlFabric

#: Scenario name -> the single fault channel it exercises.
SCENARIO_NAMES = (
    "device_failure",
    "link_degrade",
    "device_correlated",
    "device_failslow",
    "prepared_failure",
    "shard_stall",
    "refresh_failure",
    "worker_crash",
)

#: Which layer each scenario drives.
FABRIC_SCENARIOS = (
    "device_failure",
    "link_degrade",
    "device_correlated",
    "device_failslow",
)
SERVING_SCENARIOS = ("shard_stall", "refresh_failure", "worker_crash")
#: Scenarios that drive the offline one-shot entry point
#: (``CxlFabric.run_prepared``) rather than hand-chunked ingest.
PREPARED_SCENARIOS = ("prepared_failure",)

_SCENARIO_OVERRIDES: dict[str, dict] = {
    # Outages of a few chunks; failover must serve every access.
    "device_failure": {
        "device_fail_rate": 0.08,
        "device_fail_chunks": 4,
    },
    # Link round-trips priced at 4x inside degradation windows.
    "link_degrade": {
        "link_degrade_rate": 0.10,
        "link_degrade_chunks": 4,
        "link_degrade_factor": 4.0,
    },
    # Stalls swallow more attempts than the retry budget allows, so
    # the affected shard-chunks degrade to SSD-direct service.
    "shard_stall": {
        "shard_stall_rate": 0.08,
        "shard_stall_attempts": 3,
    },
    # Roughly half the builds refuse (raise or corrupt); backoff
    # keeps the deployed generation serving until a build lands, so
    # the tail still recovers to near-baseline miss rates.
    "refresh_failure": {
        "refresh_fail_rate": 0.3,
        "refresh_corrupt_rate": 0.2,
    },
    # Single-attempt crashes, always inside the retry budget: the
    # run must be bit-identical to fault-free, with retries > 0.
    "worker_crash": {
        "worker_crash_rate": 0.05,
        "worker_crash_attempts": 1,
    },
    # Correlated blasts: k devices drop together (shared enclosure /
    # switch), so failover re-homes a multi-device traffic share at
    # once and must still serve every access.
    "device_correlated": {
        "correlated_fail_rate": 0.12,
        "correlated_fail_chunks": 4,
        "correlated_fail_k": 2,
    },
    # Fail-slow: the window length clamps to the horizon end, so a
    # sick device keeps ramping (up to the max factor) until the run
    # ends -- the regime where health-driven quarantine pays and
    # recovery-by-waiting does not.  The rate is per device per
    # chunk; it is tuned low so a typical run sickens a strict
    # minority of the fleet and the median stays a healthy
    # reference.
    "device_failslow": {
        "failslow_rate": 0.02,
        "failslow_chunks": 4096,
        "failslow_max_factor": 8.0,
        "failslow_reset_factor": 4.0,
        "failslow_reset_period": 2,
    },
    # The device_failure channel driven through the offline one-shot
    # entry point: run_prepared must degrade to chunked ingest and
    # lose nothing.
    "prepared_failure": {
        "device_fail_rate": 0.08,
        "device_fail_chunks": 4,
    },
}


def scenario_chaos(
    name: str, seed: int = 0, horizon_chunks: int | None = None
) -> ChaosConfig:
    """The canonical single-channel :class:`ChaosConfig` of ``name``.

    Pass ``horizon_chunks`` (the run's actual chunk count) so the
    plan's fault density lands inside the stream rather than being
    diluted over the default 256-chunk horizon.
    """
    if name not in _SCENARIO_OVERRIDES:
        raise ValueError(
            f"unknown scenario {name!r};"
            f" expected one of {SCENARIO_NAMES}"
        )
    kwargs = dict(_SCENARIO_OVERRIDES[name])
    if horizon_chunks is not None:
        kwargs["horizon_chunks"] = horizon_chunks
    return ChaosConfig(enabled=True, seed=seed, **kwargs)


def last_fault_end(timeline: list[dict]) -> int:
    """First chunk index with no fault active (``0`` if none fired)."""
    end = 0
    for event in timeline:
        end = max(end, event["start"] + event["duration"])
    return end


#: Fault kinds whose ``start``/``duration`` tick is the chunk index
#: (or the dispatch round, which advances one per chunk).  Refresh
#: faults tick on the *build* index and are located via the
#: chunk-stamped failure events instead.
_CHUNK_CLOCKED = (
    KIND_DEVICE_FAIL,
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
)


def recovery_chunk(timeline: list[dict], events: list[dict]) -> int:
    """First chunk with every observed fault behind it.

    Takes the later of the last chunk-clocked fault window's end and
    the last recorded failure/recovery event (which covers
    build-indexed refresh faults: their ``FailureEvent`` records
    carry the chunk they hit).
    """
    end = last_fault_end(
        [e for e in timeline if e["kind"] in _CHUNK_CLOCKED]
    )
    for event in events:
        end = max(end, event["chunk_index"] + 1)
    return end


def tail_miss_rate(
    chunk_counters: list[tuple[int, int]], from_chunk: int
) -> float:
    """Miss rate of the chunks at index ``from_chunk`` and later.

    ``chunk_counters`` is the runner's per-chunk ``(accesses,
    misses)`` record; the post-recovery window is everything after
    the last scheduled fault cleared.  Falls back to the whole run
    when the tail is empty (a fault window reaching the final chunk).
    """
    tail = chunk_counters[from_chunk:]
    accesses = sum(row[0] for row in tail)
    if accesses == 0:
        tail = chunk_counters
        accesses = sum(row[0] for row in tail)
    if accesses == 0:
        return 0.0
    return sum(row[1] for row in tail) / accesses


def tail_latency_us(
    chunk_counters: list[tuple[int, int]],
    chunk_times_ns: list[int],
    from_chunk: int,
) -> float:
    """Per-access priced latency at chunk ``from_chunk`` and later.

    ``chunk_times_ns`` is the runner's per-chunk priced service-time
    record (premiums included), aligned with ``chunk_counters``.
    Falls back to the whole run when the tail is empty -- which is
    the interesting case for fail-slow: a ramp clamped to the horizon
    never clears, so the scorecard prices the entire degraded run.
    """
    tail_counters = chunk_counters[from_chunk:]
    tail_times = chunk_times_ns[from_chunk:]
    accesses = sum(row[0] for row in tail_counters)
    if accesses == 0:
        tail_counters = chunk_counters
        tail_times = chunk_times_ns
        accesses = sum(row[0] for row in tail_counters)
    if accesses == 0:
        return 0.0
    return sum(tail_times) / accesses / 1_000.0


def _injector_report(injector: FaultInjector | None) -> dict:
    if injector is None:
        return {"timeline": [], "timeline_digest": ""}
    return {
        "timeline": injector.timeline(),
        "timeline_digest": injector.timeline_digest(),
    }


def run_fabric_scenario(
    chaos: ChaosConfig | None,
    pages: np.ndarray,
    is_write: np.ndarray,
    *,
    topology: FabricTopology | None = None,
    config: IcgmmConfig | None = None,
    strategy: str = "lru",
    admission_threshold: float = 0.0,
    scores: np.ndarray | None = None,
    page_marginals: np.ndarray | None = None,
    page_score_map: dict[int, float] | None = None,
    chunk_requests: int = 4096,
    parallel: ParallelConfig | None = None,
    health: FleetHealthConfig | None = None,
    telemetry=None,
) -> dict:
    """Stream a workload through a (possibly faulty) fabric.

    Pass ``chaos=None`` for the no-fault baseline: the identical
    ingest path runs with the injector absent, which the parity suite
    asserts is bit-identical to the pre-chaos fabric.  ``health``
    arms the :class:`~repro.serving.health.FleetHealthMonitor`; the
    scorecard crosses every fault scenario with monitor on/off, so
    both arms flow through this one runner.
    """
    pages = np.asarray(pages, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    fabric = CxlFabric(
        topology=topology,
        config=config,
        parallel=parallel,
        chaos=chaos,
        health=health,
        telemetry=telemetry,
    )
    try:
        fabric.bind(
            strategy,
            admission_threshold,
            page_score_map=page_score_map,
        )
        chunk_counters: list[tuple[int, int]] = []
        chunk_times_ns: list[int] = []
        previous_time_ns = 0
        for start in range(0, pages.shape[0], chunk_requests):
            sl = slice(start, start + chunk_requests)
            stats = fabric.ingest(
                pages[sl],
                is_write[sl],
                scores=scores[sl] if scores is not None else None,
                page_marginals=(
                    page_marginals[sl]
                    if page_marginals is not None
                    else None
                ),
            )
            chunk_counters.append((stats.accesses, stats.misses))
            total_time_ns = fabric.results().total_time_ns
            chunk_times_ns.append(total_time_ns - previous_time_ns)
            previous_time_ns = total_time_ns
        result = fabric.results()
        report = _injector_report(fabric.injector)
        out = {
            "accesses": result.accesses,
            "miss_rate": result.totals.miss_rate,
            "total_time_ns": result.total_time_ns,
            "failover_accesses": sum(
                d.failover_stats.accesses
                for d in result.devices
                if d.failover_stats is not None
            ),
            "degraded_time_ns": sum(
                d.degraded_time_ns for d in result.devices
            ),
            "worker_retries": fabric._executor.retries_performed,
            "chunk_counters": chunk_counters,
            "chunk_times_ns": chunk_times_ns,
            "events": [
                event.as_dict() for event in fabric.metrics.events()
            ],
            "device_recovery_chunks": (
                fabric.metrics.recovery_latencies(
                    "device-down", "device-restored"
                )
            ),
            "quarantine_recovery_chunks": (
                fabric.metrics.recovery_latencies(
                    "device-quarantined", "device-reinstated"
                )
            ),
            "monitor": (
                fabric.monitor.summary()
                if fabric.monitor is not None
                else None
            ),
            **report,
        }
    finally:
        fabric.close()
    return out


def run_prepared_scenario(
    chaos: ChaosConfig | None,
    pages: np.ndarray,
    is_write: np.ndarray,
    *,
    topology: FabricTopology | None = None,
    config: IcgmmConfig | None = None,
    strategy: str = "lru",
    admission_threshold: float = 0.0,
    chunk_requests: int = 4096,
    parallel: ParallelConfig | None = None,
    health: FleetHealthConfig | None = None,
    telemetry=None,
) -> dict:
    """Drive ``CxlFabric.run_prepared`` under a (possibly faulty) plan.

    The one-shot offline entry point must survive chaos too: with an
    injector (or monitor) wired it degrades to the chunked ingest
    path, so every fault channel fires and zero accesses are lost.
    ``chaos=None`` with ``health=None`` exercises the untouched
    one-shot path -- the scorecard's prepared-parity row asserts that
    a disabled-chaos prepared run is byte-identical to the pre-chaos
    fabric's (warm-up cut disabled so counters match the streamed
    baseline access for access).
    """
    from repro.core.pipeline import PreparedWorkload

    pages = np.asarray(pages, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    prepared = PreparedWorkload(
        name="chaos-prepared",
        page_indices=pages,
        is_write=is_write,
        scores=np.zeros(pages.shape[0], dtype=np.float64),
        page_frequency_scores=np.zeros(
            pages.shape[0], dtype=np.float64
        ),
        engine=_PreparedStubEngine(admission_threshold),
    )
    fabric = CxlFabric(
        topology=topology,
        config=config,
        parallel=parallel,
        chaos=chaos,
        health=health,
        telemetry=telemetry,
    )
    try:
        result = fabric.run_prepared(
            prepared,
            strategy,
            warmup_fraction=0.0,
            chunk_requests=chunk_requests,
        )
        report = _injector_report(fabric.injector)
        out = {
            "accesses": result.accesses,
            "miss_rate": result.totals.miss_rate,
            "total_time_ns": result.total_time_ns,
            "failover_accesses": sum(
                d.failover_stats.accesses
                for d in result.devices
                if d.failover_stats is not None
            ),
            "degraded_time_ns": sum(
                d.degraded_time_ns for d in result.devices
            ),
            "worker_retries": fabric._executor.retries_performed,
            "events": [
                event.as_dict() for event in fabric.metrics.events()
            ],
            "device_recovery_chunks": (
                fabric.metrics.recovery_latencies(
                    "device-down", "device-restored"
                )
            ),
            "monitor": (
                fabric.monitor.summary()
                if fabric.monitor is not None
                else None
            ),
            **report,
        }
    finally:
        fabric.close()
    return out


class _PreparedStubEngine:
    """Minimal engine stand-in for strategy-less prepared replays.

    ``run_prepared`` only reads ``engine.admission_threshold`` when
    binding; the chaos prepared scenario replays under ``lru`` (no
    score stream), so a full GMM engine would be dead weight.
    """

    def __init__(self, admission_threshold: float = 0.0) -> None:
        self.admission_threshold = float(admission_threshold)


def run_serving_scenario(
    chaos: ChaosConfig | None,
    engine,
    pages: np.ndarray,
    is_write: np.ndarray,
    *,
    config: IcgmmConfig | None = None,
    serving: ServingConfig | None = None,
    measure_from: int = 0,
    telemetry=None,
) -> dict:
    """Stream a workload through a (possibly faulty) serving loop.

    ``chaos=None`` is the no-fault baseline on the identical path.
    """
    from repro.serving.service import IcgmmCacheService

    pages = np.asarray(pages, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=serving,
        measure_from=measure_from,
        chaos=chaos,
        telemetry=telemetry,
    )
    try:
        reports = service.ingest(pages, is_write)
    finally:
        service.close()
    summary = service.summary()
    chaos_section = summary.get(
        "chaos",
        {
            "timeline": [],
            "timeline_digest": "",
            "events": [],
            "stall_retries": 0,
            "worker_retries": 0,
            "refresh_attempts": 0,
            "refresh_failures": 0,
            "recovery_latency_chunks": [],
        },
    )
    return {
        "accesses": service.totals.accesses,
        "miss_rate": service.totals.miss_rate,
        "generation": service.generation,
        "swaps": len(service.swaps),
        "chunk_counters": [
            (report.stats.accesses, report.stats.misses)
            for report in reports
        ],
        "timeline": chaos_section["timeline"],
        "timeline_digest": chaos_section["timeline_digest"],
        "events": chaos_section["events"],
        "stall_retries": chaos_section["stall_retries"],
        "worker_retries": chaos_section["worker_retries"],
        "refresh_attempts": chaos_section["refresh_attempts"],
        "refresh_failures": chaos_section["refresh_failures"],
        "breaker_recovery_chunks": chaos_section[
            "recovery_latency_chunks"
        ],
    }

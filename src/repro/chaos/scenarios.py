"""Canonical chaos scenarios shared by the recovery bench and CLI.

Each scenario activates exactly one fault channel of
:class:`~repro.core.config.ChaosConfig` at a rate tuned to fire a
handful of events over a typical run, and a runner drives the victim
layer chunk by chunk, collecting everything the scorecard needs: the
observed fault timeline (and its digest), per-chunk miss counters (so
post-recovery windows can be priced against a no-fault baseline over
the *same* chunk range), degraded/failover traffic, and retry
counters.  Everything is deterministic in the chaos seed; the bench
asserts byte-identical rows across repeat runs and worker counts.
"""

from __future__ import annotations

import numpy as np

from repro.chaos.injector import FaultInjector
from repro.chaos.plan import (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
)
from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.cxl.fabric import CxlFabric

#: Scenario name -> the single fault channel it exercises.
SCENARIO_NAMES = (
    "device_failure",
    "link_degrade",
    "shard_stall",
    "refresh_failure",
    "worker_crash",
)

#: Which layer each scenario drives.
FABRIC_SCENARIOS = ("device_failure", "link_degrade")
SERVING_SCENARIOS = ("shard_stall", "refresh_failure", "worker_crash")

_SCENARIO_OVERRIDES: dict[str, dict] = {
    # Outages of a few chunks; failover must serve every access.
    "device_failure": {
        "device_fail_rate": 0.08,
        "device_fail_chunks": 4,
    },
    # Link round-trips priced at 4x inside degradation windows.
    "link_degrade": {
        "link_degrade_rate": 0.10,
        "link_degrade_chunks": 4,
        "link_degrade_factor": 4.0,
    },
    # Stalls swallow more attempts than the retry budget allows, so
    # the affected shard-chunks degrade to SSD-direct service.
    "shard_stall": {
        "shard_stall_rate": 0.08,
        "shard_stall_attempts": 3,
    },
    # Roughly half the builds refuse (raise or corrupt); backoff
    # keeps the deployed generation serving until a build lands, so
    # the tail still recovers to near-baseline miss rates.
    "refresh_failure": {
        "refresh_fail_rate": 0.3,
        "refresh_corrupt_rate": 0.2,
    },
    # Single-attempt crashes, always inside the retry budget: the
    # run must be bit-identical to fault-free, with retries > 0.
    "worker_crash": {
        "worker_crash_rate": 0.05,
        "worker_crash_attempts": 1,
    },
}


def scenario_chaos(
    name: str, seed: int = 0, horizon_chunks: int | None = None
) -> ChaosConfig:
    """The canonical single-channel :class:`ChaosConfig` of ``name``.

    Pass ``horizon_chunks`` (the run's actual chunk count) so the
    plan's fault density lands inside the stream rather than being
    diluted over the default 256-chunk horizon.
    """
    if name not in _SCENARIO_OVERRIDES:
        raise ValueError(
            f"unknown scenario {name!r};"
            f" expected one of {SCENARIO_NAMES}"
        )
    kwargs = dict(_SCENARIO_OVERRIDES[name])
    if horizon_chunks is not None:
        kwargs["horizon_chunks"] = horizon_chunks
    return ChaosConfig(enabled=True, seed=seed, **kwargs)


def last_fault_end(timeline: list[dict]) -> int:
    """First chunk index with no fault active (``0`` if none fired)."""
    end = 0
    for event in timeline:
        end = max(end, event["start"] + event["duration"])
    return end


#: Fault kinds whose ``start``/``duration`` tick is the chunk index
#: (or the dispatch round, which advances one per chunk).  Refresh
#: faults tick on the *build* index and are located via the
#: chunk-stamped failure events instead.
_CHUNK_CLOCKED = (
    KIND_DEVICE_FAIL,
    KIND_LINK_DEGRADE,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
)


def recovery_chunk(timeline: list[dict], events: list[dict]) -> int:
    """First chunk with every observed fault behind it.

    Takes the later of the last chunk-clocked fault window's end and
    the last recorded failure/recovery event (which covers
    build-indexed refresh faults: their ``FailureEvent`` records
    carry the chunk they hit).
    """
    end = last_fault_end(
        [e for e in timeline if e["kind"] in _CHUNK_CLOCKED]
    )
    for event in events:
        end = max(end, event["chunk_index"] + 1)
    return end


def tail_miss_rate(
    chunk_counters: list[tuple[int, int]], from_chunk: int
) -> float:
    """Miss rate of the chunks at index ``from_chunk`` and later.

    ``chunk_counters`` is the runner's per-chunk ``(accesses,
    misses)`` record; the post-recovery window is everything after
    the last scheduled fault cleared.  Falls back to the whole run
    when the tail is empty (a fault window reaching the final chunk).
    """
    tail = chunk_counters[from_chunk:]
    accesses = sum(row[0] for row in tail)
    if accesses == 0:
        tail = chunk_counters
        accesses = sum(row[0] for row in tail)
    if accesses == 0:
        return 0.0
    return sum(row[1] for row in tail) / accesses


def _injector_report(injector: FaultInjector | None) -> dict:
    if injector is None:
        return {"timeline": [], "timeline_digest": ""}
    return {
        "timeline": injector.timeline(),
        "timeline_digest": injector.timeline_digest(),
    }


def run_fabric_scenario(
    chaos: ChaosConfig | None,
    pages: np.ndarray,
    is_write: np.ndarray,
    *,
    topology: FabricTopology | None = None,
    config: IcgmmConfig | None = None,
    strategy: str = "lru",
    admission_threshold: float = 0.0,
    scores: np.ndarray | None = None,
    page_marginals: np.ndarray | None = None,
    page_score_map: dict[int, float] | None = None,
    chunk_requests: int = 4096,
    parallel: ParallelConfig | None = None,
    telemetry=None,
) -> dict:
    """Stream a workload through a (possibly faulty) fabric.

    Pass ``chaos=None`` for the no-fault baseline: the identical
    ingest path runs with the injector absent, which the parity suite
    asserts is bit-identical to the pre-chaos fabric.
    """
    pages = np.asarray(pages, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    fabric = CxlFabric(
        topology=topology,
        config=config,
        parallel=parallel,
        chaos=chaos,
        telemetry=telemetry,
    )
    try:
        fabric.bind(
            strategy,
            admission_threshold,
            page_score_map=page_score_map,
        )
        chunk_counters: list[tuple[int, int]] = []
        for start in range(0, pages.shape[0], chunk_requests):
            sl = slice(start, start + chunk_requests)
            stats = fabric.ingest(
                pages[sl],
                is_write[sl],
                scores=scores[sl] if scores is not None else None,
                page_marginals=(
                    page_marginals[sl]
                    if page_marginals is not None
                    else None
                ),
            )
            chunk_counters.append((stats.accesses, stats.misses))
        result = fabric.results()
        report = _injector_report(fabric.injector)
        out = {
            "accesses": result.accesses,
            "miss_rate": result.totals.miss_rate,
            "total_time_ns": result.total_time_ns,
            "failover_accesses": sum(
                d.failover_stats.accesses
                for d in result.devices
                if d.failover_stats is not None
            ),
            "degraded_time_ns": sum(
                d.degraded_time_ns for d in result.devices
            ),
            "worker_retries": fabric._executor.retries_performed,
            "chunk_counters": chunk_counters,
            "events": [
                event.as_dict() for event in fabric.metrics.events()
            ],
            "device_recovery_chunks": (
                fabric.metrics.recovery_latencies(
                    "device-down", "device-restored"
                )
            ),
            **report,
        }
    finally:
        fabric.close()
    return out


def run_serving_scenario(
    chaos: ChaosConfig | None,
    engine,
    pages: np.ndarray,
    is_write: np.ndarray,
    *,
    config: IcgmmConfig | None = None,
    serving: ServingConfig | None = None,
    measure_from: int = 0,
    telemetry=None,
) -> dict:
    """Stream a workload through a (possibly faulty) serving loop.

    ``chaos=None`` is the no-fault baseline on the identical path.
    """
    from repro.serving.service import IcgmmCacheService

    pages = np.asarray(pages, dtype=np.int64)
    is_write = np.asarray(is_write, dtype=bool)
    service = IcgmmCacheService(
        engine,
        config=config,
        serving=serving,
        measure_from=measure_from,
        chaos=chaos,
        telemetry=telemetry,
    )
    try:
        reports = service.ingest(pages, is_write)
    finally:
        service.close()
    summary = service.summary()
    chaos_section = summary.get(
        "chaos",
        {
            "timeline": [],
            "timeline_digest": "",
            "events": [],
            "stall_retries": 0,
            "worker_retries": 0,
            "refresh_attempts": 0,
            "refresh_failures": 0,
            "recovery_latency_chunks": [],
        },
    )
    return {
        "accesses": service.totals.accesses,
        "miss_rate": service.totals.miss_rate,
        "generation": service.generation,
        "swaps": len(service.swaps),
        "chunk_counters": [
            (report.stats.accesses, report.stats.misses)
            for report in reports
        ],
        "timeline": chaos_section["timeline"],
        "timeline_digest": chaos_section["timeline_digest"],
        "events": chaos_section["events"],
        "stall_retries": chaos_section["stall_retries"],
        "worker_retries": chaos_section["worker_retries"],
        "refresh_attempts": chaos_section["refresh_attempts"],
        "refresh_failures": chaos_section["refresh_failures"],
        "breaker_recovery_chunks": chaos_section[
            "recovery_latency_chunks"
        ],
    }

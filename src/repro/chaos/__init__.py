"""Deterministic chaos harness: seeded fault plans + injection.

See ``docs/robustness.md`` for the fault model, the degradation
semantics of each victim layer, and the recovery metrics.
"""

from repro.chaos.injector import FaultInjector, InjectedFaultError
from repro.chaos.plan import (
    FAULT_KINDS,
    KIND_DEVICE_CORRELATED,
    KIND_DEVICE_FAIL,
    KIND_DEVICE_FAILSLOW,
    KIND_LINK_DEGRADE,
    KIND_REFRESH_CORRUPT,
    KIND_REFRESH_FAIL,
    KIND_SHARD_STALL,
    KIND_WORKER_CRASH,
    FaultEvent,
    FaultPlan,
)
from repro.chaos.scenarios import (
    FABRIC_SCENARIOS,
    PREPARED_SCENARIOS,
    SCENARIO_NAMES,
    SERVING_SCENARIOS,
    last_fault_end,
    recovery_chunk,
    run_fabric_scenario,
    run_prepared_scenario,
    run_serving_scenario,
    scenario_chaos,
    tail_latency_us,
    tail_miss_rate,
)

__all__ = [
    "FABRIC_SCENARIOS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFaultError",
    "KIND_DEVICE_CORRELATED",
    "KIND_DEVICE_FAIL",
    "KIND_DEVICE_FAILSLOW",
    "KIND_LINK_DEGRADE",
    "KIND_REFRESH_CORRUPT",
    "KIND_REFRESH_FAIL",
    "KIND_SHARD_STALL",
    "KIND_WORKER_CRASH",
    "PREPARED_SCENARIOS",
    "SCENARIO_NAMES",
    "SERVING_SCENARIOS",
    "last_fault_end",
    "recovery_chunk",
    "run_fabric_scenario",
    "run_prepared_scenario",
    "run_serving_scenario",
    "scenario_chaos",
    "tail_latency_us",
    "tail_miss_rate",
]

"""ICGMM reproduction: CXL memory expansion with GMM-based caching.

A full Python reproduction of "ICGMM: CXL-enabled Memory Expansion
with Intelligent Caching Using Gaussian Mixture Model" (DAC 2024),
including every substrate the paper depends on: synthetic workload
traces, a from-scratch EM-trained GMM, a set-associative DRAM cache
with a policy zoo, a from-scratch LSTM baseline, FPGA cost/latency
models, a discrete-event dataflow simulator and a CXL memory-expansion
system model.

Quickstart::

    from repro import IcgmmSystem

    system = IcgmmSystem()
    result = system.run_benchmark("dlrm")
    print(result.lru.miss_rate_percent,
          result.best_gmm.miss_rate_percent)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core import (
    GMM_STRATEGIES,
    STRATEGIES,
    BenchmarkResult,
    FabricTopology,
    GmmEngineConfig,
    GmmPolicyEngine,
    IcgmmConfig,
    IcgmmSystem,
    ServingConfig,
    StagedPipeline,
    StrategyOutcome,
    SuiteResult,
    run_suite,
)
from repro.serving import IcgmmCacheService

__version__ = "1.0.0"

__all__ = [
    "BenchmarkResult",
    "FabricTopology",
    "GMM_STRATEGIES",
    "GmmEngineConfig",
    "GmmPolicyEngine",
    "IcgmmCacheService",
    "IcgmmConfig",
    "IcgmmSystem",
    "STRATEGIES",
    "ServingConfig",
    "StagedPipeline",
    "StrategyOutcome",
    "SuiteResult",
    "run_suite",
    "__version__",
]

"""ICGMM core: the paper's contribution assembled end to end."""

from repro.core.config import (
    PLACEMENTS,
    STRATEGIES,
    ChaosConfig,
    FabricTopology,
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
)
from repro.core.engine import FeatureScaler, GmmPolicyEngine
from repro.core.experiment import run_suite
from repro.core.pipeline import (
    PreparedWorkload,
    StagedPipeline,
    StrategyPlan,
)
from repro.core.policy import build_policy, strategy_uses_scores
from repro.core.results import (
    GMM_STRATEGIES,
    BenchmarkResult,
    StrategyOutcome,
    SuiteResult,
)
from repro.core.system import IcgmmSystem

__all__ = [
    "BenchmarkResult",
    "ChaosConfig",
    "FabricTopology",
    "FeatureScaler",
    "GMM_STRATEGIES",
    "GmmEngineConfig",
    "GmmPolicyEngine",
    "IcgmmConfig",
    "IcgmmSystem",
    "PLACEMENTS",
    "ParallelConfig",
    "PreparedWorkload",
    "STRATEGIES",
    "ServingConfig",
    "StagedPipeline",
    "StrategyOutcome",
    "StrategyPlan",
    "SuiteResult",
    "build_policy",
    "run_suite",
    "strategy_uses_scores",
]

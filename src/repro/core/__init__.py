"""ICGMM core: the paper's contribution assembled end to end."""

from repro.core.config import (
    STRATEGIES,
    GmmEngineConfig,
    IcgmmConfig,
    ServingConfig,
)
from repro.core.engine import FeatureScaler, GmmPolicyEngine
from repro.core.experiment import run_suite
from repro.core.policy import build_policy, strategy_uses_scores
from repro.core.results import (
    GMM_STRATEGIES,
    BenchmarkResult,
    StrategyOutcome,
    SuiteResult,
)
from repro.core.system import IcgmmSystem, PreparedWorkload

__all__ = [
    "BenchmarkResult",
    "FeatureScaler",
    "GMM_STRATEGIES",
    "GmmEngineConfig",
    "GmmPolicyEngine",
    "IcgmmConfig",
    "IcgmmSystem",
    "PreparedWorkload",
    "STRATEGIES",
    "ServingConfig",
    "StrategyOutcome",
    "SuiteResult",
    "build_policy",
    "run_suite",
    "strategy_uses_scores",
]

"""Reusable multicore execution engine for independent replays.

The paper's pitch is hardware-rate caching: the FPGA scores and
serves the DRAM cache in a pipeline (Sec. 4), every stage busy at
once.  The software reproduction's analogue is that its three big
replay loops are *embarrassingly parallel* -- every CXL fabric device,
every serving shard, and every sweep grid point owns fully
independent state (cache planes, policy, resumable cursor) -- yet
until this module they all ran sequentially on one core.

:class:`ParallelExecutor` drives them concurrently under one
contract: **determinism**.  Tasks are dispatched in caller order,
results are merged in caller order (never completion order), no
randomness enters scheduling, and each task touches only its own
state -- so a parallel run is *bit-identical* to ``workers=1``, which
the parity suites in ``tests/cxl`` and ``tests/serving`` assert.

Two backends:

``thread`` (default)
    A plain thread pool.  The fast-path simulator spends its time in
    numpy whole-array operations, which release the GIL, so threads
    scale across cores with zero serialization cost and zero data
    movement (workers mutate the caller's arrays in place).

``process``
    An opt-in spawn-based process pool for workloads whose Python-side
    time (scalar tails, tiny chunks, reference-simulator runs) would
    serialize on the GIL.  Cache planes are allocated in POSIX shared
    memory (:class:`SharedCache`) so workers mutate the *same*
    ``(n_sets, ways)`` storage the parent reads -- no plane copies per
    round.  Policies travel by pickle and are handed back to the
    caller post-run, keeping resumable replay exact across rounds.

Use ``spawn`` (not ``fork``) so the pool is safe under threaded
parents and identical across platforms; the price is a one-time
interpreter+import cost per worker, amortised over a pool's lifetime.
"""

from __future__ import annotations

import os
import time
import weakref
from concurrent.futures import (
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from dataclasses import dataclass
from multiprocessing import get_context, shared_memory

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import (
    INVALID,
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.cache.stats import CacheStats
from repro.core.config import ParallelConfig


class WorkerCrashError(RuntimeError):
    """A task's retry budget was exhausted by (injected) crashes.

    Raised parent-side when the chaos fault hook reports more
    consecutive crashed attempts for a task than
    :attr:`ParallelExecutor.max_retries` allows.  The pool itself is
    shut down first (and re-created lazily on the next fan-out), so
    the executor stays usable after propagation.
    """


def resolve_workers(workers: int) -> int:
    """Effective worker count (``0`` means the host's CPU count)."""
    if workers < 0:
        raise ValueError("workers must be >= 0")
    if workers == 0:
        return os.cpu_count() or 1
    return workers


# ----------------------------------------------------------------------
# Shared-memory cache planes (process backend)
# ----------------------------------------------------------------------

#: The four per-way planes of :class:`SetAssociativeCache`, in the
#: order they are packed into a shared segment.  The single-byte
#: ``dirty`` plane goes last so the 8-byte planes stay aligned.
_PLANES = (
    ("tags", np.int64),
    ("meta", np.float64),
    ("stamp", np.float64),
    ("dirty", np.bool_),
)


def _plane_layout(
    geometry: CacheGeometry,
) -> tuple[dict[str, int], int]:
    """Byte offset per plane and the total segment size."""
    cells = geometry.n_sets * geometry.associativity
    offsets: dict[str, int] = {}
    total = 0
    for name, dtype in _PLANES:
        offsets[name] = total
        total += cells * np.dtype(dtype).itemsize
    return offsets, total


def _cache_over_buffer(
    geometry: CacheGeometry, buf
) -> SetAssociativeCache:
    """A :class:`SetAssociativeCache` whose planes view ``buf``.

    Bypasses ``__init__`` (which would allocate fresh planes) and
    points the four plane attributes at the buffer instead; every
    simulator and kernel operation works unchanged because they only
    ever index the arrays.
    """
    cache = SetAssociativeCache.__new__(SetAssociativeCache)
    cache.geometry = geometry
    shape = (geometry.n_sets, geometry.associativity)
    offsets, _ = _plane_layout(geometry)
    for name, dtype in _PLANES:
        setattr(
            cache,
            name,
            np.ndarray(shape, dtype=dtype, buffer=buf, offset=offsets[name]),
        )
    return cache


def _release_segment(shm: shared_memory.SharedMemory) -> None:
    """Close and unlink a segment, tolerating exported views.

    ``close`` raises :class:`BufferError` while numpy views of the
    buffer are still alive somewhere; the mapping then lives until
    those views are garbage-collected, but ``unlink`` still removes
    the name so nothing leaks into ``/dev/shm``.
    """
    try:
        shm.close()
    except BufferError:
        pass
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


class SharedCache:
    """Cache planes in one POSIX shared-memory segment.

    The owning process constructs it (planes initialised empty,
    exactly like a fresh :class:`SetAssociativeCache`) and passes
    :attr:`name` to workers, which attach zero-copy views over the
    same physical pages -- a worker's fills and metadata updates are
    immediately visible to the parent without any copy-back.

    The segment is unlinked by :meth:`close` (call it when the cache
    is retired, e.g. on a fabric reset) with a GC finalizer as the
    safety net.
    """

    def __init__(self, geometry: CacheGeometry) -> None:
        self.geometry = geometry
        _, size = _plane_layout(geometry)
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self.name = self._shm.name
        self.cache = _cache_over_buffer(geometry, self._shm.buf)
        self.cache.tags.fill(INVALID)
        self.cache.dirty.fill(False)
        self.cache.meta.fill(0.0)
        self.cache.stamp.fill(0.0)
        self._finalizer = weakref.finalize(
            self, _release_segment, self._shm
        )

    def close(self) -> None:
        """Drop the planes and unlink the segment."""
        self.cache = None  # release this side's buffer views
        self._finalizer()

    def __repr__(self) -> str:
        return (
            f"SharedCache(name={self.name!r},"
            f" sets={self.geometry.n_sets},"
            f" ways={self.geometry.associativity})"
        )


#: Worker-side attachment cache: segment name -> (shm, cache).  One
#: attach per segment per worker process, reused across every round
#: dispatched to that worker.
_ATTACHED: dict[str, tuple[shared_memory.SharedMemory, SetAssociativeCache]] = {}


def _evict_stale_attachments() -> None:
    """Drop cached attachments whose segment the parent has retired.

    A fabric/service ``reset()`` unlinks its old segments and
    allocates fresh names; without eviction a long-lived worker would
    keep the unlinked segments' pages mapped forever.  Probing by
    name (an attach that fails with ``FileNotFoundError`` once the
    parent unlinked) is portable across POSIX shm backends; the probe
    runs only when a *new* segment shows up, i.e. once per
    generation, not per task.
    """
    for name in list(_ATTACHED):
        try:
            probe = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            shm, _ = _ATTACHED.pop(name)
            try:
                shm.close()
            except BufferError:  # views die with the popped cache
                pass
        else:
            probe.close()


def _attached_cache(
    name: str, geometry: CacheGeometry
) -> SetAssociativeCache:
    """Attach (once per process) to a parent-owned shared segment."""
    entry = _ATTACHED.get(name)
    if entry is not None:
        return entry[1]
    _evict_stale_attachments()
    # Pool workers share the parent's resource-tracker process, so
    # this attach-side registration is idempotent (set semantics) and
    # the parent's eventual unlink clears it -- no premature cleanup,
    # no double-unlink.
    shm = shared_memory.SharedMemory(name=name)
    cache = _cache_over_buffer(geometry, shm.buf)
    _ATTACHED[name] = (shm, cache)
    return cache


# ----------------------------------------------------------------------
# Replay tasks
# ----------------------------------------------------------------------


@dataclass
class ReplayTask:
    """One resumable Simulate-stage call over an independent cache.

    This is the unit the fabric (per device) and the serving loop
    (per shard) dispatch: the exact argument set of
    :meth:`repro.core.pipeline.StagedPipeline.simulate`, plus the
    optional :attr:`shared` handle the process backend needs to reach
    the cache's planes from another process.
    """

    cache: SetAssociativeCache
    policy: ReplacementPolicy
    pages: np.ndarray
    is_write: np.ndarray
    scores: np.ndarray | None = None
    warmup_fraction: float = 0.0
    index_offset: int = 0
    record_outcome: bool = False
    shared: SharedCache | None = None


@dataclass(frozen=True)
class ReplayResult:
    """Outcome of one :class:`ReplayTask`.

    Attributes
    ----------
    stats:
        Counters of the replayed (sub-)stream.
    outcome:
        Per-access ``OUTCOME_*`` codes when the task asked for them,
        else ``None``.
    policy:
        The post-run policy object.  Under the thread backend this is
        the task's own instance; under the process backend it is the
        pickle round-trip that carries any scalar-side policy state
        (CLOCK hands, RNG cursors) back to the caller, which must
        adopt it for the next round to stay bit-exact.
    elapsed_s:
        Wall-clock seconds the task's simulate call took inside its
        worker.  Merged (in task order) into a caller-supplied
        :class:`~repro.core.pipeline.StageProfiler`, so profile
        *structure* stays deterministic across worker counts even
        though the seconds themselves are measurements.
    """

    stats: CacheStats
    outcome: np.ndarray | None
    policy: ReplacementPolicy
    elapsed_s: float = 0.0


def _run_replay(task: ReplayTask, simulator: str) -> ReplayResult:
    """Execute one task in-process (inline and thread backends)."""
    run = simulate_fast if simulator == "fast" else simulate
    outcome = (
        np.empty(task.pages.shape[0], dtype=np.uint8)
        if task.record_outcome
        else None
    )
    started = time.perf_counter()
    stats = run(
        task.cache,
        task.policy,
        task.pages,
        task.is_write,
        scores=task.scores,
        warmup_fraction=task.warmup_fraction,
        index_offset=task.index_offset,
        outcome=outcome,
    )
    return ReplayResult(
        stats=stats,
        outcome=outcome,
        policy=task.policy,
        elapsed_s=time.perf_counter() - started,
    )


def _run_replay_in_worker(
    name: str,
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None,
    warmup_fraction: float,
    index_offset: int,
    record_outcome: bool,
    simulator: str,
) -> tuple[CacheStats, np.ndarray | None, ReplacementPolicy, float]:
    """Process-backend task body: attach shared planes and replay."""
    cache = _attached_cache(name, geometry)
    result = _run_replay(
        ReplayTask(
            cache=cache,
            policy=policy,
            pages=pages,
            is_write=is_write,
            scores=scores,
            warmup_fraction=warmup_fraction,
            index_offset=index_offset,
            record_outcome=record_outcome,
        ),
        simulator,
    )
    return result.stats, result.outcome, result.policy, result.elapsed_s


def _call_star(fn, args: tuple):
    """Top-level ``fn(*args)`` trampoline (picklable for spawn)."""
    return fn(*args)


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------


class ParallelExecutor:
    """Deterministic fan-out over threads or spawn processes.

    Parameters
    ----------
    workers:
        Concurrent workers; ``0`` resolves to the CPU count, ``1``
        executes inline (no pool, no overhead).
    backend:
        ``"thread"`` or ``"process"`` (see module docstring).

    Pools are created lazily on first real fan-out and reused until
    :meth:`shutdown` (the executor is also a context manager), so a
    streaming caller pays pool start-up once, not per chunk.
    """

    def __init__(
        self,
        workers: int = 1,
        backend: str = "thread",
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
    ) -> None:
        if backend not in ("thread", "process"):
            raise ValueError(
                f"backend must be 'thread' or 'process', got {backend!r}"
            )
        self.workers = resolve_workers(workers)
        self.backend = backend
        self.max_retries = max_retries
        self.retry_backoff_s = retry_backoff_s
        #: Optional chaos hook ``(dispatch_round, task_index) -> int``
        #: returning the number of consecutive attempts that crash for
        #: that task.  Consulted parent-side *before* any submission,
        #: so an injected crash never mutates task state and a retried
        #: attempt is bit-identical to an uninterrupted one.
        self.fault_hook = None
        self._pool: ThreadPoolExecutor | ProcessPoolExecutor | None = None
        self._dispatch_round = 0
        self._retries_performed = 0
        self._tasks_dispatched = 0

    @classmethod
    def from_config(
        cls, config: ParallelConfig | None
    ) -> "ParallelExecutor":
        """Executor matching a :class:`ParallelConfig` (None = inline)."""
        if config is None:
            return cls()
        return cls(
            workers=config.workers,
            backend=config.backend,
            max_retries=config.max_retries,
            retry_backoff_s=config.retry_backoff_s,
        )

    @property
    def retries_performed(self) -> int:
        """Attempts recovered so far (injected crashes + real retries)."""
        return self._retries_performed

    @property
    def dispatch_rounds(self) -> int:
        """Fan-out calls issued so far (the executor's logical clock)."""
        return self._dispatch_round

    @property
    def tasks_dispatched(self) -> int:
        """Tasks/items submitted across all fan-out calls."""
        return self._tasks_dispatched

    # -- lifecycle ------------------------------------------------------
    @property
    def uses_shared_caches(self) -> bool:
        """Whether callers must allocate caches as :class:`SharedCache`."""
        return self.backend == "process" and self.workers > 1

    def make_cache(
        self, geometry: CacheGeometry
    ) -> tuple[SetAssociativeCache, SharedCache | None]:
        """A fresh cache reachable by this executor's workers.

        Returns ``(cache, shared_handle)``; the handle is ``None``
        for inline/thread execution (a plain in-process cache) and
        must be kept -- and eventually :meth:`SharedCache.close`\\ d --
        by the caller otherwise.
        """
        if not self.uses_shared_caches:
            return SetAssociativeCache(geometry), None
        handle = SharedCache(geometry)
        return handle.cache, handle

    def _ensure_pool(self):
        if self._pool is None:
            if self.backend == "thread":
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-parallel",
                )
            else:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=get_context("spawn"),
                )
        return self._pool

    def shutdown(self) -> None:
        """Tear the pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- retry plumbing -------------------------------------------------
    def _backoff(self, attempt: int) -> None:
        if self.retry_backoff_s > 0.0:
            time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))

    def _consume_injected_crashes(
        self, dispatch_round: int, n_tasks: int
    ) -> None:
        """Absorb chaos-injected crashes before submitting anything.

        Crashes are simulated parent-side and pre-execution: a task
        whose crashes fit inside the retry budget simply runs once,
        normally, afterwards -- bit-identical to a fault-free run.  A
        task whose crash count exceeds :attr:`max_retries` exhausts
        the budget and raises :class:`WorkerCrashError` (pool shut
        down first so it cannot wedge).
        """
        hook = self.fault_hook
        if hook is None:
            return
        for task_index in range(n_tasks):
            crashes = hook(dispatch_round, task_index)
            if crashes <= 0:
                continue
            if crashes > self.max_retries:
                self.shutdown()
                raise WorkerCrashError(
                    f"task {task_index} of dispatch round"
                    f" {dispatch_round} crashed {crashes} time(s);"
                    f" retry budget is {self.max_retries}"
                )
            for attempt in range(1, crashes + 1):
                self._retries_performed += 1
                self._backoff(attempt)

    # -- single-task background submission ------------------------------
    def submit(self, fn, *args) -> Future:
        """Run ``fn(*args)`` on the pool and return its :class:`Future`.

        The escape hatch for work that must *overlap* the caller's own
        loop rather than fan out and join -- the serving front-end's
        off-critical-path ``ModelRefresher.build`` is the canonical
        user.  Unlike :meth:`map`/:meth:`replay` there is no ordered
        gather, no retry plumbing, and no fault-hook consultation: the
        caller owns the future's lifecycle (harvest, exception
        handling, discard).  A pool is created even at ``workers=1``
        -- a submitted task is concurrent by request, never inline.
        The process backend requires ``fn`` and ``args`` picklable.
        """
        self._tasks_dispatched += 1
        return self._ensure_pool().submit(fn, *args)

    # -- generic ordered fan-out ---------------------------------------
    def map(self, fn, items, star: bool = False) -> list:
        """``[fn(item) for item in items]``, possibly concurrent.

        Results come back in *item order* regardless of completion
        order, and the first failing item's exception (again in item
        order) is re-raised -- both halves of the determinism
        contract.  With ``star=True`` each item is an argument tuple.
        The process backend requires ``fn`` (and items) to be
        picklable, i.e. a module-level function.

        Real exceptions are retried up to :attr:`max_retries` times
        (``map`` tasks are pure functions, so a wholesale re-run is
        safe) with exponential backoff; on final failure the pool is
        shut down before the error propagates, and the next fan-out
        re-pools lazily.
        """
        dispatch_round = self._dispatch_round
        self._dispatch_round += 1
        items = list(items)
        self._tasks_dispatched += len(items)
        self._consume_injected_crashes(dispatch_round, len(items))
        attempt = 0
        while True:
            try:
                return self._map_once(fn, items, star)
            except Exception:
                self.shutdown()
                if attempt >= self.max_retries:
                    raise
                attempt += 1
                self._retries_performed += 1
                self._backoff(attempt)

    def _map_once(self, fn, items: list, star: bool) -> list:
        if self.workers <= 1 or len(items) <= 1:
            return [fn(*item) if star else fn(item) for item in items]
        pool = self._ensure_pool()
        if star and self.backend == "process":
            futures = [
                pool.submit(_call_star, fn, item) for item in items
            ]
        elif star:
            futures = [pool.submit(fn, *item) for item in items]
        else:
            futures = [pool.submit(fn, item) for item in items]
        return _gather(futures)

    # -- simulate fan-out ----------------------------------------------
    def replay(
        self,
        tasks: list[ReplayTask],
        simulator: str = "fast",
        profiler=None,
    ) -> list[ReplayResult]:
        """Run independent Simulate-stage tasks; results in task order.

        The caller is responsible for task independence (no two tasks
        sharing a cache/policy) -- true by construction for fabric
        devices, serving shards and sweep points.  Under the process
        backend every task must carry a :attr:`ReplayTask.shared`
        handle, and the caller must adopt each returned
        :attr:`ReplayResult.policy`.

        ``profiler`` (a :class:`~repro.core.pipeline.StageProfiler`)
        receives each task's in-worker simulate time under the
        ``"simulate.task"`` section, merged in *task order* after the
        deterministic gather -- never completion order -- so the
        profile's section names and call counts are identical at
        workers=1 and workers=N.

        Unlike :meth:`map`, a *real* exception is never retried here:
        replay tasks mutate resumable cache/policy state, so a re-run
        after a partial mutation would not be bit-exact.  Injected
        (pre-execution) crashes still draw from the retry budget, and
        the pool is shut down before any error propagates so the
        executor stays usable.
        """
        dispatch_round = self._dispatch_round
        self._dispatch_round += 1
        self._tasks_dispatched += len(tasks)
        self._consume_injected_crashes(dispatch_round, len(tasks))
        try:
            results = self._replay_once(tasks, simulator)
        except Exception:
            self.shutdown()
            raise
        if profiler is not None:
            for result in results:
                profiler.add("simulate.task", result.elapsed_s)
        return results

    def _replay_once(
        self, tasks: list[ReplayTask], simulator: str
    ) -> list[ReplayResult]:
        if self.workers <= 1 or len(tasks) <= 1:
            return [_run_replay(task, simulator) for task in tasks]
        pool = self._ensure_pool()
        if self.backend == "thread":
            futures = [
                pool.submit(_run_replay, task, simulator)
                for task in tasks
            ]
            return _gather(futures)
        for task in tasks:
            if task.shared is None:
                raise ValueError(
                    "process-backend replay needs SharedCache-backed"
                    " tasks (allocate caches via"
                    " ParallelExecutor.make_cache)"
                )
        futures = [
            pool.submit(
                _run_replay_in_worker,
                task.shared.name,
                task.shared.geometry,
                task.policy,
                task.pages,
                task.is_write,
                task.scores,
                task.warmup_fraction,
                task.index_offset,
                task.record_outcome,
                simulator,
            )
            for task in tasks
        ]
        raw = _gather(futures)
        return [
            ReplayResult(
                stats=stats,
                outcome=outcome,
                policy=policy,
                elapsed_s=elapsed_s,
            )
            for stats, outcome, policy, elapsed_s in raw
        ]

    def __repr__(self) -> str:
        return (
            f"ParallelExecutor(workers={self.workers},"
            f" backend={self.backend!r})"
        )


def _gather(futures: list[Future]) -> list:
    """Results in submission order; first (by order) error re-raised."""
    results = []
    error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as exc:  # noqa: BLE001 - re-raised below
            if error is None:
                error = exc
            results.append(None)
    if error is not None:
        raise error
    return results


__all__ = [
    "ParallelExecutor",
    "ReplayResult",
    "ReplayTask",
    "SharedCache",
    "WorkerCrashError",
    "resolve_workers",
]

"""The LSTM policy engine: the paper's learned baseline, executable.

Sec. 5.3 compares the GMM engine against an LSTM trained "on the same
traces ... using the same inputs".  This module makes that comparison
runnable end to end: the LSTM consumes sliding windows of the
standardised (P, T) features and regresses the *future access
frequency* of the window's final page -- the same quantity the GMM
approximates with its density -- and the resulting scores drive the
identical score-based cache policy.

The paper reports the lightweight LSTM "is hard to converge ...
because it is unable to encode extensive temporal information in long
traces"; the bench built on this module
(``benchmarks/bench_ablation_lstm_policy.py``) reproduces that finding
quantitatively: far higher training cost for equal-or-worse policy
quality at this size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.engine import FeatureScaler
from repro.lstm.network import LstmNetwork
from repro.lstm.training import LstmTrainer, make_sequences


@dataclass(frozen=True)
class LstmEngineConfig:
    """Training/inference parameters of the LSTM baseline engine.

    The paper's FPGA baseline is 3 x 128 hidden with sequence length
    32; the executable default is smaller because numpy BPTT at the
    full size is impractically slow -- which is itself the Sec. 5.3
    story told in software.
    """

    hidden_size: int = 32
    n_layers: int = 2
    sequence_length: int = 16
    epochs: int = 3
    batch_size: int = 128
    learning_rate: float = 3e-3
    max_train_sequences: int = 8_000
    inference_batch: int = 4_096

    def __post_init__(self) -> None:
        if min(
            self.hidden_size,
            self.n_layers,
            self.sequence_length,
            self.epochs,
            self.batch_size,
            self.max_train_sequences,
            self.inference_batch,
        ) < 1:
            raise ValueError("all LSTM engine parameters must be >= 1")


def frequency_targets(page_indices: np.ndarray) -> np.ndarray:
    """Per-request regression target: log1p of the page's total count.

    The policy needs *relative* future access frequency; the log
    compresses the Zipf head so the MSE loss is not dominated by the
    few hottest pages.
    """
    page_indices = np.asarray(page_indices)
    _, inverse, counts = np.unique(
        page_indices, return_inverse=True, return_counts=True
    )
    return np.log1p(counts[inverse].astype(np.float64))


class LstmPolicyEngine:
    """Trained LSTM scorer with the same interface role as the GMM.

    Build with :meth:`train`; :meth:`score` then maps a feature stream
    to per-request scores (windows shorter than ``sequence_length`` at
    the stream head reuse the first full window's score).
    """

    def __init__(
        self,
        network: LstmNetwork,
        scaler: FeatureScaler,
        config: LstmEngineConfig,
        final_training_loss: float,
    ) -> None:
        self.network = network
        self.scaler = scaler
        self.config = config
        self.final_training_loss = final_training_loss

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        page_indices: np.ndarray,
        config: LstmEngineConfig,
        rng: np.random.Generator,
    ) -> "LstmPolicyEngine":
        """Fit the engine on a training slice of the processed trace."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != 2:
            raise ValueError("features must have shape (N, 2)")
        if features.shape[0] <= config.sequence_length:
            raise ValueError(
                "need more features than sequence_length"
            )
        scaler = FeatureScaler.fit(features)
        scaled = scaler.transform(features)
        targets = frequency_targets(page_indices)
        sequences, sequence_targets = make_sequences(
            scaled, targets, config.sequence_length
        )
        if sequences.shape[0] > config.max_train_sequences:
            index = rng.choice(
                sequences.shape[0],
                size=config.max_train_sequences,
                replace=False,
            )
            sequences = sequences[index]
            sequence_targets = sequence_targets[index]
        network = LstmNetwork(
            input_size=2,
            hidden_size=config.hidden_size,
            n_layers=config.n_layers,
            rng=rng,
        )
        trainer = LstmTrainer(
            network, learning_rate=config.learning_rate
        )
        history = trainer.fit(
            sequences,
            sequence_targets,
            epochs=config.epochs,
            batch_size=config.batch_size,
            rng=rng,
        )
        return cls(
            network=network,
            scaler=scaler,
            config=config,
            final_training_loss=history.final_loss,
        )

    def score(self, features: np.ndarray) -> np.ndarray:
        """Per-request scores over the full stream, shape ``(N,)``.

        Every request is scored from the window of the
        ``sequence_length`` features ending at it, in batched forward
        passes.  This is the cost Table 2 prices: one full LSTM
        inference per decision.
        """
        features = np.asarray(features, dtype=np.float64)
        scaled = self.scaler.transform(features)
        length = self.config.sequence_length
        n = scaled.shape[0]
        if n < length:
            raise ValueError("stream shorter than sequence_length")
        windows = (
            np.arange(n - length + 1)[:, None] + np.arange(length)
        )
        scores = np.empty(n - length + 1, dtype=np.float64)
        step = self.config.inference_batch
        for start in range(0, windows.shape[0], step):
            batch = scaled[windows[start : start + step]]
            scores[start : start + step] = self.network.predict(batch)
        # The first (length - 1) requests have no full window; reuse
        # the first full window's score for them.
        head = np.full(length - 1, scores[0])
        return np.concatenate([head, scores])

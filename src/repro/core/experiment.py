"""Suite-level experiment orchestration (Fig. 6 / Table 1 runs)."""

from __future__ import annotations

import numpy as np

from repro.core.config import STRATEGIES, IcgmmConfig
from repro.core.results import SuiteResult
from repro.core.system import IcgmmSystem
from repro.traces.workloads import WORKLOAD_NAMES


def run_suite(
    workloads: tuple[str, ...] = WORKLOAD_NAMES,
    config: IcgmmConfig | None = None,
    strategies: tuple[str, ...] = STRATEGIES,
    system: IcgmmSystem | None = None,
) -> SuiteResult:
    """Run the full evaluation matrix.

    One :class:`BenchmarkResult` per workload, each containing every
    requested strategy.  Each workload gets a child seed derived from
    the config seed, so runs are reproducible yet workloads are
    independent.

    This is the function behind both headline benches:
    ``SuiteResult.fig6_rows()`` regenerates Fig. 6 and
    ``SuiteResult.table1_rows()`` regenerates Table 1.
    """
    if system is None:
        system = IcgmmSystem(config)
    elif config is not None:
        raise ValueError("pass either config or system, not both")
    root = np.random.SeedSequence(system.config.seed)
    children = root.spawn(len(workloads))
    results = {}
    for workload, child in zip(workloads, children):
        rng = np.random.default_rng(child)
        results[workload] = system.run_benchmark(
            workload, strategies=strategies, rng=rng
        )
    return SuiteResult(results=results)

"""The shared staged execution core of every ICGMM entry point.

The paper's loop -- prepare a workload, score it under the GMM,
simulate the DRAM cache, price the result -- used to live in three
near-duplicate copies: the offline :class:`~repro.core.system.
IcgmmSystem`, the per-access CXL router, and the streaming
:class:`~repro.serving.IcgmmCacheService`.  This module is the single
implementation all of them (and the vectorized multi-device
:class:`~repro.cxl.fabric.CxlFabric`) now call into, as four explicit
stages over :class:`PreparedWorkload`:

* **Prepare** -- generate/accept a trace, preprocess it per Sec. 3.1,
  train the GMM engine on the leading slice, score the full stream
  (:meth:`StagedPipeline.prepare`).
* **Score** -- select the score view a Fig. 6 strategy consumes and
  build its policy (:meth:`StagedPipeline.plan_strategy`); streaming
  callers stamp raw page chunks into scoreable features with
  :meth:`StagedPipeline.chunk_features`.
* **Simulate** -- drive a cache/policy pair over a (sub-)stream,
  dispatching on :attr:`IcgmmConfig.simulator` between the vectorized
  fast engine and the scalar reference, with resumable
  ``index_offset`` replay and per-access ``OUTCOME_*`` recording
  (:meth:`StagedPipeline.simulate`).
* **Price** -- turn the counters into the Table 1 access-time view
  (:meth:`StagedPipeline.price`).

Because chunked, sharded and multi-device replays all route through
:meth:`simulate`, their results stay *bit-identical* to a single-shot
offline run -- the property the serving and fabric parity suites
assert.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache, simulate
from repro.cache.simulate_fast import simulate_fast
from repro.cache.stats import CacheStats
from repro.core.config import STRATEGIES, IcgmmConfig
from repro.core.engine import GmmPolicyEngine
from repro.core.parallel import ParallelExecutor
from repro.core.policy import build_policy, strategy_score_view
from repro.core.results import BenchmarkResult, StrategyOutcome
from repro.hardware.latency import LatencyModel
from repro.traces.preprocess import (
    TracePreprocessor,
    transform_timestamps_at,
)
from repro.traces.record import MemoryTrace
from repro.traces.workloads import get_workload


@dataclass(frozen=True)
class PreparedWorkload:
    """A workload ready for strategy simulations.

    Holds everything shared between the four Fig. 6 strategies so the
    trace is generated and the GMM trained exactly once per workload.

    Attributes
    ----------
    scores:
        Full 2-D request scores ``G(P, T)`` (drive admission).
    page_frequency_scores:
        Time-marginalised per-page scores aligned with the request
        stream (drive eviction ranking); see
        :meth:`repro.core.engine.GmmPolicyEngine.page_scores`.
    """

    name: str
    page_indices: np.ndarray
    is_write: np.ndarray
    scores: np.ndarray
    page_frequency_scores: np.ndarray
    engine: GmmPolicyEngine

    def __len__(self) -> int:
        return self.page_indices.shape[0]

    def page_score_map(self) -> dict[int, float]:
        """Mapping page index -> marginal score (for the combined
        policy's eviction metadata).

        Built with one vectorized ``np.unique`` + take; ``tolist()``
        converts to Python scalars in bulk so the dict materialises
        at C speed even on million-page traces (the per-element
        ``int()``/``float()`` loop it replaces dominated profile time
        in the serving replay).

        Memoized: the map is a pure function of the instance's
        immutable page/score columns, so repeated Score stages --
        one per strategy, plus every fabric bind and streamed replay
        -- reuse the first build instead of re-materialising the
        dict.  An engine swap always constructs a *new*
        ``PreparedWorkload`` (the dataclass is frozen), so the cache
        is invalidated by construction and can never go stale.
        Callers must treat the returned dict as read-only; the
        policies built from it copy what they mutate (device/shard
        maps are routed local-keyed copies).
        """
        cached = self.__dict__.get("_page_score_map")
        if cached is None:
            unique_pages, first_position = np.unique(
                self.page_indices, return_index=True
            )
            values = self.page_frequency_scores[first_position]
            cached = dict(
                zip(
                    unique_pages.tolist(),
                    values.tolist(),
                    strict=True,
                )
            )
            object.__setattr__(self, "_page_score_map", cached)
        return cached


class StageProfiler:
    """Wall-clock accumulator for the pipeline's explicit stages.

    Attach one to :attr:`StagedPipeline.profiler` (the ``--profile``
    flag of ``repro run`` / ``repro fabric`` does) and every stage
    entry point records its elapsed time under its stage name --
    Prepare / Score / Simulate / Price -- so a perf investigation
    starts from measured stage shares instead of guesses.  Nested
    stage sections of the same profiler accumulate independently;
    the profiler is not thread-safe *within* one stage name, which
    is fine because fan-out callers time the whole dispatch, not the
    per-worker bodies.
    """

    #: Canonical display order.
    STAGES = ("prepare", "score", "simulate", "price")

    def __init__(self) -> None:
        self.seconds: dict[str, float] = {}
        self.calls: dict[str, int] = {}

    @contextmanager
    def stage(self, name: str):
        """Time one section under ``name``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def add(
        self, name: str, seconds: float, calls: int = 1
    ) -> None:
        """Fold an externally-timed section into the accumulator.

        Used by :meth:`repro.core.parallel.ParallelExecutor.replay`
        to merge per-task worker timings in dispatch order, so the
        section *structure* (names and call counts) is identical at
        every worker count even though the seconds are wall-clock.
        """
        self.seconds[name] = self.seconds.get(name, 0.0) + float(
            seconds
        )
        self.calls[name] = self.calls.get(name, 0) + int(calls)

    def rows(self) -> list[tuple[str, int, float, float]]:
        """(stage, calls, seconds, share) rows in canonical order."""
        total = sum(self.seconds.values()) or 1.0
        ordered = [n for n in self.STAGES if n in self.seconds] + [
            n for n in sorted(self.seconds) if n not in self.STAGES
        ]
        return [
            (
                name,
                self.calls[name],
                self.seconds[name],
                self.seconds[name] / total,
            )
            for name in ordered
        ]


@dataclass(frozen=True)
class StrategyPlan:
    """Output of the Score stage for one strategy.

    Attributes
    ----------
    policy:
        The configured replacement/admission policy.
    scores:
        The per-access score stream the simulator feeds the policy
        (``None`` for LRU).
    page_score_map:
        The combined strategy's page -> marginal-score view (``None``
        for the others).  Carried on the plan so chunked replays --
        serving shards, fabric binds, resumable sweeps -- consume the
        score views the Score stage already materialised instead of
        re-deriving them per chunk.
    """

    strategy: str
    policy: ReplacementPolicy
    scores: np.ndarray | None
    page_score_map: dict[int, float] | None = None


class StagedPipeline:
    """Prepare -> Score -> Simulate -> Price, shared by all entry
    points (see module docstring).

    Parameters
    ----------
    config:
        System configuration (geometry, GMM, Algorithm 1 constants,
        simulator selection).
    latency_model:
        Table 1 pricing model used by the Price stage.
    """

    def __init__(
        self,
        config: IcgmmConfig | None = None,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.config = config if config is not None else IcgmmConfig()
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self._preprocessor = TracePreprocessor(
            head_fraction=self.config.head_fraction,
            tail_fraction=self.config.tail_fraction,
            len_window=self.config.len_window,
            len_access_shot=self.config.len_access_shot,
            timestamp_mode=self.config.timestamp_mode,
        )
        #: Optional :class:`StageProfiler`; when set, every stage
        #: entry point (and the fabric's fan-out sections) records
        #: its wall-clock here.
        self.profiler: StageProfiler | None = None
        #: Optional :class:`repro.obs.Telemetry`; when set, every
        #: stage section additionally opens a logical-clock span and
        #: counts into ``pipeline_stage_calls_total``.  ``None``
        #: (default) keeps the exact pre-telemetry code path.
        self.telemetry = None
        # Streaming-stamp scratch (see _chunk_timestamps): the base
        # arange is reused across equal-length chunks and the last
        # stamped timestamp vector is memoized by stream phase.
        self._ts_base: np.ndarray | None = None
        self._ts_key: tuple | None = None
        self._ts_val: np.ndarray | None = None

    def profile_stage(self, name: str):
        """Context manager timing one stage section (no-op when no
        profiler is attached)."""
        if self.profiler is None:
            return nullcontext()
        return self.profiler.stage(name)

    def stage_scope(self, name: str):
        """Profiling + telemetry wrapper of one stage section.

        Identical to :meth:`profile_stage` when no telemetry is
        attached (the byte-parity contract); with telemetry it also
        records a ``pipeline.<name>`` span on the logical clock and
        bumps the per-stage call counter.
        """
        if self.telemetry is None:
            return self.profile_stage(name)
        return self._traced_stage(name)

    @contextmanager
    def _traced_stage(self, name: str):
        telemetry = self.telemetry
        telemetry.registry.counter(
            "pipeline_stage_calls_total",
            help="Entries into each pipeline stage section.",
            labels=("stage",),
        ).labels(stage=name).inc()
        span = telemetry.tracer.begin("pipeline", name)
        try:
            with self.profile_stage(name):
                yield
        finally:
            telemetry.tracer.end(span)

    # ------------------------------------------------------------------
    # Stage 1: Prepare
    # ------------------------------------------------------------------
    def generate_trace(
        self, workload: str, rng: np.random.Generator
    ) -> MemoryTrace:
        """Generate the workload's synthetic trace at the config scale."""
        generator = get_workload(workload, scale=self.config.workload_scale)
        length = (
            self.config.trace_length
            if self.config.trace_length is not None
            else generator.default_length
        )
        return generator.generate(length, rng)

    def prepare(
        self,
        workload: str,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> PreparedWorkload:
        """Trace generation, preprocessing, training and scoring.

        With :attr:`IcgmmConfig.parallel` workers and multiple EM
        restarts configured, training fans the restarts out through a
        :class:`~repro.core.parallel.ParallelExecutor` whose pool is
        torn down before returning (identical models either way).
        """
        with self.stage_scope("prepare"):
            if rng is None:
                rng = np.random.default_rng(self.config.seed)
            if trace is None:
                trace = self.generate_trace(workload, rng)
            processed = self._preprocessor.process(trace)
            features = processed.features
            n_train = max(
                1, int(len(processed) * self.config.train_fraction)
            )
            executor = None
            if (
                self.config.parallel.workers != 1
                and self.config.gmm.n_init > 1
                and self.config.gmm.restart_mode == "sequential"
            ):
                # Batched mode is a single stacked pass -- only the
                # sequential mode has per-restart work to fan out.
                executor = ParallelExecutor.from_config(
                    self.config.parallel
                )
            try:
                engine = GmmPolicyEngine.train(
                    features[:n_train],
                    self.config.gmm,
                    rng,
                    executor=executor,
                )
            finally:
                if executor is not None:
                    executor.shutdown()
            scores = engine.score(features)
            page_frequency_scores = engine.page_scores(
                processed.page_indices
            )
            return PreparedWorkload(
                name=workload,
                page_indices=processed.page_indices,
                is_write=processed.trace.is_write.copy(),
                scores=scores,
                page_frequency_scores=page_frequency_scores,
                engine=engine,
            )

    # ------------------------------------------------------------------
    # Stage 2: Score
    # ------------------------------------------------------------------
    def strategy_scores(
        self, prepared: PreparedWorkload, strategy: str
    ) -> np.ndarray | None:
        """Score stream a strategy's simulation consumes.

        ``"request"``-view strategies get the 2-D request scores,
        ``"page"``-view ones the time-marginalised per-page scores,
        LRU none.
        """
        view = strategy_score_view(strategy)
        if view == "request":
            return prepared.scores
        if view == "page":
            return prepared.page_frequency_scores
        return None

    def plan_strategy(
        self, prepared: PreparedWorkload, strategy: str
    ) -> StrategyPlan:
        """Build a strategy's policy and score stream (Score stage)."""
        with self.stage_scope("score"):
            page_scores = (
                prepared.page_score_map()
                if strategy == "gmm-caching-eviction"
                else None
            )
            policy = build_policy(
                strategy,
                prepared.engine.admission_threshold,
                page_scores=page_scores,
            )
            return StrategyPlan(
                strategy=strategy,
                policy=policy,
                scores=self.strategy_scores(prepared, strategy),
                page_score_map=page_scores,
            )

    def chunk_features(
        self, pages: np.ndarray, start_index: int
    ) -> np.ndarray:
        """Stamp a raw page chunk into scoreable ``(N, 2)`` features.

        Streaming callers (the serving loop, fabric ingestion) cut
        the live stream into chunks; the Algorithm 1 timestamp of
        each access is a pure function of its *absolute* stream
        index, so chunked scoring matches a whole-stream pass bit
        for bit.
        """
        pages = np.asarray(pages)
        n = pages.shape[0]
        features = np.empty((n, 2), dtype=np.float64)
        features[:, 0] = pages
        features[:, 1] = self._chunk_timestamps(int(start_index), n)
        return features

    def _chunk_timestamps(self, start_index: int, n: int) -> np.ndarray:
        """Algorithm-1 timestamps of accesses ``[start, start + n)``.

        The timestamp is a *periodic* function of the absolute index
        (period ``len_window * len_access_shot`` covers both modes),
        so the stream position reduces to its phase, the base
        ``arange`` scratch is reused across the equal-length chunks a
        streaming loop stamps every step, and a chunk landing on an
        already-stamped ``(phase, length)`` reuses the previous
        vector outright -- bit-identical to stamping from the raw
        absolute indices.  Callers must not mutate the result.
        """
        config = self.config
        period = config.len_window * config.len_access_shot
        phase = start_index % period
        key = (
            phase,
            n,
            config.timestamp_mode,
            config.len_window,
            config.len_access_shot,
        )
        if key == self._ts_key:
            return self._ts_val
        if self._ts_base is None or self._ts_base.shape[0] < n:
            self._ts_base = np.arange(n, dtype=np.int64)
        timestamps = transform_timestamps_at(
            self._ts_base[:n] + phase,
            config.len_window,
            config.len_access_shot,
            config.timestamp_mode,
        ).astype(np.float64)
        self._ts_key = key
        self._ts_val = timestamps
        return timestamps

    # ------------------------------------------------------------------
    # Stage 3: Simulate
    # ------------------------------------------------------------------
    def simulate(
        self,
        cache: SetAssociativeCache,
        policy: ReplacementPolicy,
        pages: np.ndarray,
        is_write: np.ndarray,
        scores: np.ndarray | None = None,
        warmup_fraction: float = 0.0,
        index_offset: int = 0,
        outcome: np.ndarray | None = None,
    ) -> CacheStats:
        """Drive one cache/policy pair over a (sub-)stream.

        Dispatches on :attr:`IcgmmConfig.simulator` between the
        chunked vectorized engine and the scalar reference loop --
        both bit-identical.  ``index_offset`` makes the call
        resumable (chunked/sharded/multi-device replay) and
        ``outcome`` records per-access ``OUTCOME_*`` codes for exact
        downstream accounting.
        """
        run = (
            simulate_fast
            if self.config.simulator == "fast"
            else simulate
        )
        with self.stage_scope("simulate"):
            return run(
                cache,
                policy,
                pages,
                is_write,
                scores=scores,
                warmup_fraction=warmup_fraction,
                index_offset=index_offset,
                outcome=outcome,
            )

    # ------------------------------------------------------------------
    # Stage 4: Price
    # ------------------------------------------------------------------
    def price(self, strategy: str, stats: CacheStats) -> StrategyOutcome:
        """Table 1 pricing of one simulation's counters."""
        with self.stage_scope("price"):
            return StrategyOutcome(
                strategy=strategy,
                stats=stats,
                average_time_us=self.latency_model.average_access_time_us(
                    stats
                ),
            )

    # ------------------------------------------------------------------
    # Stage composition
    # ------------------------------------------------------------------
    def run_strategy(
        self, prepared: PreparedWorkload, strategy: str
    ) -> StrategyOutcome:
        """Score + Simulate + Price for one Fig. 6 strategy."""
        plan = self.plan_strategy(prepared, strategy)
        cache = SetAssociativeCache(self.config.geometry)
        stats = self.simulate(
            cache,
            plan.policy,
            prepared.page_indices,
            prepared.is_write,
            scores=plan.scores,
            warmup_fraction=self.config.warmup_fraction,
        )
        return self.price(strategy, stats)

    def run_benchmark(
        self,
        workload: str,
        strategies: tuple[str, ...] = STRATEGIES,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> BenchmarkResult:
        """Prepare a workload and run every requested strategy on it."""
        prepared = self.prepare(workload, trace=trace, rng=rng)
        outcomes = {
            strategy: self.run_strategy(prepared, strategy)
            for strategy in strategies
        }
        return BenchmarkResult(workload=workload, outcomes=outcomes)

"""Strategy selection: the four configurations of Fig. 6.

The paper evaluates LRU against three GMM deployments -- smart caching
only, smart eviction only, and both.  This module maps strategy names
to configured policy objects.

The two GMM mechanisms consume different score views (see
:meth:`repro.core.engine.GmmPolicyEngine.page_scores`):

* admission compares the full 2-D score of the *current request*
  against the threshold -- temporal context included;
* eviction ranks resident blocks by the time-marginalised per-page
  score, so blocks filled at different times stay comparable.

``gmm-caching-eviction`` therefore uses :class:`CombinedIcgmmPolicy`,
which admits on the request score stream while storing the marginal
page score as eviction metadata.
"""

from __future__ import annotations

from repro.cache.policies import (
    GmmCachePolicy,
    LruPolicy,
    ReplacementPolicy,
)
from repro.cache.policies.kernels import (
    CombinedScoreKernel,
    register_kernel,
)
from repro.core.config import STRATEGIES


class CombinedIcgmmPolicy(GmmCachePolicy):
    """Smart caching + smart eviction with split score views.

    Parameters
    ----------
    threshold:
        Admission cut-off over the 2-D request scores.
    page_scores:
        Mapping from page index to its time-marginalised score; stored
        as the block's eviction metadata at fill time.  Pages missing
        from the mapping fall back to the request score.
    """

    name = "gmm"

    def __init__(
        self, threshold: float, page_scores: dict[int, float]
    ) -> None:
        super().__init__(
            threshold=threshold, admission=True, eviction=True
        )
        self._page_scores = page_scores

    def fill_meta(self, page, score, access_index):
        """Store the page's marginal score for coherent eviction."""
        return self._page_scores.get(page, score)


# The combined policy overrides fill_meta (dict lookup), so the plain
# ScoreBasedPolicy kernel would no longer match it; its dedicated
# kernel vectorizes the lookup with a sorted-key binary search.
register_kernel(CombinedIcgmmPolicy)(CombinedScoreKernel)


def strategy_uses_scores(strategy: str) -> bool:
    """Whether a strategy needs GMM scores at simulation time."""
    _validate(strategy)
    return strategy != "lru"


def strategy_score_view(strategy: str) -> str | None:
    """Which score stream a strategy consumes from the simulator.

    Returns ``"request"`` (2-D scores; drives admission),
    ``"page"`` (time-marginalised scores; drives eviction metadata),
    or ``None`` for LRU.  The combined strategy consumes the request
    stream and gets its page view through
    :class:`CombinedIcgmmPolicy`.
    """
    _validate(strategy)
    if strategy == "lru":
        return None
    if strategy == "gmm-eviction":
        return "page"
    return "request"


def _validate(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )


def build_policy(
    strategy: str,
    admission_threshold: float = 0.0,
    page_scores: dict[int, float] | None = None,
) -> ReplacementPolicy:
    """Instantiate the policy for a Fig. 6 strategy.

    Parameters
    ----------
    strategy:
        One of ``lru``, ``gmm-caching``, ``gmm-eviction``,
        ``gmm-caching-eviction``.
    admission_threshold:
        Sec. 3.2 score cut-off; used by the two admission-enabled
        strategies.
    page_scores:
        Marginal per-page scores; required by
        ``gmm-caching-eviction``.
    """
    _validate(strategy)
    if strategy == "lru":
        return LruPolicy()
    if strategy == "gmm-caching":
        return GmmCachePolicy(
            threshold=admission_threshold,
            admission=True,
            eviction=False,
        )
    if strategy == "gmm-eviction":
        return GmmCachePolicy(
            threshold=admission_threshold,
            admission=False,
            eviction=True,
        )
    if page_scores is None:
        raise ValueError(
            "gmm-caching-eviction requires page_scores (the"
            " time-marginalised per-page view)"
        )
    return CombinedIcgmmPolicy(
        threshold=admission_threshold, page_scores=page_scores
    )

"""Strategy selection: the four configurations of Fig. 6.

The paper evaluates LRU against three GMM deployments -- smart caching
only, smart eviction only, and both.  This module maps strategy names
to configured policy objects.

The two GMM mechanisms consume different score views (see
:meth:`repro.core.engine.GmmPolicyEngine.page_scores`):

* admission compares the full 2-D score of the *current request*
  against the threshold -- temporal context included;
* eviction ranks resident blocks by the time-marginalised per-page
  score, so blocks filled at different times stay comparable.

``gmm-caching-eviction`` therefore uses :class:`CombinedIcgmmPolicy`,
which admits on the request score stream while storing the marginal
page score as eviction metadata.
"""

from __future__ import annotations

import numpy as np

from repro.cache.policies import (
    GmmCachePolicy,
    LruPolicy,
    ReplacementPolicy,
)
from repro.cache.policies.kernels import (
    CombinedScoreKernel,
    register_kernel,
)
from repro.core.config import STRATEGIES


class CombinedIcgmmPolicy(GmmCachePolicy):
    """Smart caching + smart eviction with split score views.

    Parameters
    ----------
    threshold:
        Admission cut-off over the 2-D request scores.
    page_scores:
        Mapping from page index to its time-marginalised score; stored
        as the block's eviction metadata at fill time.  Pages missing
        from the mapping fall back to the request score.
    """

    name = "gmm"

    def __init__(
        self, threshold: float, page_scores: dict[int, float]
    ) -> None:
        super().__init__(
            threshold=threshold, admission=True, eviction=True
        )
        self._page_scores = page_scores
        self._sorted_cache: tuple | None = None

    def fill_meta(self, page, score, access_index):
        """Store the page's marginal score for coherent eviction."""
        return self._page_scores.get(page, score)

    def sorted_page_scores(self) -> tuple:
        """Sorted ``(keys, values)`` arrays of the page-score map.

        The vector kernel binary-searches these; rebuilding them from
        the dict costs O(U log U), so the arrays are cached and only
        rebuilt when the dict *grew* -- the serving loop extends the
        mapping with newly-seen pages every chunk but never rewrites
        existing entries.  Callers that mutate values in place must
        reset ``_sorted_cache`` themselves.
        """
        mapping = self._page_scores
        if (
            self._sorted_cache is not None
            and self._sorted_cache[0] == len(mapping)
        ):
            return self._sorted_cache[1], self._sorted_cache[2]
        keys = np.fromiter(
            mapping.keys(), dtype=np.int64, count=len(mapping)
        )
        values = np.fromiter(
            mapping.values(), dtype=np.float64, count=len(mapping)
        )
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
        self._sorted_cache = (len(mapping), keys, values)
        return keys, values


# The combined policy overrides fill_meta (dict lookup), so the plain
# ScoreBasedPolicy kernel would no longer match it; its dedicated
# kernel vectorizes the lookup with a sorted-key binary search.
register_kernel(CombinedIcgmmPolicy)(CombinedScoreKernel)


def strategy_uses_scores(strategy: str) -> bool:
    """Whether a strategy needs GMM scores at simulation time."""
    _validate(strategy)
    return strategy != "lru"


def strategy_score_view(strategy: str) -> str | None:
    """Which score stream a strategy consumes from the simulator.

    Returns ``"request"`` (2-D scores; drives admission),
    ``"page"`` (time-marginalised scores; drives eviction metadata),
    or ``None`` for LRU.  The combined strategy consumes the request
    stream and gets its page view through
    :class:`CombinedIcgmmPolicy`.
    """
    _validate(strategy)
    if strategy == "lru":
        return None
    if strategy == "gmm-eviction":
        return "page"
    return "request"


def _validate(strategy: str) -> None:
    if strategy not in STRATEGIES:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {STRATEGIES}"
        )


def build_policy(
    strategy: str,
    admission_threshold: float = 0.0,
    page_scores: dict[int, float] | None = None,
) -> ReplacementPolicy:
    """Instantiate the policy for a Fig. 6 strategy.

    Parameters
    ----------
    strategy:
        One of ``lru``, ``gmm-caching``, ``gmm-eviction``,
        ``gmm-caching-eviction``.
    admission_threshold:
        Sec. 3.2 score cut-off; used by the two admission-enabled
        strategies.
    page_scores:
        Marginal per-page scores; required by
        ``gmm-caching-eviction``.
    """
    _validate(strategy)
    if strategy == "lru":
        return LruPolicy()
    if strategy == "gmm-caching":
        return GmmCachePolicy(
            threshold=admission_threshold,
            admission=True,
            eviction=False,
        )
    if strategy == "gmm-eviction":
        return GmmCachePolicy(
            threshold=admission_threshold,
            admission=False,
            eviction=True,
        )
    if page_scores is None:
        raise ValueError(
            "gmm-caching-eviction requires page_scores (the"
            " time-marginalised per-page view)"
        )
    return CombinedIcgmmPolicy(
        threshold=admission_threshold, page_scores=page_scores
    )

"""Configuration objects for the ICGMM system.

Defaults follow the paper's case study (Sec. 5.1) where practical.
One deliberate deviation: the prototype instantiates K = 256 Gaussians
because the FPGA pipeline is free to be that wide; in the Python
reproduction EM training cost grows linearly in K while the cache
results on the synthetic traces saturate far earlier, so the simulator
default is K = 64 (the ablation bench sweeps K and shows the plateau).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.setassoc import CacheGeometry
from repro.traces.preprocess import (
    DEFAULT_LEN_ACCESS_SHOT,
    DEFAULT_LEN_WINDOW,
)

#: The four cache-management strategies of Fig. 6.
STRATEGIES = (
    "lru",
    "gmm-caching",
    "gmm-eviction",
    "gmm-caching-eviction",
)

#: Valid values of :attr:`IcgmmConfig.simulator`.
SIMULATORS = ("fast", "reference")

#: Valid values of :attr:`ServingConfig.sharding`.
SHARDING_MODES = ("hash", "tenant")

#: Valid values of :attr:`FabricTopology.placement`.
PLACEMENTS = ("interleave", "range", "score")

#: Valid values of :attr:`ParallelConfig.backend`.
PARALLEL_BACKENDS = ("thread", "process")

#: Valid values of :attr:`GmmEngineConfig.seeding` /
#: :attr:`GmmEngineConfig.restart_mode`.  Literal copies of
#: :data:`repro.gmm.em.SEEDINGS` / :data:`repro.gmm.em.RESTART_MODES`
#: -- config stays import-leaf-light (no gmm dependency) and the gmm
#: layer stays core-free; ``tests/gmm/test_train_fast.py`` asserts
#: the pairs match so they cannot drift apart silently.
EM_SEEDINGS = ("fast", "reference")
EM_RESTART_MODES = ("batched", "sequential")

#: Valid values of :attr:`ServingConfig.refresh_mode`
#: (see :class:`repro.serving.refresh.ModelRefresher`).
REFRESH_MODES = ("warm", "stepwise")

#: Valid values of :attr:`ServingConfig.pipeline`
#: (see :class:`repro.serving.frontend.ServingFrontend`).
PIPELINE_MODES = ("off", "deterministic", "throughput")


@dataclass(frozen=True)
class ParallelConfig:
    """Multicore execution knobs
    (:class:`repro.core.parallel.ParallelExecutor`).

    The fabric's per-device replay, the serving loop's per-shard
    replay, and the sweep runner are all embarrassingly parallel:
    every device/shard/grid-point owns independent state, so their
    :meth:`~repro.core.pipeline.StagedPipeline.simulate` calls can run
    concurrently and merge deterministically (results are always
    combined in device/shard/point order, never completion order --
    parallel runs are *bit-identical* to ``workers=1``).

    Attributes
    ----------
    workers:
        Concurrent workers.  ``1`` (default) executes inline with
        zero overhead; ``0`` resolves to the host's CPU count.
    backend:
        ``"thread"`` (default) uses a thread pool -- the fast-path
        kernels spend their time inside numpy, which releases the
        GIL, so threads scale without any serialization cost.
        ``"process"`` uses a spawn-safe process pool with the cache's
        ``(n_sets, ways)`` planes allocated in shared memory
        (:class:`repro.core.parallel.SharedCache`), for workloads
        where Python-side time (scalar tails, tiny chunks) would
        serialize on the GIL.
    max_retries:
        Per-task retry budget before the first (in task order) error
        propagates.  Injected chaos faults
        (:class:`repro.chaos.FaultInjector` wired through
        :attr:`repro.core.parallel.ParallelExecutor.fault_hook`) and
        real exceptions in pure ``map`` tasks both draw from this
        budget; stateful replay tasks only retry *pre-execution*
        faults (a half-executed replay cannot be safely repeated).
    retry_backoff_s:
        Base of the exponential wait between retry attempts
        (``backoff * 2**attempt`` seconds).  ``0`` (default) retries
        immediately -- the deterministic-test configuration; wall
        clock never influences results either way.
    """

    workers: int = 1
    backend: str = "thread"
    max_retries: int = 0
    retry_backoff_s: float = 0.0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError("workers must be >= 0 (0 = CPU count)")
        if self.backend not in PARALLEL_BACKENDS:
            raise ValueError(
                f"backend must be one of {PARALLEL_BACKENDS}, got"
                f" {self.backend!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")


@dataclass(frozen=True)
class GmmEngineConfig:
    """Training/inference parameters of the GMM policy engine.

    Attributes
    ----------
    n_components:
        Gaussians ``K`` in the mixture (paper prototype: 256;
        simulator default: 64 -- see module docstring).
    max_iter / tol / reg_covar / n_init:
        EM parameters (Sec. 3.3 trains to MLE-change convergence).
    max_train_samples:
        EM training-set cap; the training slice of the trace is
        subsampled to this size (EM cost is O(N K) per iteration).
    threshold_quantile:
        Admission threshold selection: the score below which the
        lowest ``q`` fraction of *training* requests falls.  Pages
        scoring under it are predicted cold and bypass the cache.
        The default targets the one-touch traffic share (streaming
        scans, allocation frontiers) -- bypassing more than that
        starts refusing pages with real reuse and loses hits.
    use_quantized:
        Score through the fixed-point pipeline of
        :class:`repro.gmm.quantized.QuantizedGmm` instead of float64
        (hardware-faithful mode).
    seeding:
        EM initialisation implementation: ``"fast"`` (default, the
        vectorized greedy k-means++ of
        :func:`repro.gmm.kmeans.kmeans_fast`) or ``"reference"``
        (the sequential reference k-means).
    restart_mode:
        How ``n_init`` EM restarts execute: ``"batched"`` (default;
        all restarts stacked through one fused pass) or
        ``"sequential"``.  Identical models either way at equal
        seeds -- the knob exists for differential testing and
        benchmarking.
    """

    n_components: int = 64
    max_iter: int = 40
    tol: float = 1e-3
    reg_covar: float = 1e-6
    n_init: int = 1
    max_train_samples: int = 40_000
    threshold_quantile: float = 0.02
    use_quantized: bool = False
    seeding: str = "fast"
    restart_mode: str = "batched"

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")
        if not 0.0 <= self.threshold_quantile < 1.0:
            raise ValueError("threshold_quantile must be in [0, 1)")
        if self.max_train_samples < self.n_components:
            raise ValueError(
                "max_train_samples must be >= n_components"
            )
        if self.seeding not in EM_SEEDINGS:
            raise ValueError(
                f"seeding must be one of {EM_SEEDINGS}, got"
                f" {self.seeding!r}"
            )
        if self.restart_mode not in EM_RESTART_MODES:
            raise ValueError(
                f"restart_mode must be one of {EM_RESTART_MODES},"
                f" got {self.restart_mode!r}"
            )


@dataclass(frozen=True)
class ChaosConfig:
    """Deterministic fault-injection knobs
    (:class:`repro.chaos.FaultPlan` / :class:`repro.chaos.FaultInjector`).

    The chaos harness schedules faults on a *logical* clock -- chunk
    indices for the fabric and serving loops, build indices for model
    refreshes, dispatch rounds for the executor -- never wall-clock
    time, so one seed produces one byte-identical fault timeline
    regardless of worker count or host speed.  All ``*_rate`` knobs
    are per-target, per-logical-tick Bernoulli probabilities sampled
    once when the plan is generated.

    ``enabled=False`` (default) means no injector is constructed at
    all and every victim layer runs its exact pre-chaos code path
    (the parity suite in ``tests/chaos`` asserts bit-identical
    behaviour).

    Attributes
    ----------
    seed:
        Root seed of the fault timeline (independent of the system's
        trace/EM seed, so chaos can be re-rolled under a fixed
        workload).
    horizon_chunks:
        Logical-clock span the plan covers; queries beyond it report
        a healthy world.
    device_fail_rate / device_fail_chunks:
        Per-device outage start probability per chunk, and outage
        length in chunks (failover + reinstatement in
        :class:`repro.cxl.fabric.CxlFabric`).
    link_degrade_rate / link_degrade_chunks / link_degrade_factor:
        Per-device link-latency degradation windows; during a window
        the device's link round-trip is priced at ``factor`` times
        its healthy value.
    shard_stall_rate / shard_stall_attempts:
        Per-shard per-chunk stall probability and the number of
        consecutive attempts the stall swallows (the serving loop
        retries up to :attr:`ServingConfig.shard_retry_limit` times,
        then degrades the chunk to SSD-direct service).
    refresh_fail_rate / refresh_corrupt_rate:
        Per-build probabilities that a model refresh raises mid-build
        or silently produces a corrupted engine (non-finite
        parameters); a failed build must leave the serving generation
        untouched, a corrupted one must be rejected by validation.
    worker_crash_rate / worker_crash_attempts:
        Per-(dispatch round, task) crash probability and the number
        of consecutive attempts that crash
        (:attr:`ParallelConfig.max_retries` bounds the recovery).
    correlated_fail_rate / correlated_fail_chunks / correlated_fail_k:
        Fleet-level correlated-outage windows: one per-chunk Bernoulli
        stream (a shared ``SeedSequence`` child, not per-device) picks
        blast starts, and each blast takes ``correlated_fail_k``
        devices down together for ``correlated_fail_chunks`` chunks --
        the shared-rack / shared-switch failure mode the per-device
        channel cannot express.  ``correlated_fail_k`` is validated
        against the fleet size when the plan is generated.
    failslow_rate / failslow_chunks / failslow_max_factor:
        Per-device *fail-slow* ramps: instead of a binary outage, the
        whole device path is priced at a latency multiplier that
        grows linearly per chunk from healthy (1.0) up to
        ``failslow_max_factor`` at the end of the
        ``failslow_chunks``-long window.  The device keeps serving
        (cache bits are unaffected) -- only detection layers such as
        :class:`repro.serving.health.FleetHealthMonitor` can respond,
        because ``device_down`` never fires.
    failslow_reset_factor / failslow_reset_period:
        Watchdog resets of a fail-slow device: once a ramp's
        multiplier reaches ``failslow_reset_factor``, the sick
        controller starts tripping its watchdog and the plan emits a
        one-chunk outage blip every ``failslow_reset_period`` chunks
        for the rest of the window (the fleet-scale fail-slow
        signature: gradually degrading latency punctuated by
        transient unavailability).  Without a health monitor the
        fabric bounces traffic off and back onto the sick device at
        every blip; with one, quarantine re-homes it once.  ``0.0``
        (the default) disables resets -- pure pricing ramps.
    """

    enabled: bool = False
    seed: int = 0
    horizon_chunks: int = 256
    device_fail_rate: float = 0.0
    device_fail_chunks: int = 8
    link_degrade_rate: float = 0.0
    link_degrade_chunks: int = 8
    link_degrade_factor: float = 4.0
    shard_stall_rate: float = 0.0
    shard_stall_attempts: int = 1
    refresh_fail_rate: float = 0.0
    refresh_corrupt_rate: float = 0.0
    worker_crash_rate: float = 0.0
    worker_crash_attempts: int = 1
    correlated_fail_rate: float = 0.0
    correlated_fail_chunks: int = 6
    correlated_fail_k: int = 2
    failslow_rate: float = 0.0
    failslow_chunks: int = 16
    failslow_max_factor: float = 8.0
    failslow_reset_factor: float = 0.0
    failslow_reset_period: int = 2

    def __post_init__(self) -> None:
        if self.horizon_chunks < 1:
            raise ValueError("horizon_chunks must be >= 1")
        for name in (
            "device_fail_rate",
            "link_degrade_rate",
            "shard_stall_rate",
            "refresh_fail_rate",
            "refresh_corrupt_rate",
            "worker_crash_rate",
            "correlated_fail_rate",
            "failslow_rate",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(
                    f"{name} must be in [0, 1], got {value!r}"
                )
        for name in (
            "device_fail_chunks",
            "link_degrade_chunks",
            "shard_stall_attempts",
            "worker_crash_attempts",
            "correlated_fail_chunks",
            "failslow_chunks",
        ):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(
                    f"{name} must be >= 1, got {value!r}"
                )
        if self.link_degrade_factor < 1.0:
            raise ValueError("link_degrade_factor must be >= 1")
        if self.correlated_fail_k < 1:
            raise ValueError(
                "correlated_fail_k must be >= 1, got"
                f" {self.correlated_fail_k!r}"
            )
        if self.failslow_max_factor < 1.0:
            raise ValueError(
                "failslow_max_factor must be >= 1, got"
                f" {self.failslow_max_factor!r}"
            )
        if self.failslow_reset_factor != 0.0 and (
            self.failslow_reset_factor < 1.0
        ):
            raise ValueError(
                "failslow_reset_factor must be 0 (resets disabled)"
                f" or >= 1, got {self.failslow_reset_factor!r}"
            )
        if self.failslow_reset_period < 1:
            raise ValueError(
                "failslow_reset_period must be >= 1, got"
                f" {self.failslow_reset_period!r}"
            )

    @classmethod
    def demo(cls, seed: int = 0, **overrides) -> "ChaosConfig":
        """A moderately hostile profile for CLI/demo runs.

        Every fault channel is active at a rate that produces a
        handful of events over the default horizon -- enough to watch
        failover, retry, and refresh backoff actually fire without
        drowning the run.
        """
        defaults = dict(
            enabled=True,
            seed=seed,
            device_fail_rate=0.01,
            link_degrade_rate=0.01,
            shard_stall_rate=0.02,
            refresh_fail_rate=0.25,
            worker_crash_rate=0.005,
        )
        defaults.update(overrides)
        return cls(**defaults)


@dataclass(frozen=True)
class FleetHealthConfig:
    """Fleet health monitoring knobs
    (:class:`repro.serving.health.FleetHealthMonitor`).

    Mirrors :class:`ChaosConfig`'s enable contract: with
    ``enabled=False`` (default) no monitor is constructed at all and
    the fabric runs its exact pre-monitor code path (the parity suite
    in ``tests/chaos`` asserts byte-identical behaviour).

    The monitor watches per-device latency/miss EWMAs (maintained by
    :class:`repro.serving.metrics.RollingMetrics`) against the fleet
    median and walks each device through
    ``healthy -> suspect -> quarantined -> probation -> healthy``:
    a device whose EWMA breaches a *relative* threshold for
    ``breach_chunks`` consecutive chunks is quarantined (its traffic
    re-homed onto healthy devices, exactly like outage failover), held
    out for ``quarantine_chunks``, then probed live for
    ``probation_chunks`` clean chunks before reinstatement.  All
    decisions are pure functions of per-chunk counters and the chunk
    index, so they are bit-identical across worker counts.

    Attributes
    ----------
    latency_threshold:
        Relative breach bar: a device is suspect when its latency
        EWMA exceeds ``latency_threshold`` times the fleet median.
    miss_threshold / miss_floor:
        Relative miss-EWMA bar, plus an absolute floor so near-zero
        medians do not flag noise.
    breach_chunks:
        Consecutive breaching chunks before quarantine.
    quarantine_chunks:
        Chunks a quarantined device is held out of placement.
    probation_chunks:
        Consecutive clean probe chunks before reinstatement.
    ewma_alpha:
        Smoothing factor of the per-device EWMAs.
    min_chunk_accesses:
        Chunks serving fewer accesses than this are not judged
        (too little traffic to trust the latency estimate).
    min_active_devices:
        The monitor never quarantines below this many serving
        devices, whatever the breach counters say.
    """

    enabled: bool = False
    latency_threshold: float = 2.0
    miss_threshold: float = 2.0
    miss_floor: float = 0.05
    breach_chunks: int = 3
    quarantine_chunks: int = 4
    probation_chunks: int = 3
    ewma_alpha: float = 0.3
    min_chunk_accesses: int = 64
    min_active_devices: int = 1

    def __post_init__(self) -> None:
        for name in ("latency_threshold", "miss_threshold"):
            if getattr(self, name) < 1.0:
                raise ValueError(f"{name} must be >= 1")
        if self.miss_floor < 0.0:
            raise ValueError("miss_floor must be >= 0")
        for name in (
            "breach_chunks",
            "quarantine_chunks",
            "probation_chunks",
            "min_active_devices",
        ):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if self.min_chunk_accesses < 1:
            raise ValueError("min_chunk_accesses must be >= 1")


@dataclass(frozen=True)
class TelemetryConfig:
    """Telemetry knobs (:class:`repro.obs.Telemetry`).

    Mirrors :class:`ChaosConfig`'s enable contract: with
    ``enabled=False`` (default) no telemetry object is constructed at
    all and every instrumented layer runs its exact pre-telemetry
    code path (the parity suite in ``tests/obs`` asserts
    byte-identical outputs).  When enabled, all metric values and
    span timestamps derive from logical clocks -- chunk indices,
    dispatch rounds, build indices -- so the exported snapshot digest
    is a pure function of (seed, workload, config).

    Attributes
    ----------
    seed:
        Root seed of span-ID derivation (span IDs hash
        ``(seed, component, name, logical clock)``).
    max_spans:
        Span-count cap of the tracer; spans past it are counted as
        dropped (``tracer_dropped_spans_total``) rather than
        recorded, bounding memory on long runs.
    """

    enabled: bool = False
    seed: int = 0
    max_spans: int = 100_000

    def __post_init__(self) -> None:
        if self.max_spans < 1:
            raise ValueError("max_spans must be >= 1")


#: Scale factor of the default simulation profile: cache capacity and
#: workload footprints are both divided by 32 relative to the paper's
#: 64 MB case study, preserving every footprint-to-cache ratio while
#: letting cache turnover (and therefore eviction-policy differences)
#: develop within simulatable trace lengths.
SIMULATION_SCALE = 1.0 / 32.0


def _simulation_geometry() -> CacheGeometry:
    """The scaled-down default cache: 2 MB / 4 KB / 8-way."""
    return CacheGeometry(
        capacity_bytes=int(64 * 1024 * 1024 * SIMULATION_SCALE),
        block_bytes=4096,
        associativity=8,
    )


@dataclass(frozen=True)
class IcgmmConfig:
    """Full system configuration.

    The default profile is the *scaled simulation*: the paper's 64 MB
    cache and its workload footprints are both divided by
    :data:`SIMULATION_SCALE` (ratios preserved), which is what every
    experiment in EXPERIMENTS.md runs.  Use :meth:`paper_hardware`
    for the unscaled 64 MB geometry of the FPGA case study.

    Attributes
    ----------
    geometry:
        DRAM cache shape (default: scaled 2 MB / 4 KB / 8-way).
    workload_scale:
        Footprint scale applied to the workload generators.
    gmm:
        Policy engine parameters.
    len_window / len_access_shot:
        Algorithm 1 constants (paper: 32 and 10,000).
    timestamp_mode:
        ``"prose"`` (periodic, default) or ``"algorithm"`` (literal
        pseudocode); see :mod:`repro.traces.preprocess`.
    head_fraction / tail_fraction:
        Warm-up trim (paper: 20% / 10%).
    train_fraction:
        Leading fraction of the *processed* trace used to train the
        GMM (the paper trains offline on collected traces, then runs
        the policy on the live program).
    warmup_fraction:
        Leading fraction of the simulated trace excluded from cache
        counters (the cache is filling during it).
    simulator:
        ``"fast"`` (default) drives strategies through the chunked
        vectorized engine of :mod:`repro.cache.simulate_fast`;
        ``"reference"`` forces the scalar access-at-a-time loop.
        Both produce bit-identical results -- the flag exists for
        differential testing and for timing the reference path.
    parallel:
        Multicore execution knobs; consumed by the multi-device
        fabric and any entry point that fans independent simulations
        out through :class:`repro.core.parallel.ParallelExecutor`.
    seed:
        Root seed for trace generation and EM initialisation.
    """

    geometry: CacheGeometry = field(default_factory=_simulation_geometry)
    workload_scale: float = SIMULATION_SCALE
    gmm: GmmEngineConfig = field(default_factory=GmmEngineConfig)
    len_window: int = DEFAULT_LEN_WINDOW
    len_access_shot: int = DEFAULT_LEN_ACCESS_SHOT
    timestamp_mode: str = "prose"
    head_fraction: float = 0.2
    tail_fraction: float = 0.1
    train_fraction: float = 0.5
    warmup_fraction: float = 0.3
    simulator: str = "fast"
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    trace_length: int | None = None
    seed: int = 42

    def __post_init__(self) -> None:
        if self.workload_scale <= 0:
            raise ValueError("workload_scale must be positive")
        if not 0.0 < self.train_fraction <= 1.0:
            raise ValueError("train_fraction must be in (0, 1]")
        if not 0.0 <= self.warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if self.simulator not in SIMULATORS:
            raise ValueError(
                f"simulator must be one of {SIMULATORS}, got"
                f" {self.simulator!r}"
            )
        if self.trace_length is not None and self.trace_length < 10:
            raise ValueError("trace_length must be >= 10")

    @classmethod
    def paper_hardware(cls, **overrides) -> "IcgmmConfig":
        """The unscaled profile of the FPGA case study (Sec. 5.1).

        64 MB / 4 KB / 8-way cache with full-size workload footprints.
        Note that at this scale eviction-policy differences need far
        longer traces to develop (the cache turns over slowly); the
        scaled default exists precisely to avoid that cost.
        """
        overrides.setdefault("geometry", CacheGeometry())
        overrides.setdefault("workload_scale", 1.0)
        return cls(**overrides)


@dataclass(frozen=True)
class FabricTopology:
    """Layout of a multi-device CXL fabric
    (:class:`repro.cxl.fabric.CxlFabric`).

    The fabric partitions one page-level request stream across
    ``n_devices`` expansion devices, replays every device's
    sub-stream through the shared staged pipeline
    (:mod:`repro.core.pipeline`), and prices each device through its
    own CXL link model.

    Attributes
    ----------
    n_devices:
        Expansion devices behind the host.
    placement:
        How the trace is partitioned across devices:

        * ``"interleave"`` -- page-modulo striping: device
          ``page % n``, device-local page ``page // n`` (the
          collision-free division the hash-sharded serving planes
          use).  Balances load across devices.
        * ``"range"`` -- contiguous runs of ``range_stride_pages``
          pages assigned round-robin: device
          ``(page // stride) % n``.  Keeps spatial locality (and
          tenant partitions) on one device.
        * ``"score"`` -- score-aware: pages are bucketed by their
          time-marginalised GMM score into ``n_devices`` quantile
          buckets, and the hottest bucket lands on the device with
          the lowest link latency.
    range_stride_pages:
        Stride of the ``range`` placement.
    link_overhead_ns / link_bandwidth_gb_s:
        Optional per-device CXL link parameters (length must equal
        ``n_devices``); ``None`` gives every device the default
        :class:`repro.cxl.link.CxlLinkSpec`.  Heterogeneous values
        model near/far fabric topologies (switch hops, longer
        retimed paths), which is what the ``score`` placement
        exploits.
    parallel:
        Per-fabric override of the multicore replay knobs; ``None``
        (default) inherits :attr:`IcgmmConfig.parallel` from the
        system profile the fabric runs under.
    failover:
        Whether a failed device's traffic is re-placed onto healthy
        devices (score-aware when page marginals are available) and
        served in degraded mode instead of erroring out.  Only
        consulted when a :class:`repro.chaos.FaultInjector` is
        attached; with ``False`` a device failure raises.
    degraded_link_factor:
        Link-latency multiplier priced onto failover-served traffic
        (the re-route crosses an extra switch hop).
    """

    n_devices: int = 4
    placement: str = "interleave"
    range_stride_pages: int = 1 << 14
    link_overhead_ns: tuple[int, ...] | None = None
    link_bandwidth_gb_s: tuple[float, ...] | None = None
    parallel: ParallelConfig | None = None
    failover: bool = True
    degraded_link_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ValueError("n_devices must be >= 1")
        if self.degraded_link_factor < 1.0:
            raise ValueError("degraded_link_factor must be >= 1")
        if self.placement not in PLACEMENTS:
            raise ValueError(
                f"placement must be one of {PLACEMENTS}, got"
                f" {self.placement!r}"
            )
        if self.range_stride_pages < 1:
            raise ValueError("range_stride_pages must be >= 1")
        for name in ("link_overhead_ns", "link_bandwidth_gb_s"):
            value = getattr(self, name)
            if value is None:
                continue
            value = tuple(value)
            object.__setattr__(self, name, value)
            if len(value) != self.n_devices:
                raise ValueError(
                    f"{name} must have one entry per device"
                    f" ({self.n_devices}), got {len(value)}"
                )


@dataclass(frozen=True)
class ServingConfig:
    """Configuration of the online serving loop
    (:class:`repro.serving.IcgmmCacheService`).

    The service runs the paper's pipeline continuously: chunks of the
    live request stream are scored under the currently-loaded engine,
    simulated against sharded cache planes, watched for score-
    distribution drift, and periodically folded into an
    :class:`repro.gmm.OnlineGmm` whose refreshed parameters are
    atomically swapped in (the software analogue of the FPGA
    weight-buffer reload of Sec. 3.3).

    Attributes
    ----------
    chunk_requests:
        Requests ingested per service step (one scoring + simulation
        batch).
    n_shards:
        Cache planes the logical cache is split into.  In ``hash``
        mode the split is exact: it must divide the geometry's set
        count, and the sharded loop reproduces the unsharded cache's
        behaviour bit for bit.
    sharding:
        ``"hash"`` (page-interleaved set partition; exact) or
        ``"tenant"`` (one plane per tenant partition; isolation).
    partition_pages:
        Tenant address-partition stride (matches
        :func:`repro.traces.multi_tenant_trace`); used for tenant
        attribution in metrics and for ``tenant`` sharding.
    strategy:
        Fig. 6 strategy driving the cache planes.
    threshold_quantile:
        Quantile used when re-deriving the admission threshold after
        a model refresh, and the drift detector's expected
        below-threshold fraction.  ``None`` (default) inherits
        :attr:`GmmEngineConfig.threshold_quantile` from the system
        config, keeping the detector consistent with however the
        deployed engine's threshold was actually cut.
    drift_baseline_chunks:
        Chunks of scores accumulated as the reference distribution
        after every (re)load before drift monitoring starts.
    ks_threshold:
        Two-sample Kolmogorov-Smirnov statistic above which a chunk's
        score distribution counts as drifted.
    quantile_drift_tolerance:
        Allowed deviation of the observed below-threshold score
        fraction from ``threshold_quantile`` (the cheap secondary
        drift signal: a frozen engine under drift suddenly scores
        most traffic below its admission cut).
    drift_patience:
        Consecutive drifted chunks required before a refresh fires
        (debounces bursts).
    refresh_enabled:
        Master switch; with ``False`` the engine stays frozen (the
        paper's deployment) and the loop is exactly reproducible
        against a single-shot run.
    refresh_mode:
        Fold-in algorithm of the
        :class:`~repro.serving.refresh.ModelRefresher`: ``"warm"``
        (default; warm-started batch EM through the training fast
        path -- skips seeding, converges in a few fused passes) or
        ``"stepwise"`` (the original mini-batch stepwise-EM fold).
    refresh_max_iter:
        EM iteration budget of the ``"warm"`` fold-in.
    refresh_buffer_chunks:
        Recent chunks of features kept for the refresh fold-in.
    refresh_batch_size:
        Mini-batch size of the stepwise-EM updates.
    refresh_step_exponent:
        :class:`~repro.gmm.OnlineGmm` learning-rate exponent.
    refresh_cooldown_chunks:
        Minimum chunks between consecutive engine swaps.
    metrics_window_chunks:
        Rolling-window length of the per-shard / per-tenant metrics.
    parallel:
        Multicore knobs of the per-shard chunk replay (each shard's
        resumable simulate call is independent, so the service
        dispatches them concurrently and merges in shard order --
        bit-identical to ``workers=1``).
    shard_retry_limit:
        Bounded retry of a stalled shard replay within one chunk
        (total attempts = 1 + limit).  A stall that outlasts the
        budget degrades the chunk: that shard's accesses are served
        SSD-direct (counted as bypassed misses), the cache plane and
        its resumable cursor stay untouched, and the degradation is
        recorded in the rolling metrics.
    refresh_backoff_chunks:
        Base of the exponential refresh backoff: after ``f``
        consecutive failed/rejected refresh builds the next build is
        deferred ``base * 2**(f-1)`` chunks (the engine keeps serving
        on the current generation throughout).
    refresh_breaker_threshold:
        Consecutive refresh failures that trip the circuit breaker.
    quarantine_chunks:
        Chunks the tripped breaker quarantines the drift detector
        for: no observations, no refresh attempts.  On expiry the
        detector is rebased (fresh baseline under the still-serving
        engine) and the failure count resets.
    pipeline:
        Serving front-end mode
        (:class:`repro.serving.frontend.ServingFrontend`).  ``"off"``
        (default) is the plain synchronous chunk loop -- the service
        behaves exactly as before the front-end existed.
        ``"deterministic"`` runs the producer/consumer pipeline on a
        fixed logical-clock interleave (byte-identical to the sync
        loop, chunk for chunk); ``"throughput"`` overlaps ingest with
        compute through a real producer thread and moves refresh
        builds off the critical path (:attr:`refresh_async`).
    ingest_queue_chunks:
        Capacity (in chunks) of the front-end's bounded ingest queue.
        A full queue blocks the producer -- explicit backpressure --
        and every blocked put is accounted.
    refresh_async:
        Run :class:`~repro.serving.refresh.ModelRefresher` builds in
        a background executor worker instead of inline: the service
        keeps serving chunks on the old engine while the refresh
        builds, and the finished engine is committed through the
        same compare-and-swap :meth:`~repro.serving.refresh.EngineSlot.swap`
        (discarded on :class:`~repro.serving.refresh.StaleSwapError`).
        Which chunk harvests the finished build depends on wall-clock
        build time, so this knob is rejected in ``"deterministic"``
        pipeline mode and implied by ``"throughput"`` deployments.
    """

    chunk_requests: int = 8192
    n_shards: int = 4
    sharding: str = "hash"
    partition_pages: int = 1 << 20
    strategy: str = "gmm-caching-eviction"
    threshold_quantile: float | None = None
    drift_baseline_chunks: int = 2
    ks_threshold: float = 0.25
    quantile_drift_tolerance: float = 0.25
    drift_patience: int = 2
    refresh_enabled: bool = True
    refresh_mode: str = "warm"
    refresh_max_iter: int = 8
    refresh_buffer_chunks: int = 6
    refresh_batch_size: int = 2048
    refresh_step_exponent: float = 0.6
    refresh_cooldown_chunks: int = 4
    metrics_window_chunks: int = 8
    parallel: ParallelConfig = field(default_factory=ParallelConfig)
    shard_retry_limit: int = 2
    refresh_backoff_chunks: int = 2
    refresh_breaker_threshold: int = 3
    quarantine_chunks: int = 16
    pipeline: str = "off"
    ingest_queue_chunks: int = 8
    refresh_async: bool = False

    def __post_init__(self) -> None:
        if self.chunk_requests < 1:
            raise ValueError("chunk_requests must be >= 1")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.sharding not in SHARDING_MODES:
            raise ValueError(
                f"sharding must be one of {SHARDING_MODES}, got"
                f" {self.sharding!r}"
            )
        if self.partition_pages < 1:
            raise ValueError("partition_pages must be >= 1")
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"strategy must be one of {STRATEGIES}, got"
                f" {self.strategy!r}"
            )
        if self.threshold_quantile is not None and not (
            0.0 <= self.threshold_quantile < 1.0
        ):
            raise ValueError(
                "threshold_quantile must be None or in [0, 1)"
            )
        if self.drift_baseline_chunks < 1:
            raise ValueError("drift_baseline_chunks must be >= 1")
        if not 0.0 < self.ks_threshold <= 1.0:
            raise ValueError("ks_threshold must be in (0, 1]")
        if self.quantile_drift_tolerance <= 0.0:
            raise ValueError("quantile_drift_tolerance must be > 0")
        if self.drift_patience < 1:
            raise ValueError("drift_patience must be >= 1")
        if self.refresh_mode not in REFRESH_MODES:
            raise ValueError(
                f"refresh_mode must be one of {REFRESH_MODES}, got"
                f" {self.refresh_mode!r}"
            )
        if self.refresh_max_iter < 1:
            raise ValueError("refresh_max_iter must be >= 1")
        if self.refresh_buffer_chunks < 1:
            raise ValueError("refresh_buffer_chunks must be >= 1")
        if self.refresh_batch_size < 1:
            raise ValueError("refresh_batch_size must be >= 1")
        if not 0.5 < self.refresh_step_exponent <= 1.0:
            raise ValueError(
                "refresh_step_exponent must be in (0.5, 1]"
            )
        if self.refresh_cooldown_chunks < 0:
            raise ValueError("refresh_cooldown_chunks must be >= 0")
        if self.metrics_window_chunks < 1:
            raise ValueError("metrics_window_chunks must be >= 1")
        if self.shard_retry_limit < 0:
            raise ValueError("shard_retry_limit must be >= 0")
        if self.refresh_backoff_chunks < 1:
            raise ValueError("refresh_backoff_chunks must be >= 1")
        if self.refresh_breaker_threshold < 1:
            raise ValueError("refresh_breaker_threshold must be >= 1")
        if self.quarantine_chunks < 1:
            raise ValueError("quarantine_chunks must be >= 1")
        if self.pipeline not in PIPELINE_MODES:
            raise ValueError(
                f"pipeline must be one of {PIPELINE_MODES}, got"
                f" {self.pipeline!r}"
            )
        if self.ingest_queue_chunks < 1:
            raise ValueError("ingest_queue_chunks must be >= 1")
        if self.refresh_async and self.pipeline == "deterministic":
            raise ValueError(
                "refresh_async breaks the deterministic pipeline's"
                " byte-parity contract (harvest timing is wall-clock);"
                " use pipeline='throughput'"
            )

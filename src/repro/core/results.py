"""Result containers for the evaluation experiments."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache.stats import CacheStats
from repro.hardware.latency import reduction_percent

#: GMM strategy names in Fig. 6 presentation order.
GMM_STRATEGIES = (
    "gmm-caching",
    "gmm-eviction",
    "gmm-caching-eviction",
)


@dataclass(frozen=True)
class StrategyOutcome:
    """One (workload, strategy) simulation outcome.

    Attributes
    ----------
    strategy:
        Strategy name (``lru`` or one of :data:`GMM_STRATEGIES`).
    stats:
        Cache counters over the measured region.
    average_time_us:
        Average SSD access time under the Table 1 latency model.
    """

    strategy: str
    stats: CacheStats
    average_time_us: float

    @property
    def miss_rate_percent(self) -> float:
        """Miss rate in percent (the Fig. 6 axis)."""
        return 100.0 * self.stats.miss_rate


@dataclass(frozen=True)
class BenchmarkResult:
    """All strategy outcomes for one workload.

    The paper's headline comparisons derive from here: Fig. 6 picks
    the GMM strategy with the lowest miss rate per workload; Table 1
    compares its access time against LRU's.
    """

    workload: str
    outcomes: dict[str, StrategyOutcome] = field(repr=False)

    def __post_init__(self) -> None:
        if "lru" not in self.outcomes:
            raise ValueError("outcomes must include the LRU baseline")

    @property
    def lru(self) -> StrategyOutcome:
        """The LRU baseline outcome."""
        return self.outcomes["lru"]

    @property
    def best_gmm(self) -> StrategyOutcome:
        """The GMM strategy with the lowest miss rate (Fig. 6's pick)."""
        candidates = [
            self.outcomes[name]
            for name in GMM_STRATEGIES
            if name in self.outcomes
        ]
        if not candidates:
            raise ValueError("no GMM strategy outcomes present")
        return min(candidates, key=lambda o: o.stats.miss_rate)

    @property
    def miss_reduction_points(self) -> float:
        """Absolute miss-rate reduction in percentage points (Fig. 6)."""
        return (
            self.lru.miss_rate_percent - self.best_gmm.miss_rate_percent
        )

    @property
    def time_reduction_percent(self) -> float:
        """Relative access-time reduction in percent (Table 1)."""
        return reduction_percent(
            self.lru.average_time_us, self.best_gmm.average_time_us
        )


@dataclass(frozen=True)
class SuiteResult:
    """Benchmark results across workloads (the full evaluation)."""

    results: dict[str, BenchmarkResult]

    def __getitem__(self, workload: str) -> BenchmarkResult:
        return self.results[workload]

    def __iter__(self):
        return iter(self.results.values())

    def fig6_rows(self) -> list[dict]:
        """Fig. 6 data: per-workload miss rates of all strategies."""
        rows = []
        for result in self.results.values():
            row = {"workload": result.workload}
            for name, outcome in result.outcomes.items():
                row[name] = outcome.miss_rate_percent
            row["best_gmm"] = result.best_gmm.strategy
            row["reduction_points"] = result.miss_reduction_points
            rows.append(row)
        return rows

    def table1_rows(self) -> list[dict]:
        """Table 1 data: average access time, LRU vs best GMM."""
        rows = []
        for result in self.results.values():
            rows.append(
                {
                    "workload": result.workload,
                    "lru_us": result.lru.average_time_us,
                    "gmm_us": result.best_gmm.average_time_us,
                    "reduction_percent": result.time_reduction_percent,
                }
            )
        return rows

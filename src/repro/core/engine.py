"""The GMM policy engine: training pipeline and batch scoring.

Ties the GMM substrate to the cache policy: standardise the (page
index, transformed timestamp) features, fit the mixture with EM on the
training slice, pick the admission threshold from the training-score
distribution, then score arbitrary request streams (Sec. 3 end to
end).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import GmmEngineConfig
from repro.gmm.em import EMTrainer, FitResult
from repro.gmm.model import GaussianMixture
from repro.gmm.quantized import QuantizedGmm

#: Row budget for one batched :meth:`GmmPolicyEngine.page_scores`
#: scoring call (~16 MB of features at float64); bounds peak memory
#: on traces with millions of distinct pages.
_GRID_BUFFER_ROWS = 1 << 20


@dataclass(frozen=True)
class FeatureScaler:
    """Per-column standardisation fitted on training features.

    The raw features span wildly different ranges (page indices in the
    tens of thousands, timestamps in the thousands); EM on raw values
    conditions poorly, so both the trainer and the scorer work in
    standardised space.  This is the software analogue of the paper's
    "transformed physical address" input (Sec. 2.3).
    """

    mean: np.ndarray
    std: np.ndarray

    @staticmethod
    def fit(features: np.ndarray) -> "FeatureScaler":
        """Fit mean/std per column (std floored to avoid division by 0)."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must have shape (N, D)")
        mean = features.mean(axis=0)
        std = features.std(axis=0)
        std = np.where(std < 1e-12, 1.0, std)
        return FeatureScaler(mean=mean, std=std)

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise ``features`` into model space."""
        features = np.asarray(features, dtype=np.float64)
        return (features - self.mean) / self.std


class GmmPolicyEngine:
    """Trained scoring engine feeding the cache policy.

    Build with :meth:`train`; afterwards :meth:`score` maps request
    features to the mixture density ``G(x)`` (Eq. 3) and
    ``admission_threshold`` holds the Sec. 3.2 cut-off.
    """

    def __init__(
        self,
        model: GaussianMixture,
        scaler: FeatureScaler,
        admission_threshold: float,
        fit_result: FitResult | None = None,
        quantized: QuantizedGmm | None = None,
    ) -> None:
        self.model = model
        self.scaler = scaler
        self.admission_threshold = admission_threshold
        self.fit_result = fit_result
        self.quantized = quantized

    @classmethod
    def train(
        cls,
        features: np.ndarray,
        config: GmmEngineConfig,
        rng: np.random.Generator,
        executor=None,
    ) -> "GmmPolicyEngine":
        """Fit the engine on training features of shape ``(N, 2)``.

        Subsamples to ``config.max_train_samples``, standardises, runs
        EM, and derives the admission threshold as the
        ``threshold_quantile`` of the training scores.  An optional
        :class:`~repro.core.parallel.ParallelExecutor` fans the
        ``n_init`` EM restarts out across workers (identical models
        either way).
        """
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2:
            raise ValueError("features must have shape (N, D)")
        if features.shape[0] < config.n_components:
            raise ValueError(
                "not enough training features:"
                f" {features.shape[0]} < K={config.n_components}"
            )
        if features.shape[0] > config.max_train_samples:
            index = rng.choice(
                features.shape[0],
                size=config.max_train_samples,
                replace=False,
            )
            index.sort()  # keep temporal order for reproducibility
            sample = features[index]
        else:
            sample = features
        scaler = FeatureScaler.fit(sample)
        scaled = scaler.transform(sample)
        trainer = EMTrainer(
            n_components=config.n_components,
            max_iter=config.max_iter,
            tol=config.tol,
            reg_covar=config.reg_covar,
            n_init=config.n_init,
            seeding=config.seeding,
            restart_mode=config.restart_mode,
        )
        fit_result = trainer.fit(scaled, rng, executor=executor)
        model = fit_result.model
        quantized = QuantizedGmm(model) if config.use_quantized else None
        if quantized is not None:
            train_scores = quantized.score_samples(scaled)
        else:
            train_scores = model.score_samples(scaled)
        threshold = float(
            np.quantile(train_scores, config.threshold_quantile)
        )
        return cls(
            model=model,
            scaler=scaler,
            admission_threshold=threshold,
            fit_result=fit_result,
            quantized=quantized,
        )

    def score(self, features: np.ndarray) -> np.ndarray:
        """Mixture density per request, shape ``(N,)``.

        The whole stream is scored in one vectorised pass: the score is
        a pure function of (page, timestamp), exactly like the hardware
        pipeline that evaluates each request independently.
        """
        scaled = self.scaler.transform(features)
        if self.quantized is not None:
            return self.quantized.score_samples(scaled)
        return self.model.score_samples(scaled)

    def page_scores(
        self, page_indices: np.ndarray, n_time_samples: int = 32
    ) -> np.ndarray:
        """Time-marginalised density per request page, shape ``(N,)``.

        The 2-D score ``G(P, T)`` depends on *when* it is evaluated;
        two cache blocks filled in different timestamp bands therefore
        carry incommensurable scores, which corrupts lowest-score
        eviction.  For eviction the engine uses the temporal marginal

            S(P) = mean over T of G(P, T)

        -- a time-invariant estimate of the page's long-run access
        frequency (the quantity Sec. 3.2's smart eviction actually
        ranks by).  Admission keeps the full 2-D score, where the
        temporal dimension carries real signal (it is what recognises
        maintenance-burst traffic as it happens).

        The marginal is evaluated on an ``n_time_samples``-point grid
        spanning the training timestamp range, once per distinct
        page: the ``(unique_pages x n_time_samples)`` grid is scored
        in batched calls covering as many whole grid points per call
        as fit a bounded feature buffer (one call in the common case)
        instead of the former one-pass-per-grid-point Python loop.
        """
        page_indices = np.asarray(page_indices)
        unique_pages, inverse = np.unique(
            page_indices, return_inverse=True
        )
        n_pages = unique_pages.shape[0]
        if n_pages == 0:
            return np.zeros(0, dtype=np.float64)
        pages_f = unique_pages.astype(np.float64)
        # Timestamp grid in raw feature units, then standardised.
        t_lo = self.scaler.mean[1] - 2.0 * self.scaler.std[1]
        t_hi = self.scaler.mean[1] + 2.0 * self.scaler.std[1]
        t_grid = np.linspace(t_lo, t_hi, n_time_samples)
        per_page = np.zeros(n_pages, dtype=np.float64)
        page_block = min(n_pages, _GRID_BUFFER_ROWS)
        for p_lo in range(0, n_pages, page_block):
            block_pages = pages_f[p_lo : p_lo + page_block]
            n_block = block_pages.shape[0]
            t_per_call = max(1, _GRID_BUFFER_ROWS // n_block)
            for t_lo_i in range(0, n_time_samples, t_per_call):
                t_block = t_grid[t_lo_i : t_lo_i + t_per_call]
                features = np.empty((n_block * t_block.shape[0], 2))
                features[:, 0] = np.tile(block_pages, t_block.shape[0])
                features[:, 1] = np.repeat(t_block, n_block)
                per_page[p_lo : p_lo + page_block] += (
                    self.score(features)
                    .reshape(t_block.shape[0], n_block)
                    .sum(axis=0)
                )
        per_page /= n_time_samples
        return per_page[inverse]

    def converged(self) -> bool:
        """Whether EM hit its MLE-change criterion (Sec. 3.3)."""
        return self.fit_result is not None and self.fit_result.converged

    def __repr__(self) -> str:
        return (
            f"GmmPolicyEngine(K={self.model.n_components},"
            f" threshold={self.admission_threshold:.4g},"
            f" quantized={self.quantized is not None})"
        )

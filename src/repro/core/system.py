"""The end-to-end ICGMM system.

:class:`IcgmmSystem` drives the paper's whole pipeline on one
workload:

1. generate (or accept) a memory trace,
2. preprocess it per Sec. 3.1 (trim, page index, Algorithm 1),
3. train the GMM policy engine on the leading slice (Sec. 3.3),
4. score the full request stream in one vectorised pass,
5. simulate the DRAM cache under a chosen strategy (Sec. 3.2), and
6. price the run with the Table 1 latency model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.setassoc import SetAssociativeCache, simulate
from repro.cache.simulate_fast import simulate_fast
from repro.core.config import STRATEGIES, IcgmmConfig
from repro.core.engine import GmmPolicyEngine
from repro.core.policy import build_policy, strategy_score_view
from repro.core.results import BenchmarkResult, StrategyOutcome
from repro.hardware.latency import LatencyModel
from repro.traces.preprocess import TracePreprocessor
from repro.traces.record import MemoryTrace
from repro.traces.workloads import get_workload


@dataclass(frozen=True)
class PreparedWorkload:
    """A workload ready for strategy simulations.

    Holds everything shared between the four Fig. 6 strategies so the
    trace is generated and the GMM trained exactly once per workload.

    Attributes
    ----------
    scores:
        Full 2-D request scores ``G(P, T)`` (drive admission).
    page_frequency_scores:
        Time-marginalised per-page scores aligned with the request
        stream (drive eviction ranking); see
        :meth:`repro.core.engine.GmmPolicyEngine.page_scores`.
    """

    name: str
    page_indices: np.ndarray
    is_write: np.ndarray
    scores: np.ndarray
    page_frequency_scores: np.ndarray
    engine: GmmPolicyEngine

    def __len__(self) -> int:
        return self.page_indices.shape[0]

    def page_score_map(self) -> dict[int, float]:
        """Mapping page index -> marginal score (for the combined
        policy's eviction metadata).

        Built with one vectorized ``np.unique`` + take; ``tolist()``
        converts to Python scalars in bulk so the dict materialises
        at C speed even on million-page traces (the per-element
        ``int()``/``float()`` loop it replaces dominated profile time
        in the serving replay).
        """
        unique_pages, first_position = np.unique(
            self.page_indices, return_index=True
        )
        values = self.page_frequency_scores[first_position]
        return dict(
            zip(unique_pages.tolist(), values.tolist(), strict=True)
        )


class IcgmmSystem:
    """The assembled ICGMM pipeline (see module docstring).

    Parameters
    ----------
    config:
        System configuration; defaults reproduce the paper's case
        study with the simulator-scale GMM (see
        :mod:`repro.core.config`).
    latency_model:
        Table 1 pricing model (defaults to the TLC target with the
        dataflow overlap enabled).
    """

    def __init__(
        self,
        config: IcgmmConfig | None = None,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.config = config if config is not None else IcgmmConfig()
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self._preprocessor = TracePreprocessor(
            head_fraction=self.config.head_fraction,
            tail_fraction=self.config.tail_fraction,
            len_window=self.config.len_window,
            len_access_shot=self.config.len_access_shot,
            timestamp_mode=self.config.timestamp_mode,
        )

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def generate_trace(
        self, workload: str, rng: np.random.Generator
    ) -> MemoryTrace:
        """Generate the workload's synthetic trace at the config scale."""
        generator = get_workload(workload, scale=self.config.workload_scale)
        length = (
            self.config.trace_length
            if self.config.trace_length is not None
            else generator.default_length
        )
        return generator.generate(length, rng)

    def prepare(
        self,
        workload: str,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> PreparedWorkload:
        """Run stages 1-4: trace, preprocessing, training, scoring."""
        if rng is None:
            rng = np.random.default_rng(self.config.seed)
        if trace is None:
            trace = self.generate_trace(workload, rng)
        processed = self._preprocessor.process(trace)
        features = processed.features
        n_train = max(1, int(len(processed) * self.config.train_fraction))
        engine = GmmPolicyEngine.train(
            features[:n_train], self.config.gmm, rng
        )
        scores = engine.score(features)
        page_frequency_scores = engine.page_scores(
            processed.page_indices
        )
        return PreparedWorkload(
            name=workload,
            page_indices=processed.page_indices,
            is_write=processed.trace.is_write.copy(),
            scores=scores,
            page_frequency_scores=page_frequency_scores,
            engine=engine,
        )

    def run_strategy(
        self, prepared: PreparedWorkload, strategy: str
    ) -> StrategyOutcome:
        """Simulate one Fig. 6 strategy on a prepared workload."""
        view = strategy_score_view(strategy)
        page_scores = (
            prepared.page_score_map()
            if strategy == "gmm-caching-eviction"
            else None
        )
        policy = build_policy(
            strategy,
            prepared.engine.admission_threshold,
            page_scores=page_scores,
        )
        cache = SetAssociativeCache(self.config.geometry)
        if view == "request":
            scores = prepared.scores
        elif view == "page":
            scores = prepared.page_frequency_scores
        else:
            scores = None
        run = (
            simulate_fast
            if self.config.simulator == "fast"
            else simulate
        )
        stats = run(
            cache,
            policy,
            prepared.page_indices,
            prepared.is_write,
            scores=scores,
            warmup_fraction=self.config.warmup_fraction,
        )
        return StrategyOutcome(
            strategy=strategy,
            stats=stats,
            average_time_us=self.latency_model.average_access_time_us(
                stats
            ),
        )

    # ------------------------------------------------------------------
    # Whole-benchmark entry point
    # ------------------------------------------------------------------
    def run_benchmark(
        self,
        workload: str,
        strategies: tuple[str, ...] = STRATEGIES,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> BenchmarkResult:
        """Prepare a workload and run every requested strategy on it."""
        prepared = self.prepare(workload, trace=trace, rng=rng)
        outcomes = {
            strategy: self.run_strategy(prepared, strategy)
            for strategy in strategies
        }
        return BenchmarkResult(workload=workload, outcomes=outcomes)

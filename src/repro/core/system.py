"""The end-to-end ICGMM system.

:class:`IcgmmSystem` is the offline entry point to the shared staged
pipeline (:mod:`repro.core.pipeline`): it drives the paper's whole
loop on one workload --

1. generate (or accept) a memory trace,
2. preprocess it per Sec. 3.1 (trim, page index, Algorithm 1),
3. train the GMM policy engine on the leading slice (Sec. 3.3),
4. score the full request stream in one vectorised pass,
5. simulate the DRAM cache under a chosen strategy (Sec. 3.2), and
6. price the run with the Table 1 latency model.

Every stage is implemented once in
:class:`~repro.core.pipeline.StagedPipeline` and reused verbatim by
the streaming service (:mod:`repro.serving`) and the multi-device
fabric (:mod:`repro.cxl.fabric`); this class only binds the stages
into the offline prepare-then-run shape.
"""

from __future__ import annotations

import numpy as np

from repro.core.config import STRATEGIES, IcgmmConfig
from repro.core.pipeline import (
    PreparedWorkload,
    StagedPipeline,
)
from repro.core.results import BenchmarkResult, StrategyOutcome
from repro.hardware.latency import LatencyModel
from repro.traces.record import MemoryTrace

__all__ = ["IcgmmSystem", "PreparedWorkload"]


class IcgmmSystem:
    """The assembled ICGMM pipeline (see module docstring).

    Parameters
    ----------
    config:
        System configuration; defaults reproduce the paper's case
        study with the simulator-scale GMM (see
        :mod:`repro.core.config`).
    latency_model:
        Table 1 pricing model (defaults to the TLC target with the
        dataflow overlap enabled).
    """

    def __init__(
        self,
        config: IcgmmConfig | None = None,
        latency_model: LatencyModel | None = None,
    ) -> None:
        self.pipeline = StagedPipeline(config, latency_model)

    @property
    def config(self) -> IcgmmConfig:
        """The pipeline's system configuration."""
        return self.pipeline.config

    @property
    def latency_model(self) -> LatencyModel:
        """The pipeline's Table 1 pricing model."""
        return self.pipeline.latency_model

    @property
    def _preprocessor(self):
        """The pipeline's Sec. 3.1 preprocessor (compat accessor)."""
        return self.pipeline._preprocessor

    # ------------------------------------------------------------------
    # Pipeline stages (delegated to the shared staged core)
    # ------------------------------------------------------------------
    def generate_trace(
        self, workload: str, rng: np.random.Generator
    ) -> MemoryTrace:
        """Generate the workload's synthetic trace at the config scale."""
        return self.pipeline.generate_trace(workload, rng)

    def prepare(
        self,
        workload: str,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> PreparedWorkload:
        """Run stages 1-4: trace, preprocessing, training, scoring."""
        return self.pipeline.prepare(workload, trace=trace, rng=rng)

    def run_strategy(
        self, prepared: PreparedWorkload, strategy: str
    ) -> StrategyOutcome:
        """Simulate one Fig. 6 strategy on a prepared workload."""
        return self.pipeline.run_strategy(prepared, strategy)

    # ------------------------------------------------------------------
    # Whole-benchmark entry point
    # ------------------------------------------------------------------
    def run_benchmark(
        self,
        workload: str,
        strategies: tuple[str, ...] = STRATEGIES,
        trace: MemoryTrace | None = None,
        rng: np.random.Generator | None = None,
    ) -> BenchmarkResult:
        """Prepare a workload and run every requested strategy on it."""
        return self.pipeline.run_benchmark(
            workload, strategies=strategies, trace=trace, rng=rng
        )

"""DRAM cache substrate: set-associative model, simulator, policies."""

from repro.cache.policies import (
    BeladyPolicy,
    ClockPolicy,
    FifoPolicy,
    GmmCachePolicy,
    LfuPolicy,
    LruPolicy,
    LstmCachePolicy,
    RandomPolicy,
    ReplacementPolicy,
    ScoreBasedPolicy,
    make_policy,
)
from repro.cache.setassoc import (
    INVALID,
    CacheGeometry,
    SetAssociativeCache,
    simulate,
)
from repro.cache.simulate_fast import simulate_fast
from repro.cache.stats import CacheStats

__all__ = [
    "BeladyPolicy",
    "CacheGeometry",
    "CacheStats",
    "ClockPolicy",
    "FifoPolicy",
    "GmmCachePolicy",
    "INVALID",
    "LfuPolicy",
    "LruPolicy",
    "LstmCachePolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "ScoreBasedPolicy",
    "SetAssociativeCache",
    "simulate",
    "simulate_fast",
    "make_policy",
]

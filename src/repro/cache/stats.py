"""Cache simulation counters and derived metrics."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Per-access outcome codes recorded by the simulators when an
#: ``outcome`` buffer is passed (see
#: :func:`repro.cache.setassoc.simulate`).  Every access receives
#: exactly one code, so :func:`stats_from_outcomes` can rebuild the
#: full :class:`CacheStats` for any subset of the stream (per tenant,
#: per phase, per SLO class) after a single simulation pass.
OUTCOME_FILL = 0  #: miss, admitted, filled an invalid way
OUTCOME_HIT = 1  #: served from the DRAM cache
OUTCOME_BYPASS = 2  #: miss, refused by the admission policy
OUTCOME_EVICT = 3  #: miss, admitted, evicted a clean victim
OUTCOME_DIRTY_EVICT = 4  #: miss, admitted, evicted a dirty victim


@dataclass
class CacheStats:
    """Counters collected by :func:`repro.cache.setassoc.simulate`.

    All counters refer to the *measured* portion of a run (accesses
    after the warm-up cutoff); the cache itself is warmed by the
    preceding accesses.

    Attributes
    ----------
    hits:
        Requests served from the DRAM cache.
    misses:
        Requests that had to reach the SSD (includes bypasses).
    bypasses:
        Misses the admission policy chose *not* to cache (served
        SSD -> host directly, Sec. 3.2).
    bypassed_writes:
        The subset of bypasses that were writes; these pay the SSD
        *write* latency because the data goes straight to flash.
    fills:
        Misses that allocated a cache block.
    evictions:
        Fills that displaced a valid block.
    dirty_evictions:
        Evictions whose victim was dirty and required an SSD write-back
        (the 975 us path of Sec. 5.3).
    write_hits / write_misses:
        The read/write split of hits and misses, needed by the latency
        model (SSD writes are ~12x slower than reads).
    """

    hits: int = 0
    misses: int = 0
    bypasses: int = 0
    bypassed_writes: int = 0
    fills: int = 0
    evictions: int = 0
    dirty_evictions: int = 0
    write_hits: int = 0
    write_misses: int = 0

    @property
    def accesses(self) -> int:
        """Total measured requests."""
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        """Misses over accesses (0.0 for an empty run)."""
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    @property
    def hit_rate(self) -> float:
        """Hits over accesses (0.0 for an empty run)."""
        if self.accesses == 0:
            return 0.0
        return self.hits / self.accesses

    @property
    def bypass_rate(self) -> float:
        """Bypasses over misses (0.0 when there are no misses)."""
        if self.misses == 0:
            return 0.0
        return self.bypasses / self.misses

    @property
    def dirty_eviction_rate(self) -> float:
        """Dirty evictions per miss (drives the write-back penalty)."""
        if self.misses == 0:
            return 0.0
        return self.dirty_evictions / self.misses

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Sum two counter sets (e.g. across trace shards)."""
        return CacheStats(
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            bypasses=self.bypasses + other.bypasses,
            bypassed_writes=self.bypassed_writes + other.bypassed_writes,
            fills=self.fills + other.fills,
            evictions=self.evictions + other.evictions,
            dirty_evictions=self.dirty_evictions + other.dirty_evictions,
            write_hits=self.write_hits + other.write_hits,
            write_misses=self.write_misses + other.write_misses,
        )

    def as_dict(self) -> dict:
        """Flat dict of all counters plus derived rates."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "bypasses": self.bypasses,
            "bypassed_writes": self.bypassed_writes,
            "fills": self.fills,
            "evictions": self.evictions,
            "dirty_evictions": self.dirty_evictions,
            "write_hits": self.write_hits,
            "write_misses": self.write_misses,
            "miss_rate": self.miss_rate,
            "hit_rate": self.hit_rate,
            "bypass_rate": self.bypass_rate,
            "dirty_eviction_rate": self.dirty_eviction_rate,
        }


def fold_outcome(
    stats: CacheStats, outcome: int, is_write: bool
) -> None:
    """Fold one classified access into running counters, in place.

    The scalar single-source of the outcome-code accounting rules
    (miss implies fill-or-bypass, eviction implies fill, dirty
    implies eviction); :func:`stats_from_outcomes` is its vectorized
    whole-array equivalent, and folding a stream access by access
    must always equal rebuilding it in one pass.
    """
    if outcome == OUTCOME_HIT:
        stats.hits += 1
        if is_write:
            stats.write_hits += 1
        return
    stats.misses += 1
    if is_write:
        stats.write_misses += 1
    if outcome == OUTCOME_BYPASS:
        stats.bypasses += 1
        if is_write:
            stats.bypassed_writes += 1
        return
    stats.fills += 1
    if outcome in (OUTCOME_EVICT, OUTCOME_DIRTY_EVICT):
        stats.evictions += 1
        if outcome == OUTCOME_DIRTY_EVICT:
            stats.dirty_evictions += 1


def stats_from_outcomes(
    outcomes: np.ndarray,
    is_write: np.ndarray,
    measured: np.ndarray | None = None,
) -> CacheStats:
    """Rebuild :class:`CacheStats` from recorded per-access outcomes.

    Parameters
    ----------
    outcomes:
        Outcome code per access (the ``OUTCOME_*`` constants), as
        recorded by a simulator ``outcome`` buffer.
    is_write:
        Write flag per access (same shape as ``outcomes``).
    measured:
        Optional boolean mask selecting the accesses to count; the
        serving loop uses it to slice one simulation pass into
        per-tenant / post-warm-up views.

    Because every access carries exactly one code, the counters built
    here over the *full* stream equal the simulator's own counters for
    a ``warmup_fraction=0`` run, and any partition of the stream sums
    back to the whole (asserted by the test suite).
    """
    outcomes = np.asarray(outcomes)
    is_write = np.asarray(is_write, dtype=bool)
    if outcomes.shape != is_write.shape:
        raise ValueError("outcomes and is_write must have the same shape")
    if measured is not None:
        measured = np.asarray(measured, dtype=bool)
        if measured.shape != outcomes.shape:
            raise ValueError(
                "measured mask and outcomes must have the same shape"
            )
        outcomes = outcomes[measured]
        is_write = is_write[measured]
    hit = outcomes == OUTCOME_HIT
    bypass = outcomes == OUTCOME_BYPASS
    evict = outcomes == OUTCOME_EVICT
    dirty = outcomes == OUTCOME_DIRTY_EVICT
    n = outcomes.shape[0]
    n_hits = int(np.count_nonzero(hit))
    n_bypass = int(np.count_nonzero(bypass))
    n_evict = int(np.count_nonzero(evict))
    n_dirty = int(np.count_nonzero(dirty))
    n_misses = n - n_hits
    write_hits = int(np.count_nonzero(hit & is_write))
    write_misses = int(np.count_nonzero(~hit & is_write))
    return CacheStats(
        hits=n_hits,
        misses=n_misses,
        bypasses=n_bypass,
        bypassed_writes=int(np.count_nonzero(bypass & is_write)),
        fills=n_misses - n_bypass,
        evictions=n_evict + n_dirty,
        dirty_evictions=n_dirty,
        write_hits=write_hits,
        write_misses=write_misses,
    )

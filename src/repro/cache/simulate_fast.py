"""Chunked, vectorized trace-driven cache simulation.

The reference :func:`repro.cache.setassoc.simulate` walks the request
stream one access at a time through virtual-dispatch policy hooks --
faithful, but the bottleneck of every Fig. 6 / Table 1 / ablation
bench.  This module processes the stream in *chunks* of a few
thousand requests with whole-array operations, delegating the
policy-specific updates to the vectorized kernels registered in
:mod:`repro.cache.policies.kernels`.

Exactness is non-negotiable: :func:`simulate_fast` produces the
*bit-identical* :class:`~repro.cache.stats.CacheStats` and final
cache state (tags/dirty/meta/stamp) of the reference loop, for every
registered policy, on every trace.  The mechanism:

1.  **Chunking.**  The stream is cut into fixed-size chunks; hit
    detection for a whole chunk round is one gather-and-compare
    against the ``(n_sets, ways)`` tag plane.

2.  **Run-length batching.**  Consecutive accesses to the *same page*
    form a run.  Once the run's first access (the *representative*)
    resolves, the page is resident -- its followers are guaranteed
    hits on the same block and collapse into one closed-form kernel
    update (:meth:`~repro.cache.policies.kernels.PolicyKernel.
    on_hit_runs`) instead of one round each.  If the representative
    was *bypassed* the page is still absent, so the followers replay
    the admission scan vectorized: leading refusals are bypasses, the
    first admitted follower fills (with exact victim selection), and
    the rest collapse into hits again.  Traces that hammer a handful
    of hot pages (memtier/hashmap hot sets) thus cost a few vector
    operations per *run* rather than per access.  Batching engages
    only for kernels whose hit update composes exactly
    (``supports_hit_runs``) and whose admission rule is pure
    (``pure_admission``), and only for chunks where followers make
    up at least :data:`RUN_BATCH_MIN_FOLLOWER_FRACTION` of the
    accesses (below that density the run machinery's O(chunk) prep
    cannot pay for itself); everything else takes the plain
    per-access path, with identical results either way.

3.  **Same-set rounds.**  Run representatives within a chunk only
    interact when they map to the same cache set (all simulator and
    policy state is per-set; access order *across* sets never changes
    an outcome).  Each chunk is therefore split into *rounds* by
    per-set occurrence rank: round ``r`` holds every representative
    that is the ``r``-th touch of its set within the chunk.  Every
    set appears at most once per round, so a round is embarrassingly
    parallel, and processing rounds in rank order preserves the exact
    per-set access order (a run's followers are resolved before its
    set's next round).

4.  **Scalar tail fallback.**  Round *weight* (the accesses a round
    covers, runs included) shrinks with rank -- only hot sets are
    touched many times per chunk.  Once a round would weigh less than
    ``min_round_width``, the chunk's remaining accesses -- exactly
    the full runs of every representative with rank >= the current
    round -- run through the reference scalar span instead, in access
    order.  Every vector-processed access of a set strictly precedes
    its scalar-tail accesses, so the per-set order (the only order
    that matters) is preserved and results stay exact.  A chunk whose
    *first* round is already too light (tiny cache, one scorching set
    of distinct pages) thereby degrades gracefully to the pure
    reference loop.

5.  **Same-set run collapse.**  Same-set rounds cap progress at one
    representative per set per round, so a *set-skewed* trace (one
    scorching set hammered with a handful of distinct pages) used to
    degenerate to rounds of width one and thence to the scalar tail.
    For kernels whose hit updates are order-commutative *across ways*
    (``supports_set_runs`` -- LRU/FIFO/CLOCK/2Q/score/Belady/
    counter-random, and LFU without decay; SLRU and decayed LFU
    refuse), a contiguous span of same-set representatives collapses
    into one round element: the span's resident-page runs group by
    way into closed-form ``on_hit_runs`` updates (hits on different
    ways commute, so only each way's first/last/count summary is
    needed), and each miss resolves exactly in sequence -- admission,
    victim selection, fill, follower collapse -- with the span's
    remaining page->way matches patched incrementally.  Spans whose
    resolved prefix turns out miss-heavy bail to the scalar span
    (per-set order is preserved at any cut, so exactness survives the
    handoff).  Single-set and few-set hammer traces thus run at
    vector speed instead of scalar speed.

6.  **Cross-set short-span batching.**  Spans below
    ``SET_RUN_MIN_SPAN_REPS`` runs are too short to amortise a
    per-span resolver, but a round usually holds *many* such spans
    (interrupted hammering: ping-pong between sets, phased scans
    with breaks).  All short spans of a round advance together:
    one tag gather finds every span's leading resident segment,
    those segments batch into a single cross-set ``on_hit_runs``
    composite (rows carry distinct ``(set, way)`` pairs, and
    set-run kernels' composites are pure per-row scatters, so
    cross-set rows commute exactly like cross-way rows), each
    span's first missing run resolves through the normal
    distinct-set round machinery, and the span cursors advance --
    one vectorized iteration per miss layer instead of one round
    per representative.  ``short_span_batching=False`` restores
    the per-rep expansion schedule (identical results, for
    differential timing).

Policies without a registered kernel (notably ``RandomPolicy``,
whose RNG draw order cannot survive reordering, and user subclasses
that override scalar hooks) fall back to the reference
implementation for the whole trace.
"""

from __future__ import annotations

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.kernels import PolicyKernel, kernel_for
from repro.cache.setassoc import (
    INVALID,
    SetAssociativeCache,
    _scalar_span,
    _validate_stream,
    simulate,
)
from repro.cache.stats import (
    OUTCOME_BYPASS,
    OUTCOME_DIRTY_EVICT,
    OUTCOME_EVICT,
    OUTCOME_FILL,
    OUTCOME_HIT,
    CacheStats,
)

#: Requests per chunk.  Bigger chunks amortise the per-chunk sort and
#: bookkeeping over more accesses; the per-round working set stays
#: small because round width is bounded by the set count.
DEFAULT_CHUNK_SIZE = 131072

#: Minimum round weight (accesses covered, runs included) before the
#: rest of a chunk is handed to the scalar tail (below this the numpy
#: call overhead loses to the plain Python loop).
DEFAULT_MIN_ROUND_WIDTH = 48

#: Run batching engages for a chunk only when at least this fraction
#: of its accesses are run followers (consecutive same-page repeats).
#: The run machinery costs a few O(chunk) cumulative sums; below this
#: density the collapsible work cannot repay them, and the chunk
#: takes the plain per-access path (identical results either way).
RUN_BATCH_MIN_FOLLOWER_FRACTION = 1 / 8

#: A set-run span resolver tolerates this many misses before it
#: starts watching its miss density; once misses exceed a quarter of
#: the representatives resolved, the span's remainder is handed to
#: the scalar span (each miss costs an O(remaining-span) rematch, so
#: a miss-heavy span would otherwise go quadratic).
SET_RUN_BAIL_MIN_MISSES = 8

#: Minimum runs in a contiguous same-set span before it collapses
#: into one round element.  A span resolver costs a few dozen numpy
#: calls regardless of span length; below this the per-element round
#: machinery is cheaper, so short spans are expanded back into
#: singleton elements (identical results, just a different schedule).
SET_RUN_MIN_SPAN_REPS = 48

#: Round-wide short-span batching (mechanism 6) engages for a chunk
#: only when its short spans carry at least this many runs per unit
#: of per-set span depth (the deepest stack of short spans in any
#: one set, which bounds how many rounds the shorts spread across).
#: The batched resolver costs a fixed handful of numpy calls per
#: miss layer per round; narrow rounds -- few concurrent short
#: spans -- repay that overhead more slowly than the plain
#: expansion schedule does, so below this density the chunk keeps
#: the pre-batching expansion (identical results, just a different
#: schedule).
SHORT_SPAN_MIN_ROUND_REPS = 64


def _count(mask: np.ndarray) -> int:
    return int(np.count_nonzero(mask))


#: Row widths whose bool mask packs into one unsigned word, turning a
#: row-wise ``any`` reduction into a single vector compare.
_PACK_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _row_any(mask: np.ndarray) -> np.ndarray:
    """Row-wise ``any`` over a C-contiguous ``(n, ways)`` bool mask."""
    packed = _PACK_DTYPE.get(mask.shape[1])
    if packed is None or not mask.flags.c_contiguous:
        return mask.any(axis=1)
    return mask.view(packed).reshape(mask.shape[0]) != 0


def _ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(s, s + l)`` for each (start, length).

    The run machinery's workhorse: expands per-run (start, length)
    pairs into the flat member positions with two cumulative sums --
    no Python loop.
    """
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    boundaries = np.cumsum(lengths)[:-1]
    out[0] = starts[0]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1] - 1)
    return np.cumsum(out)


class _RoundScratch:
    """Reusable per-round gather buffers (malloc-free inner loop).

    Round width is bounded by ``min(chunk_size, n_sets)``; two
    ``(bound, ways)`` planes cover the tag gather and the tag compare
    for both the hit-detection and the invalid-way scans.
    """

    def __init__(self, bound: int, ways: int) -> None:
        self.tags = np.empty((bound, ways), dtype=np.int64)
        self.cmp = np.empty((bound, ways), dtype=bool)
        self.tags2 = np.empty((bound, ways), dtype=np.int64)
        self.cmp2 = np.empty((bound, ways), dtype=bool)


class _ChunkRuns:
    """Run-length view of one chunk (consecutive same-page accesses).

    Everything the follower-resolution pass needs, precomputed with
    O(chunk) cumulative sums: per-run member spans, follower write /
    measured-write aggregates, and first/last indices and scores.
    Arrays are indexed by *run id* (= representative order within the
    chunk).
    """

    def __init__(
        self,
        rep_pos: np.ndarray,
        m: int,
        base: int,
        pages: np.ndarray,
        sets: np.ndarray,
        is_write: np.ndarray,
        scores: np.ndarray,
        measured,  # True | False | per-access bool array
    ) -> None:
        self.rep_pos = rep_pos
        self.base = base
        self.pages = pages
        self.sets = sets
        self.is_write = is_write
        self.scores = scores
        self.run_len = np.diff(np.append(rep_pos, m))
        self.run_end = rep_pos + self.run_len  # exclusive
        self.fol_count = self.run_len - 1
        self._cw = np.concatenate(
            ([0], np.cumsum(is_write, dtype=np.int64))
        )
        if isinstance(measured, bool):
            self._cm = None
            self._all_measured = measured
        else:
            self._cm = np.concatenate(
                ([0], np.cumsum(measured, dtype=np.int64))
            )
            self._cmw = np.concatenate(
                (
                    [0],
                    np.cumsum(measured & is_write, dtype=np.int64),
                )
            )
            self._all_measured = None

    # -- span aggregates (chunk positions, end exclusive) --------------
    def writes_in(self, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        return self._cw[hi] - self._cw[lo]

    def measured_in(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        if self._cm is None:
            return (hi - lo) if self._all_measured else np.zeros_like(lo)
        return self._cm[hi] - self._cm[lo]

    def measured_writes_in(
        self, lo: np.ndarray, hi: np.ndarray
    ) -> np.ndarray:
        if self._cm is None:
            return (
                self.writes_in(lo, hi)
                if self._all_measured
                else np.zeros_like(lo)
            )
        return self._cmw[hi] - self._cmw[lo]


def _process_round(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    pages: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray,
    idx: np.ndarray,
    measured,
    scratch: _RoundScratch,
    outcome: np.ndarray | None = None,
    outcome_base: int = 0,
    resident: np.ndarray | None = None,
) -> None:
    """Vectorized simulation of one round (all sets distinct).

    Mirrors the reference access loop stage for stage: hit detection,
    hit-side updates, miss counting, admission, victim selection
    (first invalid way, else the kernel's choice), and the fill.
    ``measured`` is ``True`` (whole round counted), ``False`` (pure
    warm-up), or a per-access bool array for the straddling chunk.
    ``idx`` holds absolute access indices; outcome codes land at
    ``outcome[idx - outcome_base]``.  When the run engine passes
    ``resident`` (a ones-initialised bool array of the round's
    width), positions whose access left the page absent -- i.e.
    bypassed misses -- are cleared in it.
    """
    mixed = not isinstance(measured, bool)
    record = outcome is not None
    m = pages.shape[0]
    tag_rows = cache.tags.take(sets, axis=0, out=scratch.tags[:m])
    match = np.equal(tag_rows, pages[:, None], out=scratch.cmp[:m])
    hit = _row_any(match)
    h_pos = np.nonzero(hit)[0]

    if h_pos.size:
        h_sets = sets.take(h_pos)
        h_ways = match.take(h_pos, axis=0).argmax(axis=1)
        h_write = is_write.take(h_pos)
        kernel.on_hits(
            h_sets, h_ways, idx.take(h_pos), scores.take(h_pos)
        )
        if h_write.any():
            cache.dirty[h_sets[h_write], h_ways[h_write]] = True
        if measured is True:
            stats.hits += int(h_pos.size)
            stats.write_hits += _count(h_write)
        elif mixed:
            h_measured = measured.take(h_pos)
            stats.hits += _count(h_measured)
            stats.write_hits += _count(h_measured & h_write)
        if record:
            outcome[idx.take(h_pos) - outcome_base] = OUTCOME_HIT

    if h_pos.size == m:
        return
    m_pos = np.nonzero(~hit)[0]
    m_write = is_write.take(m_pos)
    if measured is True:
        stats.misses += int(m_pos.size)
        stats.write_misses += _count(m_write)
    elif mixed:
        m_measured = measured.take(m_pos)
        stats.misses += _count(m_measured)
        stats.write_misses += _count(m_measured & m_write)

    if kernel.admits_all:
        a_pos = m_pos
    else:
        admitted = kernel.admit(
            pages.take(m_pos),
            scores.take(m_pos),
            m_write,
            idx.take(m_pos),
        )
        n_admitted = _count(admitted)
        if measured is True:
            stats.bypasses += int(m_pos.size) - n_admitted
            stats.bypassed_writes += _count(m_write) - _count(
                admitted & m_write
            )
        elif mixed:
            bypassed = ~admitted
            stats.bypasses += _count(m_measured & bypassed)
            stats.bypassed_writes += _count(
                m_measured & bypassed & m_write
            )
        if record:
            outcome[
                idx.take(m_pos[~admitted]) - outcome_base
            ] = OUTCOME_BYPASS
        if resident is not None:
            resident[m_pos[~admitted]] = False
        if n_admitted == 0:
            return
        a_pos = m_pos[admitted]

    a_sets = sets.take(a_pos)
    a_pages = pages.take(a_pos)
    a_idx = idx.take(a_pos)
    ma = a_pos.shape[0]
    a_tag_rows = tag_rows.take(a_pos, axis=0, out=scratch.tags2[:ma])
    invalid_rows = np.equal(
        a_tag_rows, INVALID, out=scratch.cmp2[:ma]
    )
    has_invalid = _row_any(invalid_rows)
    n_invalid = _count(has_invalid)
    if n_invalid == ma:
        # Every target set has a free way (cold cache): no evictions.
        victims = invalid_rows.argmax(axis=1)
        if record:
            outcome[a_idx - outcome_base] = OUTCOME_FILL
    else:
        if n_invalid == 0:
            # Steady state: every target set is full.
            victims = kernel.select_victims(a_sets, a_idx)
            full_pos = None
            f_sets, f_victims = a_sets, victims
        else:
            victims = np.where(
                has_invalid, invalid_rows.argmax(axis=1), 0
            )
            full_pos = np.nonzero(~has_invalid)[0]
            f_sets = a_sets.take(full_pos)
            f_victims = kernel.select_victims(
                f_sets, a_idx.take(full_pos)
            )
            victims[full_pos] = f_victims
        f_dirty = cache.dirty[f_sets, f_victims]
        if measured is True:
            stats.evictions += int(f_sets.size)
            stats.dirty_evictions += _count(f_dirty)
        elif mixed:
            f_measured = (
                measured.take(a_pos)
                if full_pos is None
                else measured.take(a_pos.take(full_pos))
            )
            stats.evictions += _count(f_measured)
            stats.dirty_evictions += _count(f_measured & f_dirty)
        if record:
            outcome[a_idx - outcome_base] = OUTCOME_FILL
            f_idx = (
                a_idx if full_pos is None else a_idx.take(full_pos)
            )
            outcome[f_idx - outcome_base] = np.where(
                f_dirty, OUTCOME_DIRTY_EVICT, OUTCOME_EVICT
            ).astype(np.uint8)
    if measured is True:
        stats.fills += int(a_pos.size)
    elif mixed:
        stats.fills += _count(measured.take(a_pos))

    cache.tags[a_sets, victims] = a_pages
    cache.dirty[a_sets, victims] = is_write.take(a_pos)
    cache.meta[a_sets, victims] = kernel.fill_meta(
        a_pages, scores.take(a_pos), a_idx
    )
    cache.stamp[a_sets, victims] = a_idx.astype(np.float64)


def _resolve_hit_runs(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    ids: np.ndarray,
    ways: np.ndarray,
    first_pos: np.ndarray,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> None:
    """Apply the collapsed effect of all-hit follower spans.

    ``ids`` are run ids whose followers from chunk position
    ``first_pos`` (inclusive) to the run's end are guaranteed hits on
    way ``ways`` of the run's set; counts the hits, ORs the dirty
    bit, and hands the kernel one closed-form ``on_hit_runs`` update.
    """
    sets = runs.sets[runs.rep_pos[ids]]
    end = runs.run_end[ids]
    last_pos = end - 1
    stats.hits += int(runs.measured_in(first_pos, end).sum())
    stats.write_hits += int(
        runs.measured_writes_in(first_pos, end).sum()
    )
    wet = runs.writes_in(first_pos, end) > 0
    if wet.any():
        cache.dirty[sets[wet], ways[wet]] = True
    kernel.on_hit_runs(
        sets,
        ways,
        first_pos + runs.base,
        last_pos + runs.base,
        end - first_pos,
        runs.scores[first_pos],
        runs.scores[last_pos],
    )
    if outcome is not None:
        flat = _ranges(first_pos, end - first_pos)
        outcome[flat + chunk_start] = OUTCOME_HIT


def _resolve_bypass_runs(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    ids: np.ndarray,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> None:
    """Exact follower replay for runs whose representative bypassed.

    The page is still absent, so each follower repeats the (pure)
    admission decision on its own score: the leading refusals are
    bypassed misses, the first admitted follower fills -- victim
    selection included -- and everything after it collapses into a
    hit run on the filled way.
    """
    record = outcome is not None
    starts = runs.rep_pos[ids] + 1
    lens = runs.fol_count[ids]
    flat = _ranges(starts, lens)
    admitted = kernel.admit(
        runs.pages[flat],
        runs.scores[flat],
        runs.is_write[flat],
        flat + runs.base,
    )
    # First admitted flat offset per run (flat.size = "none").
    seg_starts = np.concatenate(([0], np.cumsum(lens)[:-1]))
    pos_in_flat = np.arange(flat.size, dtype=np.int64)
    keyed = np.where(admitted, pos_in_flat, flat.size)
    first_adm = np.minimum.reduceat(keyed, seg_starts)
    # cumulative-min across the whole array would bleed between
    # segments only if a segment were empty; lens >= 1 by
    # construction (only runs with followers reach here).

    # Bypassed prefix of every run (the whole run when none admitted).
    seg_of = np.repeat(np.arange(ids.shape[0]), lens)
    bypass_mask = pos_in_flat < first_adm[seg_of]
    fill_pos = np.where(
        first_adm < flat.size,
        flat[np.minimum(first_adm, flat.size - 1)],
        runs.run_end[ids],  # sentinel: == end, empty hit span
    )
    bypassed_measured = int(runs.measured_in(starts, fill_pos).sum())
    bypassed_measured_writes = int(
        runs.measured_writes_in(starts, fill_pos).sum()
    )
    stats.misses += bypassed_measured
    stats.write_misses += bypassed_measured_writes
    stats.bypasses += bypassed_measured
    stats.bypassed_writes += bypassed_measured_writes
    if record:
        outcome[flat[bypass_mask] + chunk_start] = OUTCOME_BYPASS

    has_fill = first_adm < flat.size
    if not has_fill.any():
        return
    f_ids = ids[has_fill]
    p = fill_pos[has_fill]
    f_sets = runs.sets[p]
    f_pages = runs.pages[p]
    f_idx = p + runs.base
    f_write = runs.is_write[p]
    f_measured = runs.measured_in(p, p + 1).astype(bool)
    stats.misses += _count(f_measured)
    stats.write_misses += _count(f_measured & f_write)
    stats.fills += _count(f_measured)

    # Victim selection, exactly like the main fill path: first
    # invalid way, else the kernel's choice (sets are distinct within
    # the round, so one vectorized call is order-safe).
    tag_rows = cache.tags[f_sets]
    invalid_rows = tag_rows == INVALID
    has_invalid = _row_any(invalid_rows)
    victims = np.where(has_invalid, invalid_rows.argmax(axis=1), 0)
    full = np.nonzero(~has_invalid)[0]
    if record:
        outcome[f_idx + chunk_start - runs.base] = OUTCOME_FILL
    if full.size:
        e_sets = f_sets.take(full)
        e_victims = kernel.select_victims(e_sets, f_idx.take(full))
        victims[full] = e_victims
        e_dirty = cache.dirty[e_sets, e_victims]
        e_measured = f_measured.take(full)
        stats.evictions += _count(e_measured)
        stats.dirty_evictions += _count(e_measured & e_dirty)
        if record:
            outcome[f_idx.take(full) + chunk_start - runs.base] = (
                np.where(
                    e_dirty, OUTCOME_DIRTY_EVICT, OUTCOME_EVICT
                ).astype(np.uint8)
            )
    cache.tags[f_sets, victims] = f_pages
    cache.dirty[f_sets, victims] = f_write
    cache.meta[f_sets, victims] = kernel.fill_meta(
        f_pages, runs.scores[p], f_idx
    )
    cache.stamp[f_sets, victims] = f_idx.astype(np.float64)

    # Followers after the fill are hits on the freshly filled way.
    tail = runs.run_end[f_ids] - (p + 1) > 0
    if tail.any():
        _resolve_hit_runs(
            cache,
            kernel,
            stats,
            runs,
            f_ids[tail],
            victims[tail],
            p[tail] + 1,
            outcome,
            chunk_start,
        )


def _resolve_runs(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    rep_rows: np.ndarray,
    r_sets: np.ndarray,
    r_pages: np.ndarray,
    resident: np.ndarray,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> None:
    """Resolve the followers of one processed round's runs.

    Called right after :func:`_process_round` on the round's
    representatives (``rep_rows`` are their run ids) and before the
    next round -- so every follower lands between its representative
    and the set's next access, preserving exact per-set order.
    """
    has_followers = runs.fol_count[rep_rows] > 0
    if not has_followers.any():
        return
    collapsed = has_followers & resident
    rows = np.nonzero(collapsed)[0]
    if rows.size:
        ids = rep_rows[rows]
        sets_c = r_sets[rows]
        match = cache.tags[sets_c] == r_pages[rows][:, None]
        ways = match.argmax(axis=1)
        _resolve_hit_runs(
            cache,
            kernel,
            stats,
            runs,
            ids,
            ways,
            runs.rep_pos[ids] + 1,
            outcome,
            chunk_start,
        )
    bypassed = has_followers & ~resident
    rows = np.nonzero(bypassed)[0]
    if rows.size:
        _resolve_bypass_runs(
            cache,
            kernel,
            stats,
            runs,
            rep_rows[rows],
            outcome,
            chunk_start,
        )


def _rank_rounds(
    element_sets: np.ndarray, n_sets: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Per-set occurrence-rank round assignment.

    ``element_sets`` holds the cache set of each round element in
    access order; returns ``(bounds, seq, max_rank)`` such that round
    ``r`` processes elements ``seq[bounds[r]:bounds[r+1]]`` -- every
    set at most once per round, and a set's elements spread over
    consecutive rounds in access order (the only ordering the
    simulation depends on).  Rounds are *contiguous* in ``seq`` so
    the per-round work operates on views; ordering set groups by
    descending size turns the placement into a direct scatter (see
    the inline comments at the original call site in earlier
    revisions).  Sorting a uint16 key engages numpy's fast radix
    path (~8x over int64 comparison sort).
    """
    m = element_sets.shape[0]
    sort_key = (
        element_sets.astype(np.uint16)
        if n_sets <= 65536
        else element_sets
    )
    order = np.argsort(sort_key, kind="stable")
    sorted_sets = element_sets[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_sets[1:] != sorted_sets[:-1]
    group_starts = np.nonzero(new_group)[0]
    group_sizes = np.diff(np.append(group_starts, m))
    max_rank = int(group_sizes.max())
    sorted_rank = np.arange(m) - np.repeat(group_starts, group_sizes)
    round_sizes = np.bincount(sorted_rank, minlength=max_rank)
    bounds = np.concatenate(([0], np.cumsum(round_sizes)))
    n_groups = group_starts.shape[0]
    size_desc = np.argsort(-group_sizes, kind="stable")
    slot_of_group = np.empty(n_groups, dtype=np.int64)
    slot_of_group[size_desc] = np.arange(n_groups)
    group_of = np.cumsum(new_group) - 1
    seq = np.empty(m, dtype=np.int64)
    seq[bounds[sorted_rank] + slot_of_group[group_of]] = order
    return bounds, seq, max_rank


def _run_scalar_tail(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    kernel: PolicyKernel,
    stats: CacheStats,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray,
    positions: np.ndarray,
    base: int,
    measure_from: int,
    outcome: np.ndarray | None,
    outcome_base: int,
) -> None:
    """Reference-loop replay of chunk ``positions`` in access order.

    Flushes kernel-side mirrors into the policy, runs the exact
    scalar span, and reloads -- the shared epilogue of every
    vector-path bailout.
    """
    tags_list = cache.tags.tolist()
    kernel.flush()
    _scalar_span(
        cache,
        policy,
        tags_list,
        [int(p) for p in pages[positions]],
        [bool(w) for w in is_write[positions]],
        [float(s) for s in scores[positions]],
        [base + int(p) for p in positions],
        measure_from,
        stats,
        outcome=outcome,
        outcome_base=outcome_base,
    )
    kernel.reload()


def _apply_span_hits(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    ids: np.ndarray,
    ways: np.ndarray,
    set_index: int,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> None:
    """Collapsed update for a span segment of all-resident runs.

    ``ids`` are consecutive run ids of one set whose pages are all
    resident (on way ``ways[i]``); every member access is a hit.
    Runs group by way, and each way receives one ``on_hit_runs``
    composite -- sound because set-run kernels' hit updates commute
    across ways (the ``supports_set_runs`` contract), so interleaved
    hit order between ways cannot change the outcome.
    """
    order = np.argsort(ways, kind="stable")
    ids_sorted = ids[order]
    ways_sorted = ways[order]
    m = ids_sorted.shape[0]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    boundary[1:] = ways_sorted[1:] != ways_sorted[:-1]
    group_starts = np.nonzero(boundary)[0]
    group_sizes = np.diff(np.append(group_starts, m))
    lo = runs.rep_pos[ids_sorted]
    hi = runs.run_end[ids_sorted]
    counts = np.add.reduceat(hi - lo, group_starts)
    measured = np.add.reduceat(
        runs.measured_in(lo, hi), group_starts
    )
    measured_writes = np.add.reduceat(
        runs.measured_writes_in(lo, hi), group_starts
    )
    writes = np.add.reduceat(runs.writes_in(lo, hi), group_starts)
    stats.hits += int(measured.sum())
    stats.write_hits += int(measured_writes.sum())
    group_ways = ways_sorted[group_starts]
    wet = writes > 0
    if wet.any():
        cache.dirty[set_index, group_ways[wet]] = True
    first_member = ids_sorted[group_starts]
    last_member = ids_sorted[group_starts + group_sizes - 1]
    first_pos = runs.rep_pos[first_member]
    last_pos = runs.run_end[last_member] - 1
    kernel.on_hit_runs(
        np.full(group_ways.shape[0], set_index, dtype=np.int64),
        group_ways,
        first_pos + runs.base,
        last_pos + runs.base,
        counts,
        runs.scores[first_pos],
        runs.scores[last_pos],
    )
    if outcome is not None:
        flat = _ranges(runs.rep_pos[ids], runs.run_len[ids])
        outcome[flat + chunk_start] = OUTCOME_HIT


def _apply_span_hits_multi(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    ids: np.ndarray,
    ways: np.ndarray,
    sets: np.ndarray,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> None:
    """Collapsed update for resident-run segments across many sets.

    The cross-set generalisation of :func:`_apply_span_hits`:
    ``ids[i]`` is a run resident on way ``ways[i]`` of set
    ``sets[i]``, with each set's runs appearing in access order.
    Runs group by ``(set, way)`` and each group receives one
    ``on_hit_runs`` composite -- sound because set-run kernels'
    composites are pure per-row scatters over distinct
    ``(set, way)`` rows, so cross-set rows commute exactly like the
    cross-way rows of the single-set path.
    """
    n_ways = cache.geometry.associativity
    key = sets * np.int64(n_ways) + ways
    order = np.argsort(key, kind="stable")
    ids_sorted = ids[order]
    key_sorted = key[order]
    m = ids_sorted.shape[0]
    boundary = np.empty(m, dtype=bool)
    boundary[0] = True
    boundary[1:] = key_sorted[1:] != key_sorted[:-1]
    group_starts = np.nonzero(boundary)[0]
    group_sizes = np.diff(np.append(group_starts, m))
    lo = runs.rep_pos[ids_sorted]
    hi = runs.run_end[ids_sorted]
    counts = np.add.reduceat(hi - lo, group_starts)
    measured = np.add.reduceat(
        runs.measured_in(lo, hi), group_starts
    )
    measured_writes = np.add.reduceat(
        runs.measured_writes_in(lo, hi), group_starts
    )
    writes = np.add.reduceat(runs.writes_in(lo, hi), group_starts)
    stats.hits += int(measured.sum())
    stats.write_hits += int(measured_writes.sum())
    group_sets = sets[order][group_starts]
    group_ways = ways[order][group_starts]
    wet = writes > 0
    if wet.any():
        cache.dirty[group_sets[wet], group_ways[wet]] = True
    first_member = ids_sorted[group_starts]
    last_member = ids_sorted[group_starts + group_sizes - 1]
    first_pos = runs.rep_pos[first_member]
    last_pos = runs.run_end[last_member] - 1
    kernel.on_hit_runs(
        group_sets,
        group_ways,
        first_pos + runs.base,
        last_pos + runs.base,
        counts,
        runs.scores[first_pos],
        runs.scores[last_pos],
    )
    if outcome is not None:
        flat = _ranges(runs.rep_pos[ids], runs.run_len[ids])
        outcome[flat + chunk_start] = OUTCOME_HIT


def _resolve_miss_run(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    rep_id: int,
    set_index: int,
    outcome: np.ndarray | None,
    chunk_start: int,
) -> tuple[int, int] | None:
    """Exact resolution of one whole run opening with a miss.

    The run's page is absent: leading admission refusals are
    bypassed misses, the first admitted member fills (victim
    selection included), and the remainder collapses into a hit run
    on the filled way -- the span-path analogue of
    :func:`_resolve_bypass_runs`, for a single run that *starts* at
    its representative.  Returns ``(page, victim_way)`` when a fill
    happened (the caller must re-match later span pages against the
    changed tag), else ``None``.
    """
    record = outcome is not None
    p_lo = int(runs.rep_pos[rep_id])
    p_hi = int(runs.run_end[rep_id])
    if kernel.admits_all:
        first_adm = 0
    else:
        members = np.arange(p_lo, p_hi, dtype=np.int64)
        admitted = kernel.admit(
            runs.pages[members],
            runs.scores[members],
            runs.is_write[members],
            members + runs.base,
        )
        first_adm = (
            int(admitted.argmax())
            if admitted.any()
            else p_hi - p_lo
        )
    if first_adm > 0:
        span = (
            np.asarray([p_lo]),
            np.asarray([p_lo + first_adm]),
        )
        bypassed = int(runs.measured_in(*span)[0])
        bypassed_writes = int(runs.measured_writes_in(*span)[0])
        stats.misses += bypassed
        stats.write_misses += bypassed_writes
        stats.bypasses += bypassed
        stats.bypassed_writes += bypassed_writes
        if record:
            outcome[
                np.arange(p_lo, p_lo + first_adm) + chunk_start
            ] = OUTCOME_BYPASS
    if first_adm == p_hi - p_lo:
        return None
    fill_pos = p_lo + first_adm
    fill_measured = bool(
        runs.measured_in(
            np.asarray([fill_pos]), np.asarray([fill_pos + 1])
        )[0]
    )
    fill_write = bool(runs.is_write[fill_pos])
    if fill_measured:
        stats.misses += 1
        if fill_write:
            stats.write_misses += 1
        stats.fills += 1
    page = int(runs.pages[fill_pos])
    idx = fill_pos + runs.base
    invalid = np.nonzero(cache.tags[set_index] == INVALID)[0]
    if invalid.size:
        victim = int(invalid[0])
        if record:
            outcome[fill_pos + chunk_start] = OUTCOME_FILL
    else:
        victim = int(
            kernel.select_victims(
                np.asarray([set_index]), np.asarray([idx])
            )[0]
        )
        victim_dirty = bool(cache.dirty[set_index, victim])
        if fill_measured:
            stats.evictions += 1
            if victim_dirty:
                stats.dirty_evictions += 1
        if record:
            outcome[fill_pos + chunk_start] = (
                OUTCOME_DIRTY_EVICT if victim_dirty else OUTCOME_EVICT
            )
    cache.tags[set_index, victim] = page
    cache.dirty[set_index, victim] = fill_write
    cache.meta[set_index, victim] = kernel.fill_meta(
        np.asarray([page]),
        runs.scores[fill_pos : fill_pos + 1],
        np.asarray([idx]),
    )[0]
    cache.stamp[set_index, victim] = float(idx)
    if p_hi - fill_pos > 1:
        _resolve_hit_runs(
            cache,
            kernel,
            stats,
            runs,
            np.asarray([rep_id]),
            np.asarray([victim]),
            np.asarray([fill_pos + 1]),
            outcome,
            chunk_start,
        )
    return page, victim


def _resolve_set_span(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    policy: ReplacementPolicy,
    stats: CacheStats,
    runs: _ChunkRuns,
    rep_lo: int,
    rep_count: int,
    outcome: np.ndarray | None,
    chunk_start: int,
    outcome_base: int,
    measure_from: int,
) -> None:
    """Resolve one contiguous same-set span of ``rep_count`` runs.

    Pages are matched against the set's tags once; maximal resident
    segments collapse through :func:`_apply_span_hits` and each miss
    resolves exactly in sequence, patching the remaining matches
    against the filled tag (a fill changes exactly one way, so only
    runs matching the evicted tag or the filled page flip state).
    Spans that turn out miss-heavy bail to the scalar span -- per-set
    order is preserved at any cut, so the handoff stays exact.
    """
    rep_ids = np.arange(rep_lo, rep_lo + rep_count, dtype=np.int64)
    rep_positions = runs.rep_pos[rep_ids]
    rep_pages = runs.pages[rep_positions]
    set_index = int(runs.sets[rep_positions[0]])
    match = rep_pages[:, None] == cache.tags[set_index][None, :]
    found = match.any(axis=1)
    way_of = np.where(found, match.argmax(axis=1), -1)
    cursor = 0
    misses = 0
    hit_reps = 0
    while cursor < rep_count:
        absent = way_of[cursor:] < 0
        stop_rel = (
            int(absent.argmax()) if absent.any() else absent.shape[0]
        )
        stop = cursor + stop_rel
        if stop > cursor:
            _apply_span_hits(
                cache,
                kernel,
                stats,
                runs,
                rep_ids[cursor:stop],
                way_of[cursor:stop],
                set_index,
                outcome,
                chunk_start,
            )
            hit_reps += stop - cursor
        if stop == rep_count:
            return
        fill = _resolve_miss_run(
            cache,
            kernel,
            stats,
            runs,
            int(rep_ids[stop]),
            set_index,
            outcome,
            chunk_start,
        )
        misses += 1
        if fill is not None:
            page, victim = fill
            tail_ways = way_of[stop + 1 :]
            tail_pages = rep_pages[stop + 1 :]
            np.copyto(tail_ways, -1, where=tail_ways == victim)
            np.copyto(tail_ways, victim, where=tail_pages == page)
        cursor = stop + 1
        if (
            cursor < rep_count
            and misses >= SET_RUN_BAIL_MIN_MISSES
            and 4 * misses > misses + hit_reps
        ):
            rest = rep_ids[cursor:]
            positions = _ranges(
                runs.rep_pos[rest], runs.run_len[rest]
            )
            _run_scalar_tail(
                cache,
                policy,
                kernel,
                stats,
                runs.pages,
                runs.is_write,
                runs.scores,
                positions,
                runs.base,
                measure_from,
                outcome,
                outcome_base,
            )
            return


def _resolve_short_spans(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    runs: _ChunkRuns,
    rep_first: np.ndarray,
    rep_counts: np.ndarray,
    scratch: _RoundScratch,
    chunk_measured,
    measure_from: int,
    outcome: np.ndarray | None,
    chunk_start: int,
    outcome_base: int,
) -> None:
    """Batched resolution of one round's short same-set spans.

    ``rep_first[j] .. rep_first[j] + rep_counts[j]`` are the run ids
    of span ``j``; spans belong to one round, so their sets are all
    distinct.  Per iteration: one gather matches every span's
    unresolved runs against its set's tags, the leading resident
    segments of *all* spans batch into one cross-set
    :func:`_apply_span_hits_multi` composite, each span's first
    missing run resolves through the ordinary distinct-set round
    machinery (:func:`_process_round` + :func:`_resolve_runs`), and
    the cursors advance past the miss.  Per-set order is exact: a
    span's resident prefix strictly precedes its miss in access
    order and is applied first, and composites never touch the tag
    plane, so the miss round sees precisely the tags it would have
    seen scalar.  Iteration count is bounded by the deepest span's
    miss count (< ``SET_RUN_MIN_SPAN_REPS``), every step vectorized
    across spans.
    """
    cur = rep_first.astype(np.int64, copy=True)
    end = rep_first + rep_counts
    while True:
        active = cur < end
        if not active.any():
            return
        a_cur = cur[active]
        counts = end[active] - a_cur
        flat_ids = _ranges(a_cur, counts)
        f_pos = runs.rep_pos[flat_ids]
        f_pages = runs.pages[f_pos]
        f_sets = runs.sets[f_pos]
        match = cache.tags[f_sets] == f_pages[:, None]
        found = _row_any(match)
        way_of = match.argmax(axis=1)
        # First missing run of every span (flat offsets; the
        # sentinel ``flat_ids.size`` marks an all-resident span).
        seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        seg_of = np.repeat(np.arange(a_cur.shape[0]), counts)
        pif = np.arange(flat_ids.size, dtype=np.int64)
        keyed = np.where(found, flat_ids.size, pif)
        first_miss = np.minimum.reduceat(keyed, seg_starts)
        in_prefix = pif < first_miss[seg_of]
        if in_prefix.any():
            _apply_span_hits_multi(
                cache,
                kernel,
                stats,
                runs,
                flat_ids[in_prefix],
                way_of[in_prefix],
                f_sets[in_prefix],
                outcome,
                chunk_start,
            )
        has_miss = first_miss < flat_ids.size
        if has_miss.any():
            miss_ids = flat_ids[first_miss[has_miss]]
            pos = runs.rep_pos[miss_ids]
            idxs = pos + runs.base
            resident = np.ones(pos.shape[0], dtype=bool)
            _process_round(
                cache,
                kernel,
                stats,
                runs.pages[pos],
                runs.sets[pos],
                runs.is_write[pos],
                runs.scores[pos],
                idxs,
                chunk_measured
                if isinstance(chunk_measured, bool)
                else idxs >= measure_from,
                scratch,
                outcome=outcome,
                outcome_base=outcome_base,
                resident=resident,
            )
            _resolve_runs(
                cache,
                kernel,
                stats,
                runs,
                miss_ids,
                runs.sets[pos],
                runs.pages[pos],
                resident,
                outcome,
                chunk_start,
            )
        cur[active] = np.where(
            has_miss,
            flat_ids[np.minimum(first_miss, flat_ids.size - 1)] + 1,
            end[active],
        )


def simulate_fast(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    min_round_width: int = DEFAULT_MIN_ROUND_WIDTH,
    index_offset: int = 0,
    outcome: np.ndarray | None = None,
    run_batching: bool = True,
    set_run_collapse: bool = True,
    short_span_batching: bool = True,
) -> CacheStats:
    """Vectorized drop-in replacement for
    :func:`repro.cache.setassoc.simulate`.

    Same signature, same semantics, bit-identical results (counters
    and final cache/policy state); see the module docstring for the
    mechanism.  Policies without a registered vector kernel -- or
    with scalar hooks overridden below their registration -- run the
    reference loop transparently.

    Parameters
    ----------
    chunk_size:
        Requests processed per vector step.
    min_round_width:
        Adaptive fallback threshold: once a chunk's next same-set
        round would cover fewer accesses than this (runs included),
        the chunk's remaining accesses run through the exact scalar
        span.
    index_offset:
        Absolute access index of the first request (resumable chunked
        replay; see :func:`repro.cache.setassoc.simulate`).
    outcome:
        Optional ``uint8`` per-access outcome buffer (see
        :func:`repro.cache.setassoc.simulate`).
    run_batching:
        Collapse consecutive same-page accesses into closed-form run
        updates (mechanism 2 above).  On by default; the switch
        exists for differential testing and for timing the unbatched
        engine.
    set_run_collapse:
        Collapse contiguous same-set spans of runs into single round
        elements for order-commutative kernels (mechanism 5 above).
        On by default (kernels without ``supports_set_runs`` refuse
        it regardless); the switch exists for differential testing
        and for timing the uncollapsed engine.
    short_span_batching:
        Resolve each round's sub-``SET_RUN_MIN_SPAN_REPS`` spans
        together in cross-set batched iterations (mechanism 6
        above) instead of expanding them back into per-run round
        elements.  On by default; only meaningful when
        ``set_run_collapse`` is engaged.  The switch exists for
        differential testing and for timing the expansion schedule.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if min_round_width < 1:
        raise ValueError("min_round_width must be >= 1")
    pages, is_write, scores, measure_from = _validate_stream(
        pages, is_write, scores, warmup_fraction, index_offset, outcome
    )
    kernel = kernel_for(policy, cache)
    if kernel is None:
        return simulate(
            cache,
            policy,
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup_fraction,
            index_offset=index_offset,
            outcome=outcome,
        )

    pages = pages.astype(np.int64, copy=False)
    is_write = is_write.astype(bool, copy=False)
    n = pages.shape[0]
    n_sets = cache.geometry.n_sets
    stats = CacheStats()
    scratch = _RoundScratch(
        min(chunk_size, n_sets), cache.geometry.associativity
    )
    batch_runs = (
        run_batching
        and kernel.supports_hit_runs
        and (kernel.admits_all or kernel.pure_admission)
    )

    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        m = stop - start
        c_pages = pages[start:stop]
        c_sets = c_pages % n_sets
        c_write = is_write[start:stop]
        c_scores = scores[start:stop]
        base = start + index_offset
        if measure_from <= base:
            chunk_measured: bool | np.ndarray = True
        elif measure_from >= stop + index_offset:
            chunk_measured = False
        else:
            chunk_measured = (
                np.arange(m, dtype=np.int64) + base >= measure_from
            )

        # Run-length encoding: consecutive same-page accesses form a
        # run; the round machinery below sees only the first member
        # of each (the representative).  A density gate keeps the
        # machinery off low-repeat chunks where it cannot pay for
        # itself.
        runs: _ChunkRuns | None = None
        if batch_runs and m > 1:
            rep_mask = np.empty(m, dtype=bool)
            rep_mask[0] = True
            np.not_equal(c_pages[1:], c_pages[:-1], out=rep_mask[1:])
            rep_pos = np.nonzero(rep_mask)[0]
            if (
                m - rep_pos.size
                >= m * RUN_BATCH_MIN_FOLLOWER_FRACTION
            ):
                runs = _ChunkRuns(
                    rep_pos,
                    m,
                    base,
                    c_pages,
                    c_sets,
                    c_write,
                    c_scores,
                    chunk_measured,
                )

        # Same-set run collapse (mechanism 5): group contiguous
        # same-set runs into spans and make *spans* the round
        # elements.  Engages only when the kernel's hit updates
        # commute across ways and the chunk actually contains a
        # multi-run span; otherwise the rep-per-element path below
        # runs unchanged.
        spans = None
        if (
            runs is not None
            and set_run_collapse
            and kernel.supports_set_runs
            and (kernel.admits_all or kernel.pure_admission)
        ):
            rep_sets = c_sets[runs.rep_pos]
            n_reps = rep_sets.shape[0]
            new_span = np.empty(n_reps, dtype=bool)
            new_span[0] = True
            np.not_equal(
                rep_sets[1:], rep_sets[:-1], out=new_span[1:]
            )
            span_first = np.nonzero(new_span)[0]
            span_count = np.diff(np.append(span_first, n_reps))
            short = (span_count > 1) & (
                span_count < SET_RUN_MIN_SPAN_REPS
            )
            batch_shorts = False
            if short_span_batching and short.any():
                # The batched short-span resolver amortises over the
                # runs each round carries.  Rounds stack one span
                # per set, so the shorts spread across roughly as
                # many rounds as the deepest per-set short-span
                # stack; their run count over that depth estimates
                # runs-per-round.
                depth = int(
                    np.bincount(rep_sets[span_first[short]]).max()
                )
                batch_shorts = (
                    int(span_count[short].sum())
                    >= SHORT_SPAN_MIN_ROUND_REPS * depth
                )
            if batch_shorts:
                # Every multi-run span is a round element: long
                # spans get the per-span resolver, short ones the
                # round-wide batched resolver (mechanism 6).
                spans = (span_first, span_count)
            else:
                collapse = span_count >= SET_RUN_MIN_SPAN_REPS
                if collapse.any():
                    # Sub-threshold spans cost more to resolve in a
                    # per-span resolver than the per-element round
                    # machinery saves; expand them back into
                    # singleton elements (one per run, consecutive
                    # ranks -- same schedule the plain path would
                    # give them).
                    per_span = np.where(collapse, 1, span_count)
                    offsets = np.repeat(
                        np.cumsum(per_span) - per_span, per_span
                    )
                    within = np.arange(int(per_span.sum())) - offsets
                    spans = (
                        np.repeat(span_first, per_span) + within,
                        np.repeat(
                            np.where(collapse, span_count, 1),
                            per_span,
                        ),
                    )

        if spans is not None:
            span_first, span_count = spans
            bounds, seq, max_rank = _rank_rounds(
                rep_sets[span_first], n_sets
            )
            cum_len = np.concatenate(
                ([0], np.cumsum(runs.run_len))
            )
            span_weight = (
                cum_len[span_first + span_count]
                - cum_len[span_first]
            )
            rank = 0
            while rank < max_rank:
                round_spans = seq[bounds[rank] : bounds[rank + 1]]
                if (
                    int(span_weight[round_spans].sum())
                    < min_round_width
                ):
                    break
                single = span_count[round_spans] == 1
                singles = round_spans[single]
                if singles.size:
                    rep_rows = span_first[singles]
                    pos = runs.rep_pos[rep_rows]
                    idxs = pos + base
                    resident = np.ones(pos.shape[0], dtype=bool)
                    _process_round(
                        cache,
                        kernel,
                        stats,
                        c_pages[pos],
                        c_sets[pos],
                        c_write[pos],
                        c_scores[pos],
                        idxs,
                        chunk_measured
                        if isinstance(chunk_measured, bool)
                        else idxs >= measure_from,
                        scratch,
                        outcome=outcome,
                        outcome_base=index_offset,
                        resident=resident,
                    )
                    _resolve_runs(
                        cache,
                        kernel,
                        stats,
                        runs,
                        rep_rows,
                        c_sets[pos],
                        c_pages[pos],
                        resident,
                        outcome,
                        start,
                    )
                multi = round_spans[~single]
                if multi.size:
                    long_span = (
                        span_count[multi] >= SET_RUN_MIN_SPAN_REPS
                    )
                    shorts = multi[~long_span]
                    if shorts.size:
                        _resolve_short_spans(
                            cache,
                            kernel,
                            stats,
                            runs,
                            span_first[shorts],
                            span_count[shorts],
                            scratch,
                            chunk_measured,
                            measure_from,
                            outcome,
                            start,
                            index_offset,
                        )
                    for span_id in multi[long_span]:
                        _resolve_set_span(
                            cache,
                            kernel,
                            policy,
                            stats,
                            runs,
                            int(span_first[span_id]),
                            int(span_count[span_id]),
                            outcome,
                            start,
                            index_offset,
                            measure_from,
                        )
                rank += 1
            if rank < max_rank:
                remaining = seq[bounds[rank] :]
                remaining_reps = _ranges(
                    span_first[remaining], span_count[remaining]
                )
                tail_positions = np.sort(
                    _ranges(
                        runs.rep_pos[remaining_reps],
                        runs.run_len[remaining_reps],
                    )
                )
                _run_scalar_tail(
                    cache, policy, kernel, stats,
                    c_pages, c_write, c_scores, tail_positions,
                    base, measure_from, outcome, index_offset,
                )
            continue

        sel = runs.rep_pos if runs is not None else None
        sel_sets = c_sets if sel is None else c_sets[sel]
        bounds, seq, max_rank = _rank_rounds(sel_sets, n_sets)
        round_sizes = np.diff(bounds)

        sel_pos = seq if sel is None else sel[seq]
        r_pages = c_pages[sel_pos]
        r_sets = c_sets[sel_pos]
        r_write = c_write[sel_pos]
        r_scores = c_scores[sel_pos]
        r_idx = sel_pos + base
        if isinstance(chunk_measured, bool):
            r_measured: bool | np.ndarray = chunk_measured
        else:
            r_measured = r_idx >= measure_from
        r_weight = (
            None if runs is None else runs.run_len[seq]
        )

        rank = 0
        while rank < max_rank:
            lo = bounds[rank]
            hi = bounds[rank + 1]
            weight = (
                int(round_sizes[rank])
                if r_weight is None
                else int(r_weight[lo:hi].sum())
            )
            if weight < min_round_width:
                break
            resident = (
                None if runs is None else np.ones(hi - lo, dtype=bool)
            )
            _process_round(
                cache,
                kernel,
                stats,
                r_pages[lo:hi],
                r_sets[lo:hi],
                r_write[lo:hi],
                r_scores[lo:hi],
                r_idx[lo:hi],
                r_measured
                if isinstance(r_measured, bool)
                else r_measured[lo:hi],
                scratch,
                outcome=outcome,
                outcome_base=index_offset,
                resident=resident,
            )
            if runs is not None:
                _resolve_runs(
                    cache,
                    kernel,
                    stats,
                    runs,
                    seq[lo:hi],
                    r_sets[lo:hi],
                    r_pages[lo:hi],
                    resident,
                    outcome,
                    start,
                )
            rank += 1

        if rank < max_rank:
            # Scalar tail: every access that belongs to a `rank`-th-
            # or-later run of its set, in access order.  Per-set
            # order is preserved (their earlier touches were the
            # vector rounds above), which is the only ordering that
            # matters.
            if runs is None:
                tail_positions = np.sort(seq[bounds[rank] :])
            else:
                tail_reps = seq[bounds[rank] :]
                tail_positions = np.sort(
                    _ranges(
                        runs.rep_pos[tail_reps],
                        runs.run_len[tail_reps],
                    )
                )
            _run_scalar_tail(
                cache, policy, kernel, stats,
                c_pages, c_write, c_scores, tail_positions,
                base, measure_from, outcome, index_offset,
            )

    kernel.finalize()
    return stats

"""Chunked, vectorized trace-driven cache simulation.

The reference :func:`repro.cache.setassoc.simulate` walks the request
stream one access at a time through virtual-dispatch policy hooks --
faithful, but the bottleneck of every Fig. 6 / Table 1 / ablation
bench.  This module processes the stream in *chunks* of a few
thousand requests with whole-array operations, delegating the
policy-specific updates to the vectorized kernels registered in
:mod:`repro.cache.policies.kernels`.

Exactness is non-negotiable: :func:`simulate_fast` produces the
*bit-identical* :class:`~repro.cache.stats.CacheStats` and final
cache state (tags/dirty/meta/stamp) of the reference loop, for every
registered policy, on every trace.  The mechanism:

1.  **Chunking.**  The stream is cut into fixed-size chunks; hit
    detection for a whole chunk round is one gather-and-compare
    against the ``(n_sets, ways)`` tag plane.

2.  **Same-set rounds.**  Accesses within a chunk only interact when
    they map to the same cache set (all simulator and policy state is
    per-set; access order *across* sets never changes an outcome).
    Each chunk is therefore split into *rounds* by per-set occurrence
    rank: round ``r`` holds every access that is the ``r``-th touch
    of its set within the chunk.  Every set appears at most once per
    round, so a round is embarrassingly parallel, and processing
    rounds in rank order preserves the exact per-set access order.

3.  **Scalar tail fallback.**  Round width shrinks with rank (only
    hot sets are touched many times per chunk).  Once a round would
    be narrower than ``min_round_width``, the chunk's remaining
    accesses -- exactly those with rank >= the current round -- run
    through the reference scalar span instead, in access order.
    Every vector-processed access of a set strictly precedes its
    scalar-tail accesses, so the per-set order (the only order that
    matters) is preserved and results stay exact.  A chunk whose
    *first* round is already too narrow (tiny cache, one scorching
    set) thereby degrades gracefully to the pure reference loop.

Policies without a registered kernel (notably ``RandomPolicy``,
whose RNG draw order cannot survive reordering, and user subclasses
that override scalar hooks) fall back to the reference
implementation for the whole trace.
"""

from __future__ import annotations

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.kernels import PolicyKernel, kernel_for
from repro.cache.setassoc import (
    INVALID,
    SetAssociativeCache,
    _scalar_span,
    _validate_stream,
    simulate,
)
from repro.cache.stats import (
    OUTCOME_BYPASS,
    OUTCOME_DIRTY_EVICT,
    OUTCOME_EVICT,
    OUTCOME_FILL,
    OUTCOME_HIT,
    CacheStats,
)

#: Requests per chunk.  Bigger chunks amortise the per-chunk sort and
#: bookkeeping over more accesses; the per-round working set stays
#: small because round width is bounded by the set count.
DEFAULT_CHUNK_SIZE = 131072

#: Minimum round width before the rest of a chunk is handed to the
#: scalar tail (below this the numpy call overhead loses to the
#: plain Python loop).
DEFAULT_MIN_ROUND_WIDTH = 48


def _count(mask: np.ndarray) -> int:
    return int(np.count_nonzero(mask))


#: Row widths whose bool mask packs into one unsigned word, turning a
#: row-wise ``any`` reduction into a single vector compare.
_PACK_DTYPE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


def _row_any(mask: np.ndarray) -> np.ndarray:
    """Row-wise ``any`` over a C-contiguous ``(n, ways)`` bool mask."""
    packed = _PACK_DTYPE.get(mask.shape[1])
    if packed is None or not mask.flags.c_contiguous:
        return mask.any(axis=1)
    return mask.view(packed).reshape(mask.shape[0]) != 0


class _RoundScratch:
    """Reusable per-round gather buffers (malloc-free inner loop).

    Round width is bounded by ``min(chunk_size, n_sets)``; two
    ``(bound, ways)`` planes cover the tag gather and the tag compare
    for both the hit-detection and the invalid-way scans.
    """

    def __init__(self, bound: int, ways: int) -> None:
        self.tags = np.empty((bound, ways), dtype=np.int64)
        self.cmp = np.empty((bound, ways), dtype=bool)
        self.tags2 = np.empty((bound, ways), dtype=np.int64)
        self.cmp2 = np.empty((bound, ways), dtype=bool)


def _process_round(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    pages: np.ndarray,
    sets: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray,
    idx: np.ndarray,
    measured,
    scratch: _RoundScratch,
    outcome: np.ndarray | None = None,
    outcome_base: int = 0,
) -> None:
    """Vectorized simulation of one round (all sets distinct).

    Mirrors the reference access loop stage for stage: hit detection,
    hit-side updates, miss counting, admission, victim selection
    (first invalid way, else the kernel's choice), and the fill.
    ``measured`` is ``True`` (whole round counted), ``False`` (pure
    warm-up), or a per-access bool array for the straddling chunk.
    ``idx`` holds absolute access indices; outcome codes land at
    ``outcome[idx - outcome_base]``.
    """
    mixed = not isinstance(measured, bool)
    record = outcome is not None
    m = pages.shape[0]
    tag_rows = cache.tags.take(sets, axis=0, out=scratch.tags[:m])
    match = np.equal(tag_rows, pages[:, None], out=scratch.cmp[:m])
    hit = _row_any(match)
    h_pos = np.nonzero(hit)[0]

    if h_pos.size:
        h_sets = sets.take(h_pos)
        h_ways = match.take(h_pos, axis=0).argmax(axis=1)
        h_write = is_write.take(h_pos)
        kernel.on_hits(
            h_sets, h_ways, idx.take(h_pos), scores.take(h_pos)
        )
        if h_write.any():
            cache.dirty[h_sets[h_write], h_ways[h_write]] = True
        if measured is True:
            stats.hits += int(h_pos.size)
            stats.write_hits += _count(h_write)
        elif mixed:
            h_measured = measured.take(h_pos)
            stats.hits += _count(h_measured)
            stats.write_hits += _count(h_measured & h_write)
        if record:
            outcome[idx.take(h_pos) - outcome_base] = OUTCOME_HIT

    if h_pos.size == m:
        return
    m_pos = np.nonzero(~hit)[0]
    m_write = is_write.take(m_pos)
    if measured is True:
        stats.misses += int(m_pos.size)
        stats.write_misses += _count(m_write)
    elif mixed:
        m_measured = measured.take(m_pos)
        stats.misses += _count(m_measured)
        stats.write_misses += _count(m_measured & m_write)

    if kernel.admits_all:
        a_pos = m_pos
    else:
        admitted = kernel.admit(
            pages.take(m_pos),
            scores.take(m_pos),
            m_write,
            idx.take(m_pos),
        )
        n_admitted = _count(admitted)
        if measured is True:
            stats.bypasses += int(m_pos.size) - n_admitted
            stats.bypassed_writes += _count(m_write) - _count(
                admitted & m_write
            )
        elif mixed:
            bypassed = ~admitted
            stats.bypasses += _count(m_measured & bypassed)
            stats.bypassed_writes += _count(
                m_measured & bypassed & m_write
            )
        if record:
            outcome[
                idx.take(m_pos[~admitted]) - outcome_base
            ] = OUTCOME_BYPASS
        if n_admitted == 0:
            return
        a_pos = m_pos[admitted]

    a_sets = sets.take(a_pos)
    a_pages = pages.take(a_pos)
    a_idx = idx.take(a_pos)
    ma = a_pos.shape[0]
    a_tag_rows = tag_rows.take(a_pos, axis=0, out=scratch.tags2[:ma])
    invalid_rows = np.equal(
        a_tag_rows, INVALID, out=scratch.cmp2[:ma]
    )
    has_invalid = _row_any(invalid_rows)
    n_invalid = _count(has_invalid)
    if n_invalid == ma:
        # Every target set has a free way (cold cache): no evictions.
        victims = invalid_rows.argmax(axis=1)
        if record:
            outcome[a_idx - outcome_base] = OUTCOME_FILL
    else:
        if n_invalid == 0:
            # Steady state: every target set is full.
            victims = kernel.select_victims(a_sets, a_idx)
            full_pos = None
            f_sets, f_victims = a_sets, victims
        else:
            victims = np.where(
                has_invalid, invalid_rows.argmax(axis=1), 0
            )
            full_pos = np.nonzero(~has_invalid)[0]
            f_sets = a_sets.take(full_pos)
            f_victims = kernel.select_victims(
                f_sets, a_idx.take(full_pos)
            )
            victims[full_pos] = f_victims
        f_dirty = cache.dirty[f_sets, f_victims]
        if measured is True:
            stats.evictions += int(f_sets.size)
            stats.dirty_evictions += _count(f_dirty)
        elif mixed:
            f_measured = (
                measured.take(a_pos)
                if full_pos is None
                else measured.take(a_pos.take(full_pos))
            )
            stats.evictions += _count(f_measured)
            stats.dirty_evictions += _count(f_measured & f_dirty)
        if record:
            outcome[a_idx - outcome_base] = OUTCOME_FILL
            f_idx = (
                a_idx if full_pos is None else a_idx.take(full_pos)
            )
            outcome[f_idx - outcome_base] = np.where(
                f_dirty, OUTCOME_DIRTY_EVICT, OUTCOME_EVICT
            ).astype(np.uint8)
    if measured is True:
        stats.fills += int(a_pos.size)
    elif mixed:
        stats.fills += _count(measured.take(a_pos))

    cache.tags[a_sets, victims] = a_pages
    cache.dirty[a_sets, victims] = is_write.take(a_pos)
    cache.meta[a_sets, victims] = kernel.fill_meta(
        a_pages, scores.take(a_pos), a_idx
    )
    cache.stamp[a_sets, victims] = a_idx.astype(np.float64)


def simulate_fast(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
    chunk_size: int = DEFAULT_CHUNK_SIZE,
    min_round_width: int = DEFAULT_MIN_ROUND_WIDTH,
    index_offset: int = 0,
    outcome: np.ndarray | None = None,
) -> CacheStats:
    """Vectorized drop-in replacement for
    :func:`repro.cache.setassoc.simulate`.

    Same signature, same semantics, bit-identical results (counters
    and final cache/policy state); see the module docstring for the
    mechanism.  Policies without a registered vector kernel -- or
    with scalar hooks overridden below their registration -- run the
    reference loop transparently.

    Parameters
    ----------
    chunk_size:
        Requests processed per vector step.
    min_round_width:
        Adaptive fallback threshold: once a chunk's next same-set
        round would hold fewer accesses than this, the chunk's
        remaining accesses run through the exact scalar span.
    index_offset:
        Absolute access index of the first request (resumable chunked
        replay; see :func:`repro.cache.setassoc.simulate`).
    outcome:
        Optional ``uint8`` per-access outcome buffer (see
        :func:`repro.cache.setassoc.simulate`).
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if min_round_width < 1:
        raise ValueError("min_round_width must be >= 1")
    pages, is_write, scores, measure_from = _validate_stream(
        pages, is_write, scores, warmup_fraction, index_offset, outcome
    )
    kernel = kernel_for(policy, cache)
    if kernel is None:
        return simulate(
            cache,
            policy,
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup_fraction,
            index_offset=index_offset,
            outcome=outcome,
        )

    pages = pages.astype(np.int64, copy=False)
    is_write = is_write.astype(bool, copy=False)
    n = pages.shape[0]
    n_sets = cache.geometry.n_sets
    stats = CacheStats()
    scratch = _RoundScratch(
        min(chunk_size, n_sets), cache.geometry.associativity
    )

    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        m = stop - start
        c_pages = pages[start:stop]
        c_sets = c_pages % n_sets

        # Per-set occurrence rank within the chunk: `order` sorts the
        # chunk by set (stable, so by access order within a set);
        # round r holds the r-th access of every set touched >= r+1
        # times.  Sorting a uint16 key engages numpy's fast radix
        # path (~8x over int64 comparison sort).
        sort_key = (
            c_sets.astype(np.uint16) if n_sets <= 65536 else c_sets
        )
        order = np.argsort(sort_key, kind="stable")
        sorted_sets = c_sets[order]
        new_group = np.empty(m, dtype=bool)
        new_group[0] = True
        new_group[1:] = sorted_sets[1:] != sorted_sets[:-1]
        group_starts = np.nonzero(new_group)[0]
        group_sizes = np.diff(np.append(group_starts, m))
        max_rank = int(group_sizes.max())
        sorted_rank = np.arange(m) - np.repeat(group_starts, group_sizes)
        # Make rounds *contiguous*: round r occupies
        # bounds[r]:bounds[r+1] of `seq`, so the per-round work below
        # operates on views instead of gathers.  Within a round any
        # set order is valid (sets are distinct); ordering groups by
        # descending size means the sets alive at rank r are exactly
        # the first round_sizes[r] groups, which turns the placement
        # into a direct scatter instead of a second argsort.
        round_sizes = np.bincount(sorted_rank, minlength=max_rank)
        bounds = np.concatenate(([0], np.cumsum(round_sizes)))
        n_groups = group_starts.shape[0]
        size_desc = np.argsort(-group_sizes, kind="stable")
        slot_of_group = np.empty(n_groups, dtype=np.int64)
        slot_of_group[size_desc] = np.arange(n_groups)
        group_of = np.cumsum(new_group) - 1
        seq = np.empty(m, dtype=np.int64)
        seq[bounds[sorted_rank] + slot_of_group[group_of]] = order

        r_pages = c_pages[seq]
        r_sets = c_sets[seq]
        r_write = is_write[start:stop][seq]
        r_scores = scores[start:stop][seq]
        r_idx = seq.astype(np.int64) + start + index_offset
        if measure_from <= start + index_offset:
            r_measured: bool | np.ndarray = True
        elif measure_from >= stop + index_offset:
            r_measured = False
        else:
            r_measured = r_idx >= measure_from

        rank = 0
        while rank < max_rank and round_sizes[rank] >= min_round_width:
            lo = bounds[rank]
            hi = bounds[rank + 1]
            _process_round(
                cache,
                kernel,
                stats,
                r_pages[lo:hi],
                r_sets[lo:hi],
                r_write[lo:hi],
                r_scores[lo:hi],
                r_idx[lo:hi],
                r_measured
                if isinstance(r_measured, bool)
                else r_measured[lo:hi],
                scratch,
                outcome=outcome,
                outcome_base=index_offset,
            )
            rank += 1

        if rank < max_rank:
            # Scalar tail: every access that is the `rank`-th or later
            # touch of its set, in access order.  Per-set order is
            # preserved (their earlier touches were the vector rounds
            # above), which is the only ordering that matters.
            tail_positions = np.sort(seq[bounds[rank] :])
            tags_list = cache.tags.tolist()
            kernel.flush()
            _scalar_span(
                cache,
                policy,
                tags_list,
                [int(p) for p in c_pages[tail_positions]],
                [bool(w) for w in is_write[start:stop][tail_positions]],
                [float(s) for s in scores[start:stop][tail_positions]],
                [index_offset + start + int(p) for p in tail_positions],
                measure_from,
                stats,
                outcome=outcome,
                outcome_base=index_offset,
            )
            kernel.reload()

    kernel.finalize()
    return stats

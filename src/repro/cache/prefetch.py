"""Sequential stride prefetching for the DRAM cache.

An orthogonal extension the paper leaves open: the stream-style
workloads miss on *predictable* sequential sweeps, which a classic
next-page prefetcher converts into hits.  The detector keeps a small
table of recent miss addresses; ``degree`` consecutive-page misses
within a table entry arm it, and every subsequent sequential miss
prefetches the next ``distance`` pages into the cache (as clean
blocks, via the normal replacement policy).

Prefetch fills are tracked separately in :class:`PrefetchStats` so the
accuracy/coverage trade-off is visible: on random traffic a prefetcher
only pollutes, on stream it removes the sequential misses the GMM can
only pin fractionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.kernels import PolicyKernel, kernel_for
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats


@dataclass
class PrefetchStats:
    """Prefetcher-side counters.

    Attributes
    ----------
    issued:
        Pages prefetched into the cache.
    useful:
        Prefetched pages that were demand-hit before eviction.
    """

    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches over issued (0 when none issued)."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class StridePrefetcher:
    """Sequential-miss detector with configurable depth.

    Parameters
    ----------
    degree:
        Consecutive-page misses required to arm a stream.
    distance:
        Pages fetched ahead once armed.
    table_size:
        Concurrent streams tracked (LRU replacement on the table).
    """

    def __init__(
        self, degree: int = 2, distance: int = 4, table_size: int = 8
    ) -> None:
        if degree < 1 or distance < 1 or table_size < 1:
            raise ValueError("degree, distance, table_size must be >= 1")
        self.degree = degree
        self.distance = distance
        self.table_size = table_size
        # stream id -> (next expected page, run length, last use tick)
        self._table: dict[int, tuple[int, int, int]] = {}
        self._tick = 0

    def observe_miss(self, page: int) -> list[int]:
        """Record a demand miss; returns pages to prefetch."""
        self._tick += 1
        for stream_id, (expected, run, _) in list(self._table.items()):
            if page == expected:
                run += 1
                self._table[stream_id] = (page + 1, run, self._tick)
                if run >= self.degree:
                    return [
                        page + offset
                        for offset in range(1, self.distance + 1)
                    ]
                return []
        # New stream; evict the stalest entry if the table is full.
        if len(self._table) >= self.table_size:
            stalest = min(
                self._table, key=lambda k: self._table[k][2]
            )
            del self._table[stalest]
        self._table[page] = (page + 1, 1, self._tick)
        return []


def simulate_with_prefetch(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    prefetcher: StridePrefetcher,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
) -> tuple[CacheStats, PrefetchStats]:
    """Trace-driven simulation with demand-miss-triggered prefetch.

    Mirrors :func:`repro.cache.setassoc.simulate` with one addition:
    each demand miss consults the prefetcher and installs the returned
    pages as clean blocks (respecting the replacement policy's victim
    choice; prefetches never bypass).  Usefulness is tracked through a
    side set of resident prefetched pages: a demand hit on one counts
    as a useful prefetch, eviction before use does not.
    """
    pages = np.asarray(pages)
    is_write = np.asarray(is_write)
    if pages.shape != is_write.shape:
        raise ValueError("pages and is_write must have the same shape")
    if scores is None:
        scores = np.zeros(pages.shape[0], dtype=np.float64)
    else:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != pages.shape:
            raise ValueError("scores and pages must have the same shape")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    measure_from = int(pages.shape[0] * warmup_fraction)

    stats = CacheStats()
    prefetch_stats = PrefetchStats()
    pending_prefetched: set[int] = set()

    def install(page: int, access_index: int, score: float) -> None:
        set_index, way = cache.lookup(page)
        if way is not None:
            return
        victim = cache.find_invalid_way(set_index)
        if victim is None:
            victim = policy.select_victim(cache, set_index, access_index)
            if access_index >= measure_from:
                stats.evictions += 1
                if cache.dirty[set_index][victim]:
                    stats.dirty_evictions += 1
            evicted = cache.tags[set_index][victim]
            pending_prefetched.discard(evicted)
        cache.fill(
            set_index,
            victim,
            page,
            False,
            policy.fill_meta(page, score, access_index),
            float(access_index),
        )

    for access_index in range(pages.shape[0]):
        page = int(pages[access_index])
        write = bool(is_write[access_index])
        score = float(scores[access_index])
        measured = access_index >= measure_from
        set_index, way = cache.lookup(page)

        if way is not None:
            policy.on_hit(cache, set_index, way, access_index, score)
            if write:
                cache.dirty[set_index][way] = True
            if measured:
                stats.hits += 1
                if write:
                    stats.write_hits += 1
            if page in pending_prefetched:
                pending_prefetched.discard(page)
                prefetch_stats.useful += 1
            continue

        if measured:
            stats.misses += 1
            if write:
                stats.write_misses += 1
        pending_prefetched.discard(page)
        to_prefetch = prefetcher.observe_miss(page)
        if policy.admit(page, score, write, access_index):
            if measured:
                stats.fills += 1
            victim = cache.find_invalid_way(set_index)
            if victim is None:
                victim = policy.select_victim(
                    cache, set_index, access_index
                )
                if measured:
                    stats.evictions += 1
                    if cache.dirty[set_index][victim]:
                        stats.dirty_evictions += 1
                evicted = cache.tags[set_index][victim]
                pending_prefetched.discard(evicted)
            cache.fill(
                set_index,
                victim,
                page,
                write,
                policy.fill_meta(page, score, access_index),
                float(access_index),
            )
        elif measured:
            stats.bypasses += 1
            if write:
                stats.bypassed_writes += 1
        for target in to_prefetch:
            _, existing = cache.lookup(target)
            if existing is None:
                install(target, access_index, score)
                pending_prefetched.add(target)
                prefetch_stats.issued += 1
    return stats, prefetch_stats


#: Adaptive scan-window bounds of the prefetch fast path: the window
#: doubles after an all-hit scan and halves after a miss, so hit-heavy
#: traffic amortises one vector compare over tens of thousands of
#: accesses while miss-heavy traffic pays at most a small window per
#: miss.
_MIN_WINDOW = 64
_MAX_WINDOW = 65536


def _hit_span(
    cache: SetAssociativeCache,
    kernel: PolicyKernel,
    stats: CacheStats,
    pages: np.ndarray,
    sets: np.ndarray,
    ways: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray,
    base_index: int,
    measure_from: int,
    pending: set[int],
    prefetch_stats: PrefetchStats,
) -> None:
    """Vectorized processing of a run of consecutive demand hits.

    Hits never change the tag plane, so the span's (set, way) pairs
    -- resolved against the tags *before* the span -- stay valid
    throughout it; only the policy's hit updates are order-sensitive,
    and only within one set.  Those run through the kernel in per-set
    occurrence-rank rounds (the same decomposition the chunked
    simulator uses), which preserves the exact per-set hit order.
    """
    m = pages.shape[0]
    idx = np.arange(base_index, base_index + m)
    if base_index >= measure_from:
        stats.hits += m
        stats.write_hits += int(np.count_nonzero(is_write))
    elif base_index + m > measure_from:
        measured = idx >= measure_from
        stats.hits += int(np.count_nonzero(measured))
        stats.write_hits += int(np.count_nonzero(measured & is_write))
    if is_write.any():
        cache.dirty[sets[is_write], ways[is_write]] = True

    # Per-set rank rounds: round r holds the r-th hit of every set.
    order = np.argsort(sets, kind="stable")
    sorted_sets = sets[order]
    new_group = np.empty(m, dtype=bool)
    new_group[0] = True
    new_group[1:] = sorted_sets[1:] != sorted_sets[:-1]
    group_starts = np.nonzero(new_group)[0]
    group_sizes = np.diff(np.append(group_starts, m))
    rank = np.arange(m) - np.repeat(group_starts, group_sizes)
    max_rank = int(group_sizes.max())
    if max_rank == 1:
        kernel.on_hits(sets, ways, idx, scores)
    else:
        by_rank = order[np.argsort(rank, kind="stable")]
        bounds = np.concatenate(
            ([0], np.cumsum(np.bincount(rank, minlength=max_rank)))
        )
        for r in range(max_rank):
            sel = by_rank[bounds[r] : bounds[r + 1]]
            kernel.on_hits(
                sets[sel], ways[sel], idx[sel], scores[sel]
            )

    if pending:
        for page in np.unique(pages).tolist():
            if page in pending:
                pending.discard(page)
                prefetch_stats.useful += 1


def simulate_with_prefetch_fast(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    prefetcher: StridePrefetcher,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
) -> tuple[CacheStats, PrefetchStats]:
    """Vectorized drop-in replacement for
    :func:`simulate_with_prefetch`.

    Same signature, same semantics, bit-identical counters, prefetch
    stats and final cache state.  The prefetcher's stream table
    observes demand misses in *global* access order, so the chunked
    set-reordering of :func:`~repro.cache.simulate_fast.simulate_fast`
    cannot apply; instead the stream is scanned with an adaptive
    window: one gather-and-compare against the tag plane finds the
    next demand miss, the hit run before it is processed with whole-
    array operations (policy updates through the registered kernel in
    per-set rank rounds), and the miss itself -- admission, victim
    choice, fill, prefetch installs -- runs access-at-a-time through
    the same kernel, preserving the exact miss order the prefetcher
    and the policy state depend on.

    Policies without a registered vector kernel fall back to the
    scalar reference transparently.
    """
    pages = np.asarray(pages)
    is_write = np.asarray(is_write)
    if pages.shape != is_write.shape:
        raise ValueError("pages and is_write must have the same shape")
    if scores is None:
        scores = np.zeros(pages.shape[0], dtype=np.float64)
    else:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != pages.shape:
            raise ValueError("scores and pages must have the same shape")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    kernel = kernel_for(policy, cache)
    if kernel is None:
        return simulate_with_prefetch(
            cache,
            policy,
            prefetcher,
            pages,
            is_write,
            scores=scores,
            warmup_fraction=warmup_fraction,
        )
    pages = pages.astype(np.int64, copy=False)
    is_write = is_write.astype(bool, copy=False)
    n = pages.shape[0]
    measure_from = int(n * warmup_fraction)
    n_sets = cache.geometry.n_sets
    stats = CacheStats()
    prefetch_stats = PrefetchStats()
    pending: set[int] = set()

    def fill_via_kernel(
        page: int,
        set_index: int,
        write: bool,
        score: float,
        access_index: int,
        measured: bool,
    ) -> None:
        """Victim choice + fill through the kernel's vector hooks
        (single-element calls keep kernel-side mirrors like CLOCK
        hands authoritative -- no per-miss flush/reload)."""
        victim = cache.find_invalid_way(set_index)
        if victim is None:
            victim = int(
                kernel.select_victims(
                    np.array([set_index], dtype=np.int64),
                    np.array([access_index], dtype=np.int64),
                )[0]
            )
            if measured:
                stats.evictions += 1
                if cache.dirty[set_index][victim]:
                    stats.dirty_evictions += 1
            pending.discard(int(cache.tags[set_index][victim]))
        meta = float(
            kernel.fill_meta(
                np.array([page], dtype=np.int64),
                np.array([score], dtype=np.float64),
                np.array([access_index], dtype=np.int64),
            )[0]
        )
        cache.fill(
            set_index, victim, page, write, meta, float(access_index)
        )

    pos = 0
    window = _MIN_WINDOW
    while pos < n:
        hi = min(pos + window, n)
        w_pages = pages[pos:hi]
        w_sets = w_pages % n_sets
        match = cache.tags[w_sets] == w_pages[:, None]
        hit = match.any(axis=1)
        span = int(hit.shape[0]) if hit.all() else int(np.argmin(hit))
        if span:
            _hit_span(
                cache,
                kernel,
                stats,
                w_pages[:span],
                w_sets[:span],
                match[:span].argmax(axis=1),
                is_write[pos : pos + span],
                scores[pos : pos + span],
                pos,
                measure_from,
                pending,
                prefetch_stats,
            )
        miss_at = pos + span
        if miss_at >= hi:
            pos = hi
            window = min(_MAX_WINDOW, window * 2)
            continue

        # The demand miss, in exact global order (mirrors the scalar
        # reference step for step).
        page = int(pages[miss_at])
        write = bool(is_write[miss_at])
        score = float(scores[miss_at])
        measured = miss_at >= measure_from
        set_index = page % n_sets
        if measured:
            stats.misses += 1
            if write:
                stats.write_misses += 1
        pending.discard(page)
        to_prefetch = prefetcher.observe_miss(page)
        admitted = kernel.admits_all or bool(
            kernel.admit(
                np.array([page], dtype=np.int64),
                np.array([score], dtype=np.float64),
                np.array([write]),
                np.array([miss_at], dtype=np.int64),
            )[0]
        )
        if admitted:
            if measured:
                stats.fills += 1
            fill_via_kernel(
                page, set_index, write, score, miss_at, measured
            )
        elif measured:
            stats.bypasses += 1
            if write:
                stats.bypassed_writes += 1
        for target in to_prefetch:
            _, existing = cache.lookup(target)
            if existing is None:
                fill_via_kernel(
                    target, target % n_sets, False, score,
                    miss_at, measured,
                )
                pending.add(target)
                prefetch_stats.issued += 1
        pos = miss_at + 1
        window = max(_MIN_WINDOW, window // 2)

    kernel.finalize()
    return stats, prefetch_stats

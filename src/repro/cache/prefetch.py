"""Sequential stride prefetching for the DRAM cache.

An orthogonal extension the paper leaves open: the stream-style
workloads miss on *predictable* sequential sweeps, which a classic
next-page prefetcher converts into hits.  The detector keeps a small
table of recent miss addresses; ``degree`` consecutive-page misses
within a table entry arm it, and every subsequent sequential miss
prefetches the next ``distance`` pages into the cache (as clean
blocks, via the normal replacement policy).

Prefetch fills are tracked separately in :class:`PrefetchStats` so the
accuracy/coverage trade-off is visible: on random traffic a prefetcher
only pollutes, on stream it removes the sequential misses the GMM can
only pin fractionally.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats


@dataclass
class PrefetchStats:
    """Prefetcher-side counters.

    Attributes
    ----------
    issued:
        Pages prefetched into the cache.
    useful:
        Prefetched pages that were demand-hit before eviction.
    """

    issued: int = 0
    useful: int = 0

    @property
    def accuracy(self) -> float:
        """Useful prefetches over issued (0 when none issued)."""
        if self.issued == 0:
            return 0.0
        return self.useful / self.issued


class StridePrefetcher:
    """Sequential-miss detector with configurable depth.

    Parameters
    ----------
    degree:
        Consecutive-page misses required to arm a stream.
    distance:
        Pages fetched ahead once armed.
    table_size:
        Concurrent streams tracked (LRU replacement on the table).
    """

    def __init__(
        self, degree: int = 2, distance: int = 4, table_size: int = 8
    ) -> None:
        if degree < 1 or distance < 1 or table_size < 1:
            raise ValueError("degree, distance, table_size must be >= 1")
        self.degree = degree
        self.distance = distance
        self.table_size = table_size
        # stream id -> (next expected page, run length, last use tick)
        self._table: dict[int, tuple[int, int, int]] = {}
        self._tick = 0

    def observe_miss(self, page: int) -> list[int]:
        """Record a demand miss; returns pages to prefetch."""
        self._tick += 1
        for stream_id, (expected, run, _) in list(self._table.items()):
            if page == expected:
                run += 1
                self._table[stream_id] = (page + 1, run, self._tick)
                if run >= self.degree:
                    return [
                        page + offset
                        for offset in range(1, self.distance + 1)
                    ]
                return []
        # New stream; evict the stalest entry if the table is full.
        if len(self._table) >= self.table_size:
            stalest = min(
                self._table, key=lambda k: self._table[k][2]
            )
            del self._table[stalest]
        self._table[page] = (page + 1, 1, self._tick)
        return []


def simulate_with_prefetch(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    prefetcher: StridePrefetcher,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
) -> tuple[CacheStats, PrefetchStats]:
    """Trace-driven simulation with demand-miss-triggered prefetch.

    Mirrors :func:`repro.cache.setassoc.simulate` with one addition:
    each demand miss consults the prefetcher and installs the returned
    pages as clean blocks (respecting the replacement policy's victim
    choice; prefetches never bypass).  Usefulness is tracked through a
    side set of resident prefetched pages: a demand hit on one counts
    as a useful prefetch, eviction before use does not.
    """
    pages = np.asarray(pages)
    is_write = np.asarray(is_write)
    if pages.shape != is_write.shape:
        raise ValueError("pages and is_write must have the same shape")
    if scores is None:
        scores = np.zeros(pages.shape[0], dtype=np.float64)
    else:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != pages.shape:
            raise ValueError("scores and pages must have the same shape")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    measure_from = int(pages.shape[0] * warmup_fraction)

    stats = CacheStats()
    prefetch_stats = PrefetchStats()
    pending_prefetched: set[int] = set()

    def install(page: int, access_index: int, score: float) -> None:
        set_index, way = cache.lookup(page)
        if way is not None:
            return
        victim = cache.find_invalid_way(set_index)
        if victim is None:
            victim = policy.select_victim(cache, set_index, access_index)
            if access_index >= measure_from:
                stats.evictions += 1
                if cache.dirty[set_index][victim]:
                    stats.dirty_evictions += 1
            evicted = cache.tags[set_index][victim]
            pending_prefetched.discard(evicted)
        cache.fill(
            set_index,
            victim,
            page,
            False,
            policy.fill_meta(page, score, access_index),
            float(access_index),
        )

    for access_index in range(pages.shape[0]):
        page = int(pages[access_index])
        write = bool(is_write[access_index])
        score = float(scores[access_index])
        measured = access_index >= measure_from
        set_index, way = cache.lookup(page)

        if way is not None:
            policy.on_hit(cache, set_index, way, access_index, score)
            if write:
                cache.dirty[set_index][way] = True
            if measured:
                stats.hits += 1
                if write:
                    stats.write_hits += 1
            if page in pending_prefetched:
                pending_prefetched.discard(page)
                prefetch_stats.useful += 1
            continue

        if measured:
            stats.misses += 1
            if write:
                stats.write_misses += 1
        pending_prefetched.discard(page)
        to_prefetch = prefetcher.observe_miss(page)
        if policy.admit(page, score, write, access_index):
            if measured:
                stats.fills += 1
            victim = cache.find_invalid_way(set_index)
            if victim is None:
                victim = policy.select_victim(
                    cache, set_index, access_index
                )
                if measured:
                    stats.evictions += 1
                    if cache.dirty[set_index][victim]:
                        stats.dirty_evictions += 1
                evicted = cache.tags[set_index][victim]
                pending_prefetched.discard(evicted)
            cache.fill(
                set_index,
                victim,
                page,
                write,
                policy.fill_meta(page, score, access_index),
                float(access_index),
            )
        elif measured:
            stats.bypasses += 1
            if write:
                stats.bypassed_writes += 1
        for target in to_prefetch:
            _, existing = cache.lookup(target)
            if existing is None:
                install(target, access_index, score)
                pending_prefetched.add(target)
                prefetch_stats.issued += 1
    return stats, prefetch_stats

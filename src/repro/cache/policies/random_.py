"""Random replacement."""

from __future__ import annotations

import numpy as np

from repro.cache.policies.base import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way.

    Random replacement is immune to LRU's pathological looping
    patterns, which makes it a useful reference point in the policy
    ablation (it bounds how much of the GMM's win comes merely from
    *not being recency-based*).
    """

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select_victim(self, cache, set_index, access_index):
        """Evict a random way."""
        return int(self._rng.integers(cache.geometry.associativity))

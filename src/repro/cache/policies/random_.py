"""Random replacement.

Two variants:

* :class:`RandomPolicy` draws from a *sequential* RNG stream.  Its
  draw order cannot survive the fast engine's chunk reordering, so it
  always runs on the scalar reference path (bit-exactness beats
  throughput for a baseline).
* :class:`CounterRandomPolicy` derives each victim from a
  *counter-based* RNG keyed by the access index (a SplitMix64 hash),
  like the Philox/Threefry family used by GPU samplers.  The draw is a
  pure function of ``(seed, access_index)``, so any processing order
  gives the same victims -- which is exactly what lets it vectorize
  (see ``CounterRandomKernel`` in
  :mod:`repro.cache.policies.kernels`).
"""

from __future__ import annotations

import numpy as np

from repro.cache.policies.base import ReplacementPolicy

_MASK64 = (1 << 64) - 1
#: SplitMix64 constants (Steele et al., the JDK splittable RNG).
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def splitmix64(value: int) -> int:
    """Scalar SplitMix64 finalizer over a 64-bit counter.

    The executable specification for the vectorized
    :func:`splitmix64_array`; plain Python ints emulate the wrapping
    64-bit arithmetic with explicit masking.
    """
    z = (value + _GAMMA) & _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def splitmix64_array(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 over a ``uint64`` counter array.

    numpy's unsigned arithmetic wraps exactly like the masked scalar
    reference; parity is asserted by the test suite.
    """
    z = values.astype(np.uint64) + np.uint64(_GAMMA)
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_MIX1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_MIX2)
    return z ^ (z >> np.uint64(31))


class RandomPolicy(ReplacementPolicy):
    """Evict a uniformly random way.

    Random replacement is immune to LRU's pathological looping
    patterns, which makes it a useful reference point in the policy
    ablation (it bounds how much of the GMM's win comes merely from
    *not being recency-based*).
    """

    name = "random"

    def __init__(self, rng: np.random.Generator | None = None) -> None:
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def select_victim(self, cache, set_index, access_index):
        """Evict a random way."""
        return int(self._rng.integers(cache.geometry.associativity))


class CounterRandomPolicy(ReplacementPolicy):
    """Random replacement with a counter-based (stateless) RNG.

    The victim for access ``i`` is ``splitmix64(seed_mix + i) % ways``
    -- statistically uniform like :class:`RandomPolicy`, but a pure
    function of the access index, so the vectorized engine computes
    whole rounds of victims with a handful of ``uint64`` operations
    and any processing order agrees with the scalar reference.

    Parameters
    ----------
    seed:
        Stream selector; pre-mixed through SplitMix64 so nearby seeds
        produce decorrelated victim streams.
    """

    name = "counter-random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._seed_mix = splitmix64(self.seed & _MASK64)

    def victim_for(self, access_index: int, ways: int) -> int:
        """The policy's pure draw (shared with the vector kernel)."""
        draw = splitmix64((self._seed_mix + access_index) & _MASK64)
        return int(draw % ways)

    def select_victim(self, cache, set_index, access_index):
        """Evict the way drawn for this access index."""
        return self.victim_for(
            access_index, cache.geometry.associativity
        )

"""Belady's optimal replacement (offline oracle)."""

from __future__ import annotations

import numpy as np

from repro.cache.policies.base import ReplacementPolicy, argmax_way

#: Next-use value for pages never accessed again.
NEVER = float(np.iinfo(np.int64).max)


def compute_next_use(pages: np.ndarray) -> np.ndarray:
    """For each position, the index of the next access to that page.

    Positions whose page never recurs get :data:`NEVER`.  Computed in
    one backward pass.
    """
    pages = np.asarray(pages)
    next_use = np.full(pages.shape[0], NEVER, dtype=np.float64)
    last_seen: dict[int, int] = {}
    for index in range(pages.shape[0] - 1, -1, -1):
        page = int(pages[index])
        if page in last_seen:
            next_use[index] = float(last_seen[page])
        last_seen[page] = index
    return next_use


class BeladyPolicy(ReplacementPolicy):
    """MIN/OPT: evict the block reused farthest in the future.

    An offline oracle -- it reads the entire future of the request
    stream -- so it cannot be built in hardware; the repository uses
    it to upper-bound how much *any* eviction policy (GMM included)
    could possibly gain over LRU on a given trace.

    Parameters
    ----------
    pages:
        The complete page stream the simulation will run; next-use
        distances are precomputed from it.
    """

    name = "belady"

    def __init__(self, pages: np.ndarray) -> None:
        self._next_use = compute_next_use(pages)

    def on_hit(self, cache, set_index, way, access_index, score):
        """Refresh the block's next-use distance from the oracle."""
        cache.stamp[set_index][way] = float(access_index)
        cache.meta[set_index][way] = self._next_use[access_index]

    def fill_meta(self, page, score, access_index):
        """Store the filling access's next-use distance."""
        return self._next_use[access_index]

    def select_victim(self, cache, set_index, access_index):
        """Evict the way whose next use lies farthest ahead."""
        return argmax_way(cache.meta[set_index])

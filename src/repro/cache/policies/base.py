"""Replacement/admission policy interface.

The simulator (:func:`repro.cache.setassoc.simulate`) consults the
policy at three points, mirroring the hardware engine's hooks:

* ``on_hit`` -- a request hit; the policy may refresh its metadata.
* ``admit`` -- a request missed; should the page be cached at all?
  (The paper's *smart caching* decision, Sec. 3.2.)
* ``select_victim`` -- the target set is full; which way is replaced?
  (The paper's *smart eviction* decision.)

Policies store per-block state in the cache's two float planes:
``cache.meta`` (policy-defined meaning) and ``cache.stamp`` (written
with the fill time by the simulator, updatable on hits).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.setassoc import SetAssociativeCache


def argmin_way(values: list[float]) -> int:
    """Index of the smallest value (first one on ties)."""
    return min(range(len(values)), key=values.__getitem__)


def argmax_way(values: list[float]) -> int:
    """Index of the largest value (first one on ties)."""
    return max(range(len(values)), key=values.__getitem__)


class ReplacementPolicy(ABC):
    """Base class for cache policies."""

    #: Human-readable policy name used in result tables.
    name: str = "base"

    def on_hit(
        self,
        cache: "SetAssociativeCache",
        set_index: int,
        way: int,
        access_index: int,
        score: float,
    ) -> None:
        """Hook invoked on a cache hit; default refreshes recency."""
        cache.stamp[set_index][way] = float(access_index)

    def admit(
        self, page: int, score: float, is_write: bool, access_index: int
    ) -> bool:
        """Admission decision on a miss; default admits everything."""
        return True

    def fill_meta(
        self, page: int, score: float, access_index: int
    ) -> float:
        """Metadata value stored with a newly filled block."""
        return 0.0

    @abstractmethod
    def select_victim(
        self,
        cache: "SetAssociativeCache",
        set_index: int,
        access_index: int,
    ) -> int:
        """Way to replace in a full set."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"

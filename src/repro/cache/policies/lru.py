"""Least Recently Used -- the paper's baseline policy."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class LruPolicy(ReplacementPolicy):
    """Classic LRU.

    Recency is the fill/last-hit stamp maintained by the simulator;
    the victim is the way with the oldest stamp.  This is the baseline
    against which Fig. 6 and Table 1 measure the GMM policies, and the
    fallback the hardware runs when the policy engine is disabled
    (Sec. 4.1).
    """

    name = "lru"

    def select_victim(self, cache, set_index, access_index):
        """Evict the least recently used way."""
        return argmin_way(cache.stamp[set_index])

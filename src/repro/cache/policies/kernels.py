"""Vectorized policy kernels for the chunked fast simulator.

Each :class:`ReplacementPolicy` subclass that can express its update
rule as array operations registers a :class:`PolicyKernel` here.  A
kernel receives whole *rounds* of accesses at once -- the fast engine
guarantees every cache set appears at most once per round -- so
per-set logic (LFU decay, SLRU promotion, CLOCK hand sweeps) stays
bit-identical to the scalar hooks in the policy classes while running
as a handful of numpy operations per round.

Contract (mirrors the scalar hooks in
:mod:`repro.cache.policies.base`):

* ``on_hits``        <-> ``ReplacementPolicy.on_hit``
* ``admit``          <-> ``ReplacementPolicy.admit``
* ``fill_meta``      <-> ``ReplacementPolicy.fill_meta``
* ``select_victims`` <-> ``ReplacementPolicy.select_victim``

Every vectorized method must make exactly the decisions (including
tie-breaking: *first* way on ties, matching ``argmin_way``) and
exactly the metadata writes of its scalar counterpart.  The parity
suite in ``tests/cache/test_simulate_fast_parity.py`` enforces this
differentially for every registered kernel.

:class:`repro.cache.policies.random_.RandomPolicy` is deliberately
*not* registered: its victim draws consume a sequential RNG stream
whose order the chunk-reordering engine cannot preserve, so the fast
path falls back to the scalar reference for it (bit-exactness beats
throughput for a baseline policy).  Its counter-based sibling
:class:`~repro.cache.policies.random_.CounterRandomPolicy` closes
that gap: each victim is a pure hash of the access index, so
:class:`CounterRandomKernel` evaluates whole rounds order-free.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.belady import BeladyPolicy
from repro.cache.policies.clock import ClockPolicy
from repro.cache.policies.fifo import FifoPolicy
from repro.cache.policies.gmm_policy import ScoreBasedPolicy
from repro.cache.policies.lfu import LfuPolicy
from repro.cache.policies.lru import LruPolicy
from repro.cache.policies.random_ import (
    CounterRandomPolicy,
    splitmix64_array,
)
from repro.cache.policies.slru import SlruPolicy
from repro.cache.policies.twoq import TwoQPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cache.setassoc import SetAssociativeCache


class PolicyKernel:
    """Vectorized update rules for one policy instance.

    Subclasses override the hooks they need; the defaults implement
    the :class:`ReplacementPolicy` base behaviour (recency refresh on
    hits, admit everything, zero fill metadata).

    All index arrays are absolute: ``sets`` are set indices, ``ways``
    way indices, ``idx`` access indices into the full trace.  The
    engine guarantees ``sets`` contains no duplicates within one call.
    """

    #: When True the engine skips the ``admit`` call entirely (no
    #: bypass accounting needed); kernels with a real admission rule
    #: clear it.
    admits_all = True

    #: When True, ``admit`` is a pure per-access function (its answer
    #: depends only on the call's arguments, never on accumulated
    #: state), so the run-length batching engine may pre-resolve
    #: admission for the followers of a collapsed run.  Kernels with
    #: a stateful admission rule must clear it.
    pure_admission = True

    #: When True, ``k`` consecutive hits on one resident block can be
    #: reproduced by the single closed-form update ``on_hit_runs``;
    #: kernels (or instances) whose per-hit update cannot be composed
    #: exactly -- e.g. decaying LFU, whose repeated float multiplies
    #: are not associative bit for bit -- clear it, and the engine
    #: falls back to one round per access for them.
    supports_hit_runs = True

    #: When True, the engine may collapse a contiguous same-set span
    #: of *distinct-page* hits into per-way ``on_hit_runs`` updates
    #: whose hit indices are **not consecutive** (hits on the span's
    #: other ways interleave).  That is sound exactly when a hit's
    #: update is *order-commutative across ways*: it touches only its
    #: own way's metadata (or is idempotent) and composes from the
    #: (first, last, count) summary alone.  LRU / FIFO / CLOCK / 2Q /
    #: score / Belady / counter-random qualify; SLRU does **not**
    #: (a promotion can demote a *different* way, so hit order within
    #: the set matters), nor does decaying LFU (each hit rescales the
    #: whole set row).  Deliberately False on the base class: a new
    #: kernel must opt in after checking its cross-way semantics.
    supports_set_runs = False

    def __init__(
        self, policy: ReplacementPolicy, cache: "SetAssociativeCache"
    ) -> None:
        self.policy = policy
        self.cache = cache

    def supports(self) -> bool:
        """Whether this policy instance can run vectorized."""
        return True

    def on_hits(
        self,
        sets: np.ndarray,
        ways: np.ndarray,
        idx: np.ndarray,
        scores: np.ndarray,
    ) -> None:
        """Vectorized ``on_hit``: default refreshes recency."""
        self.cache.stamp[sets, ways] = idx.astype(np.float64)

    def on_hit_runs(
        self,
        sets: np.ndarray,
        ways: np.ndarray,
        first_idx: np.ndarray,
        last_idx: np.ndarray,
        counts: np.ndarray,
        first_scores: np.ndarray,
        last_scores: np.ndarray,
    ) -> None:
        """Collapsed update for ``counts`` consecutive hits per row.

        Contract: bit-identical to ``counts[i]`` sequential
        ``on_hit`` calls on row ``i``'s block at the consecutive
        access indices ``first_idx[i] .. last_idx[i]``.  Only the
        first and last index/score and the count are available --
        the run-length engine guarantees the intermediate accesses
        hit the same block, and a kernel whose update depends on
        their individual values must clear ``supports_hit_runs``
        instead of overriding this.

        Kernels that additionally declare ``supports_set_runs`` are
        called with a weaker guarantee: the ``counts[i]`` hits all
        land on row ``i``'s block between ``first_idx[i]`` and
        ``last_idx[i]``, but hits on *other ways of the same set*
        may interleave (the indices are increasing, not
        consecutive).  Every registered set-run kernel's composite
        depends only on the summary arguments, so the same
        implementation serves both contracts.

        Default (recency refresh): the last hit's stamp wins.
        """
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)

    def admit(
        self,
        pages: np.ndarray,
        scores: np.ndarray,
        is_write: np.ndarray,
        idx: np.ndarray,
    ) -> np.ndarray:
        """Vectorized ``admit``: default admits everything."""
        return np.ones(pages.shape[0], dtype=bool)

    def fill_meta(
        self, pages: np.ndarray, scores: np.ndarray, idx: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``fill_meta``: default stores zeros."""
        return np.zeros(pages.shape[0], dtype=np.float64)

    def select_victims(
        self, sets: np.ndarray, idx: np.ndarray
    ) -> np.ndarray:
        """Vectorized ``select_victim`` for full sets."""
        raise NotImplementedError

    def flush(self) -> None:
        """Write kernel-side mirrors of policy state back into the
        policy object.  The engine calls this before handing a span
        to the scalar fallback (which drives the policy's own hooks)
        and once at the end of the run."""

    def reload(self) -> None:
        """Refresh kernel-side mirrors from the policy object after a
        scalar-fallback span may have mutated it."""

    def finalize(self) -> None:
        """End-of-run hook; default flushes mirrored state."""
        self.flush()


#: Registry: policy class -> kernel class.
KERNELS: dict[type[ReplacementPolicy], type[PolicyKernel]] = {}

#: The scalar hooks a kernel replaces; a subclass overriding any of
#: them relative to its registered base gets no kernel (safety net).
_HOOKS = ("on_hit", "admit", "fill_meta", "select_victim")


def register_kernel(policy_cls: type[ReplacementPolicy]):
    """Class decorator registering a kernel for ``policy_cls``."""

    def decorate(kernel_cls: type[PolicyKernel]) -> type[PolicyKernel]:
        KERNELS[policy_cls] = kernel_cls
        return kernel_cls

    return decorate


def kernel_for(
    policy: ReplacementPolicy, cache: "SetAssociativeCache"
) -> PolicyKernel | None:
    """Kernel instance for ``policy``, or None when it must run scalar.

    Walks the policy's MRO for the most specific registered class;
    then verifies the concrete policy class does not override any
    scalar hook *below* that registration (a subclass with custom
    scalar behaviour silently falls back to the exact reference loop
    instead of running a kernel that no longer matches it).
    """
    registered: type[ReplacementPolicy] | None = None
    for cls in type(policy).__mro__:
        if cls in KERNELS:
            registered = cls
            break
    if registered is None:
        return None
    for hook in _HOOKS:
        if getattr(type(policy), hook) is not getattr(registered, hook):
            return None
    kernel = KERNELS[registered](policy, cache)
    if not kernel.supports():
        return None
    return kernel


def _argmin_rows(values: np.ndarray) -> np.ndarray:
    """Row-wise argmin, first index on ties (matches ``argmin_way``)."""
    return values.argmin(axis=1)


def _argmax_rows(values: np.ndarray) -> np.ndarray:
    """Row-wise argmax, first index on ties (matches ``argmax_way``)."""
    return values.argmax(axis=1)


@register_kernel(LruPolicy)
class LruKernel(PolicyKernel):
    """LRU: base recency refresh, evict the oldest stamp."""

    supports_set_runs = True

    def select_victims(self, sets, idx):
        return _argmin_rows(self.cache.stamp[sets])


@register_kernel(FifoPolicy)
class FifoKernel(PolicyKernel):
    """FIFO: hits do not refresh; evict the earliest fill."""

    supports_set_runs = True

    def on_hits(self, sets, ways, idx, scores):
        pass

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        pass

    def select_victims(self, sets, idx):
        return _argmin_rows(self.cache.stamp[sets])


@register_kernel(LfuPolicy)
class LfuKernel(PolicyKernel):
    """LFU: count hits in ``meta`` (with optional per-set decay)."""

    def __init__(self, policy, cache):
        super().__init__(policy, cache)
        # With decay, k sequential (meta * d) multiplies are not the
        # same float64 value as meta * d**k -- no exact closed form;
        # worse, each decayed hit rescales the *whole* set row, so
        # hit order across ways matters too (no set-run collapse).
        self.supports_hit_runs = policy.decay == 1.0
        self.supports_set_runs = policy.decay == 1.0

    def on_hits(self, sets, ways, idx, scores):
        cache = self.cache
        cache.stamp[sets, ways] = idx.astype(np.float64)
        decay = self.policy.decay
        if decay < 1.0:
            # Sets are unique within a round, so one row-scale per
            # set matches the scalar per-hit decay loop exactly.
            cache.meta[sets] *= decay
        cache.meta[sets, ways] += 1.0

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # Only reached when decay == 1.0: counters stay small
        # integers in float64, so += count is exact.
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)
        self.cache.meta[sets, ways] += counts.astype(np.float64)

    def fill_meta(self, pages, scores, idx):
        return np.ones(pages.shape[0], dtype=np.float64)

    def select_victims(self, sets, idx):
        return _argmin_rows(self.cache.meta[sets])


@register_kernel(ClockPolicy)
class ClockKernel(PolicyKernel):
    """CLOCK: reference bits in ``meta``, per-set hands as an array.

    The scalar hand sweep (clear bits until the first zero; victim is
    that way; a full sweep of ones clears the whole set and evicts the
    hand position) is replayed with one rotation per round.  Hands are
    mirrored into a dense array for vector gather/scatter and written
    back to the policy's sparse dict in :meth:`finalize`.

    Set-run safe: a hit only sets its own way's reference bit
    (idempotent) and the hand moves only at evictions, which the
    set-run engine resolves sequentially.
    """

    supports_set_runs = True

    def __init__(self, policy, cache):
        super().__init__(policy, cache)
        n_sets = cache.geometry.n_sets
        self._hands = np.zeros(n_sets, dtype=np.int64)
        self._touched = np.zeros(n_sets, dtype=bool)
        self.reload()

    def on_hits(self, sets, ways, idx, scores):
        self.cache.stamp[sets, ways] = idx.astype(np.float64)
        self.cache.meta[sets, ways] = 1.0

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # Setting the reference bit is idempotent; the hand moves
        # only on evictions, so k hits collapse to the last stamp.
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)
        self.cache.meta[sets, ways] = 1.0

    def fill_meta(self, pages, scores, idx):
        return np.ones(pages.shape[0], dtype=np.float64)

    def select_victims(self, sets, idx):
        cache = self.cache
        ways = cache.geometry.associativity
        rows = cache.meta[sets]  # (m, W) copy
        hands = self._hands[sets]
        offsets = np.arange(ways, dtype=np.int64)
        rot_cols = (hands[:, None] + offsets[None, :]) % ways
        rot = np.take_along_axis(rows, rot_cols, axis=1)
        is_zero = rot == 0.0
        has_zero = is_zero.any(axis=1)
        first_zero = is_zero.argmax(axis=1)
        # No zero bit: the sweep clears every way and evicts the hand.
        victim_offset = np.where(has_zero, first_zero, 0)
        clear_count = np.where(has_zero, first_zero, ways)
        clear_mask = offsets[None, :] < clear_count[:, None]
        row_index = np.broadcast_to(sets[:, None], rot_cols.shape)
        cache.meta[row_index[clear_mask], rot_cols[clear_mask]] = 0.0
        victims = (hands + victim_offset) % ways
        self._hands[sets] = (victims + 1) % ways
        self._touched[sets] = True
        return victims

    def flush(self):
        for set_index in np.nonzero(self._touched)[0]:
            self.policy._hands[int(set_index)] = int(
                self._hands[set_index]
            )

    def reload(self):
        for set_index, hand in self.policy._hands.items():
            self._hands[set_index] = hand
            self._touched[set_index] = True


@register_kernel(CounterRandomPolicy)
class CounterRandomKernel(PolicyKernel):
    """Counter-based random: victims are pure hashes of access indices.

    Vectorizes :meth:`CounterRandomPolicy.victim_for` -- the SplitMix64
    draw keyed by ``(seed, access_index)`` -- as whole-array ``uint64``
    arithmetic.  Because the draw ignores every other access, chunk
    reordering is invisible and parity with the scalar reference is
    exact (unlike the sequential-stream ``RandomPolicy``).

    Set-run safe: hits take the base recency refresh (own-way stamp
    only) and victim draws are pure functions of the access index.
    """

    supports_set_runs = True

    def select_victims(self, sets, idx):
        draws = splitmix64_array(
            idx.astype(np.uint64)
            + np.uint64(self.policy._seed_mix)
        )
        ways = np.uint64(self.cache.geometry.associativity)
        return (draws % ways).astype(np.int64)


@register_kernel(SlruPolicy)
class SlruKernel(PolicyKernel):
    """SLRU: probation/protected segments in ``meta``."""

    def on_hits(self, sets, ways, idx, scores):
        cache = self.cache
        cache.stamp[sets, ways] = idx.astype(np.float64)
        n_ways = cache.geometry.associativity
        cap = self.policy._protected_cap(n_ways)
        if cap == 0:
            return
        promote = cache.meta[sets, ways] != 1.0
        if not promote.any():
            return
        p_sets = sets[promote]
        p_ways = ways[promote]
        meta_rows = cache.meta[p_sets]  # (m, W)
        protected = meta_rows == 1.0
        over_cap = protected.sum(axis=1) >= cap
        if over_cap.any():
            # Demote the LRU protected block of each over-cap set.
            stamp_rows = cache.stamp[p_sets[over_cap]]
            masked = np.where(protected[over_cap], stamp_rows, np.inf)
            demoted = _argmin_rows(masked)
            cache.meta[p_sets[over_cap], demoted] = 0.0
        cache.meta[p_sets, p_ways] = 1.0

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # Only the run's first hit can promote (afterwards the block
        # is protected and later hits return early), so the composite
        # is "first hit's full update, then the last stamp".
        self.on_hits(sets, ways, first_idx, first_scores)
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)

    def select_victims(self, sets, idx):
        cache = self.cache
        meta_rows = cache.meta[sets]
        stamp_rows = cache.stamp[sets]
        probation = meta_rows == 0.0
        has_probation = probation.any(axis=1)
        masked = np.where(probation, stamp_rows, np.inf)
        return np.where(
            has_probation,
            _argmin_rows(masked),
            _argmin_rows(stamp_rows),
        )


@register_kernel(TwoQPolicy)
class TwoQKernel(PolicyKernel):
    """2Q: A1in/Am segments in ``meta``, FIFO within A1in.

    Set-run safe: an A1in -> Am promotion writes only the hit way's
    segment bit (idempotent), never another way's.
    """

    supports_set_runs = True

    def on_hits(self, sets, ways, idx, scores):
        self.cache.stamp[sets, ways] = idx.astype(np.float64)
        self.cache.meta[sets, ways] = 1.0

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # A1in -> Am promotion is idempotent; the last stamp wins.
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)
        self.cache.meta[sets, ways] = 1.0

    def select_victims(self, sets, idx):
        cache = self.cache
        meta_rows = cache.meta[sets]
        stamp_rows = cache.stamp[sets]
        a1 = meta_rows == 0.0
        has_a1 = a1.any(axis=1)
        masked = np.where(a1, stamp_rows, np.inf)
        return np.where(
            has_a1, _argmin_rows(masked), _argmin_rows(stamp_rows)
        )


@register_kernel(BeladyPolicy)
class BeladyKernel(PolicyKernel):
    """Belady/OPT: next-use distances in ``meta``, evict the farthest."""

    supports_set_runs = True

    def on_hits(self, sets, ways, idx, scores):
        self.cache.stamp[sets, ways] = idx.astype(np.float64)
        self.cache.meta[sets, ways] = self.policy._next_use[idx]

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # Each hit overwrites both planes; the last access wins.
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)
        self.cache.meta[sets, ways] = self.policy._next_use[last_idx]

    def fill_meta(self, pages, scores, idx):
        return self.policy._next_use[idx].astype(np.float64)

    def select_victims(self, sets, idx):
        return _argmax_rows(self.cache.meta[sets])


@register_kernel(ScoreBasedPolicy)
class ScoreKernel(PolicyKernel):
    """Score-driven admission/eviction (GMM, LSTM, any scorer).

    Covers :class:`ScoreBasedPolicy` and its alias subclasses
    (``GmmCachePolicy``, ``LstmCachePolicy``); the combined-view
    :class:`~repro.core.policy.CombinedIcgmmPolicy` overrides
    ``fill_meta`` and therefore registers its own kernel (see
    :class:`CombinedScoreKernel`, which inherits set-run support --
    both only ever write the hit way's stamp/score).
    """

    supports_set_runs = True

    def __init__(self, policy, cache):
        super().__init__(policy, cache)
        self.admits_all = not policy.admission

    def on_hits(self, sets, ways, idx, scores):
        self.cache.stamp[sets, ways] = idx.astype(np.float64)
        if self.policy.update_score_on_hit:
            self.cache.meta[sets, ways] = scores

    def on_hit_runs(
        self, sets, ways, first_idx, last_idx, counts, first_scores,
        last_scores,
    ):
        # Stamp and (optionally) stored score are overwritten per
        # hit; the run's last access wins.
        self.cache.stamp[sets, ways] = last_idx.astype(np.float64)
        if self.policy.update_score_on_hit:
            self.cache.meta[sets, ways] = last_scores

    def admit(self, pages, scores, is_write, idx):
        if not self.policy.admission:
            return np.ones(pages.shape[0], dtype=bool)
        return scores >= self.policy.threshold

    def fill_meta(self, pages, scores, idx):
        return scores.astype(np.float64)

    def select_victims(self, sets, idx):
        if self.policy.eviction:
            return _argmin_rows(self.cache.meta[sets])
        return _argmin_rows(self.cache.stamp[sets])


class CombinedScoreKernel(ScoreKernel):
    """Score kernel whose fill metadata is a per-page marginal score.

    Vectorizes ``CombinedIcgmmPolicy.fill_meta`` (a dict lookup with
    request-score fallback) via binary search over the policy's
    memoised ``sorted_page_scores()`` arrays.  Registered from
    :mod:`repro.core.policy` to avoid an import cycle.
    """

    def __init__(self, policy, cache):
        super().__init__(policy, cache)
        # The combined policy memoises its sorted view; the serving
        # loop constructs a kernel per shard per chunk, and
        # rebuilding O(U log U) arrays from the dict each time would
        # dominate once U reaches millions of pages.
        self._keys, self._values = policy.sorted_page_scores()

    def fill_meta(self, pages, scores, idx):
        if self._keys.size == 0:
            return scores.astype(np.float64)
        positions = np.searchsorted(self._keys, pages)
        positions_clipped = np.minimum(positions, self._keys.size - 1)
        found = self._keys[positions_clipped] == pages
        return np.where(
            found, self._values[positions_clipped], scores
        ).astype(np.float64)


__all__ = [
    "BeladyKernel",
    "ClockKernel",
    "CombinedScoreKernel",
    "CounterRandomKernel",
    "FifoKernel",
    "KERNELS",
    "LfuKernel",
    "LruKernel",
    "PolicyKernel",
    "ScoreKernel",
    "SlruKernel",
    "TwoQKernel",
    "kernel_for",
    "register_kernel",
]

"""Segmented LRU (SLRU) replacement."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class SlruPolicy(ReplacementPolicy):
    """Segmented LRU: probation + protected segments per set.

    Blocks enter on *probation*; only a hit promotes them to the
    *protected* segment (capped at ``protected_ways`` per set, LRU
    within each segment, demotion on overflow).  One-touch traffic
    therefore churns through probation without displacing proven
    blocks -- the classical scan-resistant improvement over LRU, and
    the strongest non-learned baseline against the maintenance-burst
    traffic in this repository's traces.

    Segment membership is tracked in ``cache.meta`` (0 = probation,
    1 = protected); recency lives in ``cache.stamp`` as usual.
    """

    name = "slru"

    def __init__(self, protected_fraction: float = 0.5) -> None:
        if not 0.0 <= protected_fraction < 1.0:
            raise ValueError("protected_fraction must be in [0, 1)")
        self.protected_fraction = protected_fraction

    def _protected_cap(self, ways: int) -> int:
        return int(ways * self.protected_fraction)

    def on_hit(self, cache, set_index, way, access_index, score):
        """Promote the block to protected, demoting on overflow."""
        cache.stamp[set_index][way] = float(access_index)
        meta = cache.meta[set_index]
        if meta[way] == 1.0:
            return
        cap = self._protected_cap(len(meta))
        if cap == 0:
            return
        protected = [i for i, m in enumerate(meta) if m == 1.0]
        if len(protected) >= cap:
            # Demote the LRU protected block to probation.
            stamps = cache.stamp[set_index]
            victim = min(protected, key=lambda i: stamps[i])
            meta[victim] = 0.0
        meta[way] = 1.0

    def fill_meta(self, page, score, access_index):
        """New blocks start on probation."""
        return 0.0

    def select_victim(self, cache, set_index, access_index):
        """Evict the LRU probationary block (protected only if none)."""
        meta = cache.meta[set_index]
        stamps = cache.stamp[set_index]
        probation = [i for i, m in enumerate(meta) if m == 0.0]
        if probation:
            return min(probation, key=lambda i: stamps[i])
        return argmin_way(stamps)

"""2Q-style replacement (simplified, set-associative)."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class TwoQPolicy(ReplacementPolicy):
    """A set-associative adaptation of the 2Q algorithm.

    Classic 2Q (Johnson & Shasha, VLDB'94) keeps first-time blocks in
    a small FIFO (A1in); only blocks referenced *again* enter the main
    LRU (Am).  Within a set this becomes: new fills are FIFO-ordered
    and capped at ``a1_fraction`` of the ways; a hit moves a block to
    the main segment.  Victims come from the FIFO segment first.

    Differs from SLRU in the probationary segment's order (FIFO, not
    LRU) and its explicit size cap on *fills* rather than promotions,
    which makes it even more aggressive against streaming traffic.
    Segment membership lives in ``cache.meta`` (0 = A1in, 1 = Am).
    """

    name = "2q"

    def __init__(self, a1_fraction: float = 0.25) -> None:
        if not 0.0 < a1_fraction <= 1.0:
            raise ValueError("a1_fraction must be in (0, 1]")
        self.a1_fraction = a1_fraction

    def on_hit(self, cache, set_index, way, access_index, score):
        """Second reference: promote A1in -> Am."""
        cache.stamp[set_index][way] = float(access_index)
        cache.meta[set_index][way] = 1.0

    def fill_meta(self, page, score, access_index):
        """First reference: block enters A1in."""
        return 0.0

    def select_victim(self, cache, set_index, access_index):
        """Evict from A1in (FIFO) while it exceeds its share."""
        meta = cache.meta[set_index]
        stamps = cache.stamp[set_index]
        a1 = [i for i, m in enumerate(meta) if m == 0.0]
        if a1:
            # FIFO within A1in: the stamp is untouched since fill for
            # never-hit blocks, so min-stamp is the oldest fill.
            return min(a1, key=lambda i: stamps[i])
        return argmin_way(stamps)

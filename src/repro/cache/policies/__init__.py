"""Cache policy zoo.

:class:`LruPolicy` is the paper's baseline; the score-driven
:class:`GmmCachePolicy` (admission / eviction / both) is its
contribution; the rest are classical baselines used by the policy
ablation bench, plus the offline :class:`BeladyPolicy` oracle that
upper-bounds any online policy.
"""

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.policies.belady import BeladyPolicy, compute_next_use
from repro.cache.policies.clock import ClockPolicy
from repro.cache.policies.fifo import FifoPolicy
from repro.cache.policies.gmm_policy import (
    GmmCachePolicy,
    LstmCachePolicy,
    ScoreBasedPolicy,
)
from repro.cache.policies.lfu import LfuPolicy
from repro.cache.policies.lru import LruPolicy
from repro.cache.policies.random_ import (
    CounterRandomPolicy,
    RandomPolicy,
)
from repro.cache.policies.slru import SlruPolicy
from repro.cache.policies.twoq import TwoQPolicy

#: Policies constructible without extra context, keyed by name.
SIMPLE_POLICIES = {
    "lru": LruPolicy,
    "fifo": FifoPolicy,
    "random": RandomPolicy,
    "counter-random": CounterRandomPolicy,
    "lfu": LfuPolicy,
    "clock": ClockPolicy,
    "slru": SlruPolicy,
    "2q": TwoQPolicy,
}


def make_policy(name: str, **kwargs) -> ReplacementPolicy:
    """Instantiate a policy from :data:`SIMPLE_POLICIES` by name.

    Score-based and oracle policies need runtime context (a threshold,
    the page stream) and are constructed directly instead.
    """
    try:
        cls = SIMPLE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r}; choose from"
            f" {sorted(SIMPLE_POLICIES)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "BeladyPolicy",
    "ClockPolicy",
    "CounterRandomPolicy",
    "FifoPolicy",
    "GmmCachePolicy",
    "LfuPolicy",
    "LruPolicy",
    "LstmCachePolicy",
    "RandomPolicy",
    "ReplacementPolicy",
    "SIMPLE_POLICIES",
    "ScoreBasedPolicy",
    "SlruPolicy",
    "TwoQPolicy",
    "compute_next_use",
    "make_policy",
]

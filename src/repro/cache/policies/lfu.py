"""Least Frequently Used replacement."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class LfuPolicy(ReplacementPolicy):
    """In-cache LFU with optional decay.

    Each block's ``meta`` counts its hits since fill; the victim is the
    least-counted way.  ``decay`` < 1 ages counters at every hit update
    so stale frequency does not pin dead blocks forever (LFU's classic
    failure mode).  LFU is the closest classical analogue of the GMM
    score policy -- both approximate access *frequency* -- so it
    anchors the policy ablation.
    """

    name = "lfu"

    def __init__(self, decay: float = 1.0) -> None:
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        self.decay = decay

    def on_hit(self, cache, set_index, way, access_index, score):
        """Count the hit (and age the set when decay is enabled)."""
        cache.stamp[set_index][way] = float(access_index)
        meta = cache.meta[set_index]
        if self.decay < 1.0:
            for i in range(len(meta)):
                meta[i] *= self.decay
        meta[way] += 1.0

    def fill_meta(self, page, score, access_index):
        """A fresh block starts with one (its filling miss)."""
        return 1.0

    def select_victim(self, cache, set_index, access_index):
        """Evict the least frequently hit way."""
        return argmin_way(cache.meta[set_index])

"""Score-driven policies: the paper's smart caching and eviction.

Sec. 3.2: on a miss, pages scoring below a threshold are *not* cached
(smart caching / admission); when eviction is needed, the block with
the lowest stored score goes (smart eviction).  Fig. 6 evaluates the
two mechanisms separately and combined, so the policy takes independent
``admission`` and ``eviction`` switches.

The policy itself is score-agnostic: scores are precomputed per request
and passed through the simulator, so the same class serves the GMM
engine, the LSTM baseline, or any other scorer.  :class:`GmmCachePolicy`
and :class:`LstmCachePolicy` are thin named aliases used in result
tables.
"""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class ScoreBasedPolicy(ReplacementPolicy):
    """Admission/eviction driven by a per-request score.

    Parameters
    ----------
    threshold:
        Admission cut: a missing page is cached only when its score is
        >= ``threshold``.  Ignored when ``admission`` is False.
    admission:
        Enable smart caching (bypass low-score pages).
    eviction:
        Enable smart eviction (victim = lowest stored score); when
        False the victim falls back to LRU order, reproducing the
        paper's "GMM caching-only" configuration.
    update_score_on_hit:
        When True the stored score is refreshed with the current
        request's score on every hit.  The paper's engine skips the GMM
        entirely on hits (Fig. 4), so the faithful default is False;
        the switch exists for the ablation bench.
    """

    name = "score"

    def __init__(
        self,
        threshold: float = 0.0,
        admission: bool = True,
        eviction: bool = True,
        update_score_on_hit: bool = False,
    ) -> None:
        if not admission and not eviction:
            raise ValueError(
                "enable at least one of admission/eviction; with both"
                " off this is plain LRU"
            )
        self.threshold = float(threshold)
        self.admission = bool(admission)
        self.eviction = bool(eviction)
        self.update_score_on_hit = bool(update_score_on_hit)

    def on_hit(self, cache, set_index, way, access_index, score):
        """Refresh recency (and optionally the stored score)."""
        cache.stamp[set_index][way] = float(access_index)
        if self.update_score_on_hit:
            cache.meta[set_index][way] = score

    def admit(self, page, score, is_write, access_index):
        """Smart caching: admit only pages predicted hot enough."""
        if not self.admission:
            return True
        return score >= self.threshold

    def fill_meta(self, page, score, access_index):
        """Store the request's score with the block (Fig. 4 table)."""
        return score

    def select_victim(self, cache, set_index, access_index):
        """Smart eviction: lowest score; LRU fallback when disabled."""
        if self.eviction:
            return argmin_way(cache.meta[set_index])
        return argmin_way(cache.stamp[set_index])

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(threshold={self.threshold:.3g},"
            f" admission={self.admission}, eviction={self.eviction})"
        )


class GmmCachePolicy(ScoreBasedPolicy):
    """Score policy fed by the GMM engine (the paper's contribution)."""

    name = "gmm"


class LstmCachePolicy(ScoreBasedPolicy):
    """Score policy fed by the LSTM baseline engine (Sec. 5.3)."""

    name = "lstm"

"""First-In First-Out replacement."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy, argmin_way


class FifoPolicy(ReplacementPolicy):
    """FIFO: evict the oldest *fill*, ignoring hits.

    Not evaluated in the paper; part of the baseline zoo used by the
    policy ablation bench.
    """

    name = "fifo"

    def on_hit(self, cache, set_index, way, access_index, score):
        """Hits do not refresh FIFO order."""

    def select_victim(self, cache, set_index, access_index):
        """Evict the earliest-filled way."""
        return argmin_way(cache.stamp[set_index])

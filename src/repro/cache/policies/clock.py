"""CLOCK (second-chance) replacement."""

from __future__ import annotations

from repro.cache.policies.base import ReplacementPolicy


class ClockPolicy(ReplacementPolicy):
    """CLOCK: one reference bit per block, a sweeping hand per set.

    The hand advances over the ways; a set bit buys the block a second
    chance (the bit is cleared), the first clear bit is evicted.  CLOCK
    approximates LRU at a fraction of the metadata cost and is the
    policy most real hardware implements -- a realistic baseline for a
    hardware-managed cache.
    """

    name = "clock"

    def __init__(self) -> None:
        self._hands: dict[int, int] = {}

    def on_hit(self, cache, set_index, way, access_index, score):
        """Set the reference bit."""
        cache.stamp[set_index][way] = float(access_index)
        cache.meta[set_index][way] = 1.0

    def fill_meta(self, page, score, access_index):
        """New blocks start referenced."""
        return 1.0

    def select_victim(self, cache, set_index, access_index):
        """Advance the hand to the first unreferenced way."""
        meta = cache.meta[set_index]
        ways = len(meta)
        hand = self._hands.get(set_index, 0)
        # At most two sweeps: one clearing bits, one finding a zero.
        for _ in range(2 * ways):
            if meta[hand] == 0.0:
                victim = hand
                self._hands[set_index] = (hand + 1) % ways
                return victim
            meta[hand] = 0.0
            hand = (hand + 1) % ways
        # Unreachable: after one clearing sweep a zero bit must exist.
        raise AssertionError("CLOCK failed to find a victim")

"""Set-associative DRAM cache model and its trace-driven simulator.

This is the software twin of the paper's cache control engine
(Sec. 4.2): a set-associative cache of 4 KB blocks over the device
DRAM, with cache tags and per-block policy metadata held in an
on-board table.  The paper's case-study geometry -- 64 MB capacity,
4 KB blocks, associativity 8 (Sec. 5.1) -- is the default
:class:`CacheGeometry`.

Cache state lives in four ``(n_sets, ways)`` numpy planes (tags,
dirty, meta, stamp), which is what lets
:mod:`repro.cache.simulate_fast` process whole request chunks with
array operations.  The reference :func:`simulate` below stays a
scalar access-at-a-time loop -- it is the executable specification
the fast path is differential-tested against -- and mirrors the tag
plane into plain Python lists for the duration of the loop, because
list indexing is several times faster than numpy scalar extraction
at the 8-entry-way shape.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.stats import (
    OUTCOME_BYPASS,
    OUTCOME_DIRTY_EVICT,
    OUTCOME_EVICT,
    OUTCOME_FILL,
    OUTCOME_HIT,
    CacheStats,
)

#: Tag value marking an empty way.
INVALID = -1


@dataclass(frozen=True)
class CacheGeometry:
    """Cache shape parameters (Sec. 5.1 case study defaults).

    Attributes
    ----------
    capacity_bytes:
        Total DRAM cache capacity (default 64 MB).
    block_bytes:
        Cache block size; fixed to the 4 KB SSD page in the paper
        (Challenge 2: granularity mismatch).
    associativity:
        Ways per set (default 8).
    """

    capacity_bytes: int = 64 * 1024 * 1024
    block_bytes: int = 4096
    associativity: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")
        if self.associativity <= 0:
            raise ValueError("associativity must be positive")
        if self.capacity_bytes % self.block_bytes != 0:
            raise ValueError(
                "capacity_bytes must be a multiple of block_bytes"
            )
        if self.n_blocks % self.associativity != 0:
            raise ValueError(
                "block count must be a multiple of associativity"
            )

    @property
    def n_blocks(self) -> int:
        """Total number of cache blocks."""
        return self.capacity_bytes // self.block_bytes

    @property
    def n_sets(self) -> int:
        """Number of sets."""
        return self.n_blocks // self.associativity


class SetAssociativeCache:
    """Tag/metadata state of a set-associative cache.

    Data blocks themselves are never modelled -- exactly like the
    hardware, which moves only tags and GMM scores into the on-board
    buffer (Sec. 4.2).  Two float metadata planes (``meta`` and
    ``stamp``) are maintained per way; each policy assigns them its own
    meaning (GMM score, LRU counter, reference bit, ...).

    All four planes are ``(n_sets, ways)`` numpy arrays so the
    vectorized simulator can gather/scatter whole chunks at once;
    scalar code indexes them exactly like the former list-of-lists
    (``cache.meta[set_index][way]``).
    """

    def __init__(self, geometry: CacheGeometry | None = None) -> None:
        self.geometry = geometry if geometry is not None else CacheGeometry()
        n_sets = self.geometry.n_sets
        ways = self.geometry.associativity
        self.tags = np.full((n_sets, ways), INVALID, dtype=np.int64)
        self.dirty = np.zeros((n_sets, ways), dtype=bool)
        self.meta = np.zeros((n_sets, ways), dtype=np.float64)
        self.stamp = np.zeros((n_sets, ways), dtype=np.float64)

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def set_index(self, page: int) -> int:
        """Set holding ``page`` (page modulo set count)."""
        return page % self.geometry.n_sets

    # ------------------------------------------------------------------
    # Lookup and fill
    # ------------------------------------------------------------------
    def lookup(self, page: int) -> tuple[int, int | None]:
        """Locate ``page``; returns ``(set_index, way | None)``."""
        index = page % self.geometry.n_sets
        match = np.nonzero(self.tags[index] == page)[0]
        if match.size == 0:
            return index, None
        return index, int(match[0])

    def find_invalid_way(self, set_index: int) -> int | None:
        """First empty way in a set, or None when the set is full."""
        match = np.nonzero(self.tags[set_index] == INVALID)[0]
        if match.size == 0:
            return None
        return int(match[0])

    def fill(
        self,
        set_index: int,
        way: int,
        page: int,
        dirty: bool,
        meta: float,
        stamp: float,
    ) -> None:
        """Install ``page`` into ``(set_index, way)``."""
        self.tags[set_index][way] = page
        self.dirty[set_index][way] = dirty
        self.meta[set_index][way] = meta
        self.stamp[set_index][way] = stamp

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of valid blocks currently cached (one array scan)."""
        return int(np.count_nonzero(self.tags != INVALID))

    def resident_pages(self) -> set[int]:
        """Set of pages currently cached (for tests/analysis)."""
        valid = self.tags[self.tags != INVALID]
        return {int(tag) for tag in valid}

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"SetAssociativeCache(capacity={g.capacity_bytes >> 20} MiB,"
            f" block={g.block_bytes} B, ways={g.associativity},"
            f" occupancy={self.occupancy()}/{g.n_blocks})"
        )


def _validate_stream(
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None,
    warmup_fraction: float,
    index_offset: int = 0,
    outcome: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Shared input validation for both simulator paths.

    Returns ``(pages, is_write, scores, measure_from)`` with scores
    defaulted to zeros.  ``measure_from`` is an *absolute* access
    index (``index_offset`` plus the warm-up cut within this call).
    """
    pages = np.asarray(pages)
    is_write = np.asarray(is_write)
    if pages.shape != is_write.shape:
        raise ValueError("pages and is_write must have the same shape")
    if scores is None:
        scores = np.zeros(pages.shape[0], dtype=np.float64)
    else:
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != pages.shape:
            raise ValueError("scores and pages must have the same shape")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if index_offset < 0:
        raise ValueError("index_offset must be >= 0")
    if outcome is not None:
        if not isinstance(outcome, np.ndarray):
            raise ValueError("outcome must be a numpy array")
        if outcome.shape != pages.shape:
            raise ValueError("outcome and pages must have the same shape")
        if outcome.dtype != np.uint8:
            raise ValueError("outcome must have dtype uint8")
    measure_from = index_offset + int(pages.shape[0] * warmup_fraction)
    return pages, is_write, scores, measure_from


def _scalar_span(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    tags_list: list[list[int]],
    page_list: list[int],
    write_list: list[bool],
    score_list: list[float],
    index_list,
    measure_from: int,
    stats: CacheStats,
    outcome: np.ndarray | None = None,
    outcome_base: int = 0,
) -> None:
    """Exact access-at-a-time simulation of one request span.

    ``page_list``/``write_list``/``score_list`` are the span's
    requests as plain Python scalars; ``index_list`` (any indexable
    sequence, e.g. a ``range`` or a list) gives the absolute access
    index of each position.  ``tags_list`` is a list-of-lists mirror
    of ``cache.tags`` kept in sync by this function (fast lookups);
    dirty/meta/stamp go through the cache's numpy planes directly so
    policy hooks observe them.

    When ``outcome`` is given, each access's ``OUTCOME_*`` code is
    written at ``outcome[access_index - outcome_base]``.

    This is the executable specification: the vectorized engine in
    :mod:`repro.cache.simulate_fast` must match it bit for bit, and
    falls back to it for heavily set-conflicted request spans.
    """
    dirty = cache.dirty
    n_sets = cache.geometry.n_sets
    record = outcome is not None
    for offset in range(len(page_list)):
        access_index = index_list[offset]
        page = page_list[offset]
        write = write_list[offset]
        score = score_list[offset]
        measured = access_index >= measure_from
        set_index = page % n_sets
        set_tags = tags_list[set_index]
        try:
            way: int | None = set_tags.index(page)
        except ValueError:
            way = None

        if way is not None:
            # DRAM cache hit: data goes straight to the host.
            policy.on_hit(cache, set_index, way, access_index, score)
            if write:
                dirty[set_index][way] = True
            if measured:
                stats.hits += 1
                if write:
                    stats.write_hits += 1
            if record:
                outcome[access_index - outcome_base] = OUTCOME_HIT
            continue

        # Miss: SSD must be accessed either way; the policy decides
        # whether the page also gets cached.
        if measured:
            stats.misses += 1
            if write:
                stats.write_misses += 1
        if not policy.admit(page, score, write, access_index):
            if measured:
                stats.bypasses += 1
                if write:
                    stats.bypassed_writes += 1
            if record:
                outcome[access_index - outcome_base] = OUTCOME_BYPASS
            continue

        try:
            victim: int | None = set_tags.index(INVALID)
        except ValueError:
            victim = None
        if victim is None:
            victim = policy.select_victim(cache, set_index, access_index)
            victim_dirty = bool(dirty[set_index][victim])
            if measured:
                stats.evictions += 1
                if victim_dirty:
                    stats.dirty_evictions += 1
            if record:
                outcome[access_index - outcome_base] = (
                    OUTCOME_DIRTY_EVICT if victim_dirty else OUTCOME_EVICT
                )
        elif record:
            outcome[access_index - outcome_base] = OUTCOME_FILL
        if measured:
            stats.fills += 1
        set_tags[victim] = page
        cache.fill(
            set_index,
            victim,
            page,
            write,
            policy.fill_meta(page, score, access_index),
            float(access_index),
        )


def simulate(
    cache: SetAssociativeCache,
    policy: ReplacementPolicy,
    pages: np.ndarray,
    is_write: np.ndarray,
    scores: np.ndarray | None = None,
    warmup_fraction: float = 0.0,
    index_offset: int = 0,
    outcome: np.ndarray | None = None,
) -> CacheStats:
    """Drive a cache/policy pair over a page-level request stream.

    Implements the Sec. 3.2 flow: a hit is served from DRAM (the GMM is
    bypassed); on a miss the policy decides admission using the
    precomputed GMM score, and -- when the set is full -- selects the
    victim; a dirty victim costs an SSD write-back.

    This is the *reference* scalar path.  The chunked/vectorized
    engine lives in :func:`repro.cache.simulate_fast.simulate_fast`
    and produces bit-identical counters and final cache state.

    Parameters
    ----------
    cache:
        Cache state (mutated in place; pass a fresh instance per run).
    policy:
        Replacement/admission policy.
    pages:
        Page index per request.
    is_write:
        Write flag per request.
    scores:
        Policy score per request (GMM density); zeros when omitted.
        Scores are precomputed for the whole stream because the GMM is
        a pure function of ``(page, timestamp)`` -- mirroring the
        pipelined engine, which computes them independently per request.
    warmup_fraction:
        Leading fraction of requests that update cache state but are
        excluded from the returned counters.
    index_offset:
        Absolute access index of the first request.  Non-zero offsets
        make the call *resumable*: the serving loop replays a stream
        in chunks against the same live cache, and recency stamps /
        policy hooks keep seeing the global access order.  (Policies
        that pre-index the full trace, e.g. Belady, assume offset 0.)
    outcome:
        Optional ``uint8`` buffer of the call's length; when given,
        each access's ``OUTCOME_*`` code (see
        :mod:`repro.cache.stats`) is recorded at its call-local
        position, enabling exact per-tenant accounting downstream.

    Returns
    -------
    CacheStats
        Counters over the measured (post-warm-up) region.
    """
    pages, is_write, scores, measure_from = _validate_stream(
        pages, is_write, scores, warmup_fraction, index_offset, outcome
    )
    stats = CacheStats()
    tags_list = [
        [int(tag) for tag in ways] for ways in cache.tags
    ]
    page_list = [int(p) for p in pages]
    write_list = [bool(w) for w in is_write]
    score_list = [float(s) for s in scores]
    _scalar_span(
        cache,
        policy,
        tags_list,
        page_list,
        write_list,
        score_list,
        range(index_offset, index_offset + len(page_list)),
        measure_from,
        stats,
        outcome=outcome,
        outcome_base=index_offset,
    )
    return stats

"""CXL link latency/bandwidth model.

CXL runs over PCIe physical lanes; a CXL.mem round trip adds a
protocol overhead on the order of 100-200 ns on top of the device's
internal service time, and the link's bandwidth bounds bulk transfers
(a 4 KB page fill moves over the same lanes).  Constants default to a
x8 Gen5 link, consistent with published CXL latency measurements.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CxlLinkSpec:
    """Latency and bandwidth of one CXL.mem link.

    Attributes
    ----------
    round_trip_overhead_ns:
        Protocol + flit packing overhead per request (both directions
        combined).
    bandwidth_gb_s:
        Usable link bandwidth in GB/s.
    """

    name: str = "cxl-gen5-x8"
    round_trip_overhead_ns: int = 150
    bandwidth_gb_s: float = 25.0

    def __post_init__(self) -> None:
        if self.round_trip_overhead_ns < 0:
            raise ValueError("round_trip_overhead_ns must be >= 0")
        if self.bandwidth_gb_s <= 0:
            raise ValueError("bandwidth_gb_s must be positive")

    def transfer_ns(self, n_bytes: int) -> int:
        """Serialisation time of ``n_bytes`` over the link."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be >= 0")
        return int(round(n_bytes / self.bandwidth_gb_s))

    def request_latency_ns(self, payload_bytes: int) -> int:
        """Round-trip latency for a request moving ``payload_bytes``."""
        return self.round_trip_overhead_ns + self.transfer_ns(
            payload_bytes
        )

"""Vectorized multi-device CXL fabric.

A :class:`CxlFabric` models a host expanding memory over *N* CXL
devices -- each an SSD-backed DRAM cache like the single
:class:`~repro.cxl.device.CxlMemoryDevice` -- and replays a page-level
request stream across them at fast-path speed:

1. **Place.**  The stream is partitioned per
   :class:`~repro.core.config.FabricTopology` (interleave / range /
   score-aware placement; see that class's docstring).
2. **Replay.**  Every device's sub-stream runs through the shared
   staged pipeline's Simulate stage
   (:meth:`repro.core.pipeline.StagedPipeline.simulate`) with a
   resumable per-device ``index_offset`` cursor, exactly like the
   serving shards -- so chunked streaming ingestion and a one-shot
   offline run are *bit-identical*, and each device's counters equal
   a single-shot offline run on its sub-stream.  Devices own fully
   independent planes/policies/cursors, so each round of per-device
   simulate calls is dispatched concurrently through
   :class:`repro.core.parallel.ParallelExecutor` (``workers`` per
   :class:`~repro.core.config.ParallelConfig`) and merged in device
   order -- parallel replay is bit-identical to ``workers=1``.
3. **Price.**  Per-device counters are priced through that device's
   own link model
   (:class:`~repro.hardware.latency.DevicePathLatencyModel`), which
   reproduces the per-access accounting of the scalar
   :class:`~repro.cxl.router.CxlSystem` from outcome counts alone.

The scalar router remains the executable specification; the fabric
parity suite (``tests/cxl/test_fabric_parity.py``) and the scaling
bench (``benchmarks/bench_fabric_scaling.py``) assert agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cache.stats import CacheStats
from repro.core.config import FabricTopology, IcgmmConfig, ParallelConfig
from repro.core.parallel import ParallelExecutor, ReplayTask
from repro.core.pipeline import PreparedWorkload, StagedPipeline
from repro.core.policy import CombinedIcgmmPolicy, build_policy
from repro.cxl.device import DEVICE_DRAM_HIT_NS
from repro.cxl.link import CxlLinkSpec
from repro.hardware.latency import DevicePathLatencyModel
from repro.hardware.ssd import SSD_CATALOG, SsdSpec
from repro.traces.record import CACHE_LINE_SIZE


@dataclass(frozen=True)
class DeviceReplayResult:
    """One device's share of a fabric run.

    Attributes
    ----------
    device_id:
        Position in the fabric.
    link:
        The device's CXL link model.
    stats:
        Cache counters of the device's sub-stream.
    time_ns:
        End-to-end service time of the sub-stream (link included).
    outcomes:
        Per-access ``OUTCOME_*`` codes of the device's sub-stream,
        kept only when the replay was asked for them
        (``keep_outcomes=True``); ``None`` otherwise, so a large
        fleet replay never holds one outcome array per device alive.
    """

    device_id: int
    link: CxlLinkSpec
    stats: CacheStats
    time_ns: int
    outcomes: np.ndarray | None = None

    @property
    def accesses(self) -> int:
        """Requests routed to this device."""
        return self.stats.accesses

    @property
    def average_latency_us(self) -> float:
        """Mean end-to-end request latency, in microseconds."""
        if self.stats.accesses == 0:
            return 0.0
        return self.time_ns / self.stats.accesses / 1_000.0


@dataclass(frozen=True)
class FabricRunResult:
    """Aggregate outcome of replaying a stream over the fabric."""

    devices: tuple[DeviceReplayResult, ...]

    @cached_property
    def totals(self) -> CacheStats:
        """Merged counters across all devices (computed once, lazily)."""
        totals = CacheStats()
        for device in self.devices:
            totals = totals.merge(device.stats)
        return totals

    @property
    def accesses(self) -> int:
        """All replayed requests."""
        return sum(d.stats.accesses for d in self.devices)

    @property
    def total_time_ns(self) -> int:
        """Total service time across all devices."""
        return sum(d.time_ns for d in self.devices)

    @property
    def average_latency_us(self) -> float:
        """Fleet-wide mean request latency, in microseconds."""
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return self.total_time_ns / accesses / 1_000.0

    def as_dict(self) -> dict:
        """Flat summary (for benches and the CLI)."""
        return {
            "accesses": self.accesses,
            "miss_rate": self.totals.miss_rate,
            "total_time_ns": self.total_time_ns,
            "average_latency_us": self.average_latency_us,
            "devices": [
                {
                    "device_id": d.device_id,
                    "accesses": d.accesses,
                    "miss_rate": d.stats.miss_rate,
                    "time_ns": d.time_ns,
                    "average_latency_us": d.average_latency_us,
                    "link_request_ns": d.link.request_latency_ns(
                        CACHE_LINE_SIZE
                    ),
                }
                for d in self.devices
            ],
        }


class CxlFabric:
    """A fleet of CXL expansion devices behind one host.

    Each device carries its own full :attr:`IcgmmConfig.geometry`
    DRAM cache, policy instance, and resumable replay cursor.

    Parameters
    ----------
    topology:
        Device count, placement rule and per-device link parameters.
    config:
        System profile shared by all devices (geometry, simulator
        selection); the fabric replays through this config's staged
        pipeline.
    ssd:
        Backing-store latency profile used by the pricing model.
    hit_latency_ns:
        Device-DRAM hit service time.
    parallel:
        Multicore replay knobs; overrides
        :attr:`FabricTopology.parallel`, which in turn overrides
        :attr:`IcgmmConfig.parallel`.  Each round of per-device
        simulate calls is dispatched through one persistent
        :class:`~repro.core.parallel.ParallelExecutor` and merged in
        device order, so any worker count is bit-identical to
        sequential replay.  Call :meth:`close` when done with a
        process-backend fabric (worker pool, shared segments).
    """

    def __init__(
        self,
        topology: FabricTopology | None = None,
        config: IcgmmConfig | None = None,
        ssd: SsdSpec | None = None,
        hit_latency_ns: int = DEVICE_DRAM_HIT_NS,
        parallel: ParallelConfig | None = None,
    ) -> None:
        self.topology = (
            topology if topology is not None else FabricTopology()
        )
        self.pipeline = StagedPipeline(config)
        self.config = self.pipeline.config
        if parallel is None:
            parallel = (
                self.topology.parallel
                if self.topology.parallel is not None
                else self.config.parallel
            )
        self.parallel = parallel
        self._executor = ParallelExecutor.from_config(parallel)
        self._shared: list = []
        ssd = ssd if ssd is not None else SSD_CATALOG["tlc"]
        n = self.topology.n_devices
        overheads = self.topology.link_overhead_ns
        bandwidths = self.topology.link_bandwidth_gb_s
        default = CxlLinkSpec()
        self.links: tuple[CxlLinkSpec, ...] = tuple(
            CxlLinkSpec(
                name=f"fabric-link-{i}",
                round_trip_overhead_ns=(
                    overheads[i]
                    if overheads is not None
                    else default.round_trip_overhead_ns
                ),
                bandwidth_gb_s=(
                    bandwidths[i]
                    if bandwidths is not None
                    else default.bandwidth_gb_s
                ),
            )
            for i in range(n)
        )
        self.pricing: tuple[DevicePathLatencyModel, ...] = tuple(
            DevicePathLatencyModel(
                ssd=ssd,
                hit_latency_ns=hit_latency_ns,
                link_request_ns=link.request_latency_ns(CACHE_LINE_SIZE),
            )
            for link in self.links
        )
        # Devices ranked fastest link first; the score placement maps
        # its hottest bucket to self._device_rank[0].
        self._device_rank = np.argsort(
            [p.link_request_ns for p in self.pricing], kind="stable"
        ).astype(np.int64)
        self._strategy: str | None = None
        self._score_cuts: np.ndarray | None = None
        self.reset()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all device caches, cursors and accumulated counters."""
        n = self.topology.n_devices
        for handle in self._shared:
            if handle is not None:
                handle.close()
        self.caches = []
        self._shared = []
        for _ in range(n):
            cache, handle = self._executor.make_cache(
                self.config.geometry
            )
            self.caches.append(cache)
            self._shared.append(handle)
        self._cursors = [0] * n
        self._device_stats = [CacheStats() for _ in range(n)]
        self._device_outcomes: list = [None] * n
        self._policies: list | None = None

    def close(self) -> None:
        """Release the worker pool and any shared-memory planes."""
        self._executor.shutdown()
        for handle in self._shared:
            if handle is not None:
                handle.close()
        self._shared = [None] * len(self._shared)

    def __enter__(self) -> "CxlFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def bind(
        self,
        strategy: str,
        admission_threshold: float = 0.0,
        page_score_map: dict[int, float] | None = None,
        score_cuts: np.ndarray | None = None,
    ) -> None:
        """Reset the fleet and build per-device policies for a strategy.

        Parameters
        ----------
        strategy:
            Fig. 6 strategy driving every device.
        admission_threshold:
            Sec. 3.2 score cut-off (admission-enabled strategies).
        page_score_map:
            Global page -> marginal score mapping; required by
            ``gmm-caching-eviction`` (each device receives the slice
            routed to it, keyed by the device-local page the
            simulator sees, exactly like the serving shards).
        score_cuts:
            Bucket boundaries of the ``score`` placement; when
            omitted they are derived as unique-page quantiles of
            ``page_score_map``'s values.
        """
        self.reset()
        self._strategy = strategy
        n = self.topology.n_devices
        combined = strategy == "gmm-caching-eviction"
        if self.topology.placement == "score":
            if score_cuts is not None:
                self._score_cuts = np.asarray(
                    score_cuts, dtype=np.float64
                )
            elif page_score_map:
                marginals = np.fromiter(
                    page_score_map.values(),
                    dtype=np.float64,
                    count=len(page_score_map),
                )
                self._score_cuts = self._cuts_from_marginals(marginals)
            else:
                raise ValueError(
                    "score placement needs score_cuts or a"
                    " page_score_map to derive them from"
                )
        self._device_page_maps: list[dict[int, float]] = [
            {} for _ in range(n)
        ]
        if combined:
            if page_score_map is None:
                raise ValueError(
                    "gmm-caching-eviction requires page_score_map"
                )
            keys = np.fromiter(
                page_score_map.keys(),
                dtype=np.int64,
                count=len(page_score_map),
            )
            values = np.fromiter(
                page_score_map.values(),
                dtype=np.float64,
                count=len(page_score_map),
            )
            self._extend_page_maps(keys, values)
        self._policies = [
            build_policy(
                strategy,
                admission_threshold,
                page_scores=(
                    self._device_page_maps[d] if combined else None
                ),
            )
            for d in range(n)
        ]

    def _cuts_from_marginals(self, marginals: np.ndarray) -> np.ndarray:
        """Equal-population score-bucket boundaries for placement."""
        n = self.topology.n_devices
        if n == 1 or marginals.size == 0:
            return np.empty(0, dtype=np.float64)
        quantiles = np.arange(1, n) / n
        return np.quantile(np.unique(marginals), quantiles)

    def _extend_page_maps(
        self, pages: np.ndarray, marginals: np.ndarray
    ) -> None:
        """Route (page, marginal) pairs into the per-device dicts."""
        device_ids, local_pages = self.place(pages, marginals)
        for device in np.unique(device_ids).tolist():
            mask = device_ids == device
            self._device_page_maps[device].update(
                zip(
                    local_pages[mask].tolist(),
                    marginals[mask].tolist(),
                    strict=True,
                )
            )

    # ------------------------------------------------------------------
    # Stage: Place
    # ------------------------------------------------------------------
    def place(
        self,
        pages: np.ndarray,
        page_marginals: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(device_id, local_page)`` arrays.

        ``interleave`` divides the page by the device count so the
        local page doubles as a collision-free tag; ``range`` and
        ``score`` keep the global page (tags already unique).  The
        ``score`` placement needs the per-access time-marginalised
        scores and a bound fabric (for the bucket boundaries).
        """
        pages = np.asarray(pages, dtype=np.int64)
        n = self.topology.n_devices
        placement = self.topology.placement
        if placement == "interleave":
            return pages % n, pages // n
        if placement == "range":
            stride = self.topology.range_stride_pages
            return (pages // stride) % n, pages
        if page_marginals is None:
            raise ValueError(
                "score placement needs per-access page_marginals"
            )
        if self._score_cuts is None:
            raise ValueError(
                "score placement needs bind() (or score_cuts) first"
            )
        marginals = np.asarray(page_marginals, dtype=np.float64)
        buckets = np.searchsorted(
            self._score_cuts, marginals, side="right"
        )
        # Hottest bucket (highest marginal) -> fastest link.
        device_ids = self._device_rank[n - 1 - buckets]
        return device_ids, pages

    # ------------------------------------------------------------------
    # Stage: Replay (resumable, parallel)
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        devices: list[int],
        tasks: list[ReplayTask],
    ) -> list:
        """One concurrent round of per-device simulate calls.

        Results come back in task order (deterministic merge); the
        post-run policy objects are adopted so a process-backend
        round-trip stays resumable, and the combined strategy's
        per-device score maps are re-aliased to the adopted policies.
        """
        results = self._executor.replay(
            tasks, simulator=self.config.simulator
        )
        for device, result in zip(devices, results, strict=True):
            policy = result.policy
            self._policies[device] = policy
            if isinstance(policy, CombinedIcgmmPolicy):
                self._device_page_maps[device] = policy._page_scores
        return results

    def ingest(
        self,
        pages: np.ndarray,
        is_write: np.ndarray,
        scores: np.ndarray | None = None,
        page_marginals: np.ndarray | None = None,
    ) -> CacheStats:
        """Stream one chunk through the fleet; returns its counters.

        Requires a prior :meth:`bind`.  Each device's slice resumes
        at that device's cursor, so chunked ingestion is bit-identical
        to a one-shot :meth:`run_prepared` with no warm-up cut.  For
        the combined strategy, ``page_marginals`` extends the
        per-device eviction metadata with newly-seen pages.
        """
        if self._policies is None:
            raise ValueError("bind() a strategy before ingesting")
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if self._strategy == "gmm-caching-eviction":
            if page_marginals is None:
                raise ValueError(
                    "gmm-caching-eviction ingestion needs"
                    " page_marginals"
                )
            unique_pages, first = np.unique(pages, return_index=True)
            self._extend_page_maps(
                unique_pages,
                np.asarray(page_marginals, dtype=np.float64)[first],
            )
        device_ids, local_pages = self.place(pages, page_marginals)
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64)
        devices: list[int] = []
        tasks: list[ReplayTask] = []
        for device in range(self.topology.n_devices):
            positions = np.nonzero(device_ids == device)[0]
            if positions.size == 0:
                continue
            devices.append(device)
            tasks.append(
                ReplayTask(
                    cache=self.caches[device],
                    policy=self._policies[device],
                    pages=local_pages[positions],
                    is_write=is_write[positions],
                    scores=(
                        scores[positions]
                        if scores is not None
                        else None
                    ),
                    index_offset=self._cursors[device],
                    shared=self._shared[device],
                )
            )
        chunk = CacheStats()
        for device, task, result in zip(
            devices, tasks, self._dispatch(devices, tasks), strict=True
        ):
            self._cursors[device] += int(task.pages.shape[0])
            self._device_stats[device] = self._device_stats[
                device
            ].merge(result.stats)
            chunk = chunk.merge(result.stats)
        return chunk

    def results(self) -> FabricRunResult:
        """Price the accumulated per-device counters."""
        devices = tuple(
            DeviceReplayResult(
                device_id=d,
                link=self.links[d],
                stats=self._device_stats[d],
                time_ns=self.pricing[d].total_time_ns(
                    self._device_stats[d]
                ),
                outcomes=self._device_outcomes[d],
            )
            for d in range(self.topology.n_devices)
        )
        return FabricRunResult(devices=devices)

    # ------------------------------------------------------------------
    # Offline one-shot entry point
    # ------------------------------------------------------------------
    def run_prepared(
        self,
        prepared: PreparedWorkload,
        strategy: str,
        warmup_fraction: float | None = None,
        keep_outcomes: bool = False,
    ) -> FabricRunResult:
        """Replay a prepared workload over the fleet in one shot.

        Binds the strategy, places the full stream, and replays each
        device's sub-stream through the pipeline's Simulate stage
        with the warm-up cut applied *per sub-stream* -- which is
        exactly what a single-shot offline run on that sub-stream
        does, so per-device counters match it bit for bit (the
        fabric parity suite asserts this for every placement and
        strategy).  Device replays run concurrently per
        :attr:`parallel` and merge in device order.

        With ``keep_outcomes=False`` (the default) only the
        per-device :class:`~repro.cache.stats.CacheStats` are
        aggregated -- no per-access outcome array is ever allocated,
        so an 8-device x 1M-access replay costs counters, not eight
        megabyte-scale buffers.  Pass ``keep_outcomes=True`` to
        record each device's ``OUTCOME_*`` stream on
        :attr:`DeviceReplayResult.outcomes` for downstream per-access
        accounting.
        """
        if warmup_fraction is None:
            warmup_fraction = self.config.warmup_fraction
        with self.pipeline.profile_stage("score"):
            page_score_map = (
                prepared.page_score_map()
                if strategy == "gmm-caching-eviction"
                or self.topology.placement == "score"
                else None
            )
            score_cuts = None
            if self.topology.placement == "score":
                score_cuts = self._cuts_from_marginals(
                    np.fromiter(
                        page_score_map.values(),
                        dtype=np.float64,
                        count=len(page_score_map),
                    )
                )
            self.bind(
                strategy,
                prepared.engine.admission_threshold,
                page_score_map=(
                    page_score_map
                    if strategy == "gmm-caching-eviction"
                    else None
                ),
                score_cuts=score_cuts,
            )
            scores = self.pipeline.strategy_scores(prepared, strategy)
            device_ids, local_pages = self.place(
                prepared.page_indices, prepared.page_frequency_scores
            )
        devices: list[int] = []
        tasks: list[ReplayTask] = []
        for device in range(self.topology.n_devices):
            positions = np.nonzero(device_ids == device)[0]
            if positions.size == 0:
                continue
            devices.append(device)
            tasks.append(
                ReplayTask(
                    cache=self.caches[device],
                    policy=self._policies[device],
                    pages=local_pages[positions],
                    is_write=prepared.is_write[positions],
                    scores=(
                        scores[positions]
                        if scores is not None
                        else None
                    ),
                    warmup_fraction=warmup_fraction,
                    record_outcome=keep_outcomes,
                    shared=self._shared[device],
                )
            )
        # The whole fan-out is timed as one Simulate section (the
        # profiler accounts stages, not workers).
        with self.pipeline.profile_stage("simulate"):
            results = self._dispatch(devices, tasks)
        for device, task, result in zip(
            devices, tasks, results, strict=True
        ):
            self._cursors[device] += int(task.pages.shape[0])
            self._device_stats[device] = result.stats
            if keep_outcomes:
                self._device_outcomes[device] = result.outcome
        with self.pipeline.profile_stage("price"):
            return self.results()

    def __repr__(self) -> str:
        return (
            f"CxlFabric(n_devices={self.topology.n_devices},"
            f" placement={self.topology.placement!r},"
            f" strategy={self._strategy!r})"
        )

"""Vectorized multi-device CXL fabric.

A :class:`CxlFabric` models a host expanding memory over *N* CXL
devices -- each an SSD-backed DRAM cache like the single
:class:`~repro.cxl.device.CxlMemoryDevice` -- and replays a page-level
request stream across them at fast-path speed:

1. **Place.**  The stream is partitioned per
   :class:`~repro.core.config.FabricTopology` (interleave / range /
   score-aware placement; see that class's docstring).
2. **Replay.**  Every device's sub-stream runs through the shared
   staged pipeline's Simulate stage
   (:meth:`repro.core.pipeline.StagedPipeline.simulate`) with a
   resumable per-device ``index_offset`` cursor, exactly like the
   serving shards -- so chunked streaming ingestion and a one-shot
   offline run are *bit-identical*, and each device's counters equal
   a single-shot offline run on its sub-stream.  Devices own fully
   independent planes/policies/cursors, so each round of per-device
   simulate calls is dispatched concurrently through
   :class:`repro.core.parallel.ParallelExecutor` (``workers`` per
   :class:`~repro.core.config.ParallelConfig`) and merged in device
   order -- parallel replay is bit-identical to ``workers=1``.
3. **Price.**  Per-device counters are priced through that device's
   own link model
   (:class:`~repro.hardware.latency.DevicePathLatencyModel`), which
   reproduces the per-access accounting of the scalar
   :class:`~repro.cxl.router.CxlSystem` from outcome counts alone.

The scalar router remains the executable specification; the fabric
parity suite (``tests/cxl/test_fabric_parity.py``) and the scaling
bench (``benchmarks/bench_fabric_scaling.py``) assert agreement.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.cache.stats import (
    OUTCOME_BYPASS,
    CacheStats,
    stats_from_outcomes,
)
from repro.chaos import FaultInjector
from repro.core.config import (
    ChaosConfig,
    FabricTopology,
    FleetHealthConfig,
    IcgmmConfig,
    ParallelConfig,
)
from repro.core.parallel import ParallelExecutor, ReplayTask
from repro.core.pipeline import (
    PreparedWorkload,
    StagedPipeline,
    StageProfiler,
)
from repro.core.policy import CombinedIcgmmPolicy, build_policy
from repro.cxl.device import DEVICE_DRAM_HIT_NS
from repro.cxl.link import CxlLinkSpec
from repro.hardware.latency import DevicePathLatencyModel
from repro.hardware.ssd import SSD_CATALOG, SsdSpec
from repro.serving.health import FleetHealthMonitor
from repro.serving.metrics import RollingMetrics
from repro.traces.record import CACHE_LINE_SIZE

#: Tag-space offset of failover traffic.  A failed device's accesses
#: are re-placed onto healthy devices under ``global_page + OFFSET``
#: local tags: far above any home tag (interleaved local pages and
#: global pages alike stay below 2^56 for realistic traces), unique
#: per global page, and identical across chunks -- so a page that
#: fails over twice during one outage hits the copy its first
#: failover filled.
FAILOVER_TAG_OFFSET = np.int64(1) << 56


def _stats_minus(total: CacheStats, part: CacheStats) -> CacheStats:
    """Counter-wise ``total - part`` (splitting off a traffic lens)."""
    from dataclasses import fields

    return CacheStats(
        **{
            f.name: getattr(total, f.name) - getattr(part, f.name)
            for f in fields(CacheStats)
        }
    )


@dataclass(frozen=True)
class DeviceReplayResult:
    """One device's share of a fabric run.

    Attributes
    ----------
    device_id:
        Position in the fabric.
    link:
        The device's CXL link model.
    stats:
        Cache counters of the device's sub-stream.
    time_ns:
        End-to-end service time of the sub-stream (link included).
    outcomes:
        Per-access ``OUTCOME_*`` codes of the device's sub-stream,
        kept only when the replay was asked for them
        (``keep_outcomes=True``); ``None`` otherwise, so a large
        fleet replay never holds one outcome array per device alive.
    failover_stats:
        Counters of *this device's home traffic served elsewhere*
        while it was failed over (chaos runs only; ``None`` without
        an injector).  The accesses themselves are counted in the
        serving device's :attr:`stats` -- this lens exists so zero
        access loss and degraded-mode quality are checkable per
        failed device.
    degraded_time_ns:
        Extra service time accrued in degraded mode (link-latency
        windows, failover-path premium); already included in
        :attr:`time_ns`.
    """

    device_id: int
    link: CxlLinkSpec
    stats: CacheStats
    time_ns: int
    outcomes: np.ndarray | None = None
    failover_stats: CacheStats | None = None
    degraded_time_ns: int = 0

    @property
    def accesses(self) -> int:
        """Requests routed to this device."""
        return self.stats.accesses

    @property
    def average_latency_us(self) -> float:
        """Mean end-to-end request latency, in microseconds."""
        if self.stats.accesses == 0:
            return 0.0
        return self.time_ns / self.stats.accesses / 1_000.0


@dataclass(frozen=True)
class FabricRunResult:
    """Aggregate outcome of replaying a stream over the fabric."""

    devices: tuple[DeviceReplayResult, ...]

    @cached_property
    def totals(self) -> CacheStats:
        """Merged counters across all devices (computed once, lazily)."""
        totals = CacheStats()
        for device in self.devices:
            totals = totals.merge(device.stats)
        return totals

    @property
    def accesses(self) -> int:
        """All replayed requests."""
        return sum(d.stats.accesses for d in self.devices)

    @property
    def total_time_ns(self) -> int:
        """Total service time across all devices."""
        return sum(d.time_ns for d in self.devices)

    @property
    def average_latency_us(self) -> float:
        """Fleet-wide mean request latency, in microseconds."""
        accesses = self.accesses
        if accesses == 0:
            return 0.0
        return self.total_time_ns / accesses / 1_000.0

    def as_dict(self) -> dict:
        """Flat summary (for benches and the CLI)."""
        return {
            "accesses": self.accesses,
            "miss_rate": self.totals.miss_rate,
            "total_time_ns": self.total_time_ns,
            "average_latency_us": self.average_latency_us,
            "devices": [
                {
                    "device_id": d.device_id,
                    "accesses": d.accesses,
                    "miss_rate": d.stats.miss_rate,
                    "time_ns": d.time_ns,
                    "average_latency_us": d.average_latency_us,
                    "link_request_ns": d.link.request_latency_ns(
                        CACHE_LINE_SIZE
                    ),
                    # Degraded lens only on chaos runs, so the
                    # fault-free payload stays byte-identical to the
                    # pre-chaos format.
                    **(
                        {
                            "failover_accesses": (
                                d.failover_stats.accesses
                            ),
                            "degraded_time_ns": d.degraded_time_ns,
                        }
                        if d.failover_stats is not None
                        else {}
                    ),
                }
                for d in self.devices
            ],
        }


class CxlFabric:
    """A fleet of CXL expansion devices behind one host.

    Each device carries its own full :attr:`IcgmmConfig.geometry`
    DRAM cache, policy instance, and resumable replay cursor.

    Parameters
    ----------
    topology:
        Device count, placement rule and per-device link parameters.
    config:
        System profile shared by all devices (geometry, simulator
        selection); the fabric replays through this config's staged
        pipeline.
    ssd:
        Backing-store latency profile used by the pricing model.
    hit_latency_ns:
        Device-DRAM hit service time.
    parallel:
        Multicore replay knobs; overrides
        :attr:`FabricTopology.parallel`, which in turn overrides
        :attr:`IcgmmConfig.parallel`.  Each round of per-device
        simulate calls is dispatched through one persistent
        :class:`~repro.core.parallel.ParallelExecutor` and merged in
        device order, so any worker count is bit-identical to
        sequential replay.  Call :meth:`close` when done with a
        process-backend fabric (worker pool, shared segments).
    """

    def __init__(
        self,
        topology: FabricTopology | None = None,
        config: IcgmmConfig | None = None,
        ssd: SsdSpec | None = None,
        hit_latency_ns: int = DEVICE_DRAM_HIT_NS,
        parallel: ParallelConfig | None = None,
        chaos: ChaosConfig | None = None,
        health: FleetHealthConfig | None = None,
        telemetry=None,
    ) -> None:
        self.topology = (
            topology if topology is not None else FabricTopology()
        )
        self.pipeline = StagedPipeline(config)
        self.config = self.pipeline.config
        if parallel is None:
            parallel = (
                self.topology.parallel
                if self.topology.parallel is not None
                else self.config.parallel
            )
        self.parallel = parallel
        self._executor = ParallelExecutor.from_config(parallel)
        # Chaos wiring: None when disabled so every hot-path gate is
        # an ``is not None`` check and a fault-free run executes the
        # exact pre-chaos code path (tests/chaos parity).
        self.injector = FaultInjector.from_config(
            chaos,
            n_devices=self.topology.n_devices,
            task_lanes=self.topology.n_devices,
        )
        if self.injector is not None:
            self._executor.fault_hook = (
                self.injector.worker_crash_attempts
            )
        # Fleet health monitoring follows the same contract: None
        # when disabled, so a monitor-free run executes the exact
        # pre-monitor code path.  The monitor owns its own
        # RollingMetrics (keyed per device) so its per-chunk timed
        # records never double-count into this fabric's degraded
        # lens; its quarantine/reinstate transitions land on
        # ``self.metrics``'s event timeline.
        self.monitor = FleetHealthMonitor.from_config(
            health, n_devices=self.topology.n_devices
        )
        self.metrics = RollingMetrics()
        self._shared: list = []
        ssd = ssd if ssd is not None else SSD_CATALOG["tlc"]
        n = self.topology.n_devices
        overheads = self.topology.link_overhead_ns
        bandwidths = self.topology.link_bandwidth_gb_s
        default = CxlLinkSpec()
        self.links: tuple[CxlLinkSpec, ...] = tuple(
            CxlLinkSpec(
                name=f"fabric-link-{i}",
                round_trip_overhead_ns=(
                    overheads[i]
                    if overheads is not None
                    else default.round_trip_overhead_ns
                ),
                bandwidth_gb_s=(
                    bandwidths[i]
                    if bandwidths is not None
                    else default.bandwidth_gb_s
                ),
            )
            for i in range(n)
        )
        self.pricing: tuple[DevicePathLatencyModel, ...] = tuple(
            DevicePathLatencyModel(
                ssd=ssd,
                hit_latency_ns=hit_latency_ns,
                link_request_ns=link.request_latency_ns(CACHE_LINE_SIZE),
            )
            for link in self.links
        )
        # Devices ranked fastest link first; the score placement maps
        # its hottest bucket to self._device_rank[0].
        self._device_rank = np.argsort(
            [p.link_request_ns for p in self.pricing], kind="stable"
        ).astype(np.int64)
        self._strategy: str | None = None
        self._score_cuts: np.ndarray | None = None
        # Telemetry wiring follows the chaos contract: None when
        # disabled, so every hot-path gate is an ``is not None`` check
        # and a telemetry-free run executes the exact pre-telemetry
        # code path (tests/obs parity).
        self.telemetry = telemetry
        if telemetry is not None:
            self.pipeline.telemetry = telemetry
            self._bind_telemetry()
        self.reset()

    def _bind_telemetry(self) -> None:
        """Register the fabric's instruments and collectors."""
        from repro.obs import bridge
        from repro.obs.registry import RATIO_EDGES

        registry = self.telemetry.registry
        self._m_chunks = registry.counter(
            "fabric_chunks_total",
            help="Chunks streamed through the fleet.",
        )
        self._m_accesses = registry.counter(
            "fabric_accesses_total",
            help="Requests replayed across all devices.",
        )
        self._m_chunk_miss = registry.histogram(
            "fabric_chunk_miss_ratio",
            edges=RATIO_EDGES,
            help="Per-chunk fleet-wide miss ratio.",
        )
        device_accesses = registry.counter(
            "device_accesses_total",
            help="Requests routed to each device.",
            labels=("device",),
        )
        device_miss = registry.gauge(
            "device_miss_ratio",
            help="Cumulative miss ratio per device.",
            labels=("device",),
        )
        device_time = registry.counter(
            "device_time_ns_total",
            help="Priced service time per device (link included).",
            labels=("device",),
        )
        failover = registry.counter(
            "fabric_failover_accesses_total",
            help="Home-device accesses served elsewhere during"
            " outages.",
        )
        degraded_time = registry.counter(
            "fabric_degraded_time_ns_total",
            help="Extra service time accrued in degraded mode.",
        )

        def collect() -> None:
            for device in range(self.topology.n_devices):
                stats = self._device_stats[device]
                device_accesses.labels(device=device).set(
                    stats.accesses
                )
                device_miss.labels(device=device).set(
                    stats.miss_rate if stats.accesses else 0.0
                )
                device_time.labels(device=device).set(
                    self.pricing[device].total_time_ns(stats)
                    + self._extra_time_ns[device]
                )
            failover.set(
                sum(s.accesses for s in self._failover_stats)
            )
            degraded_time.set(sum(self._extra_time_ns))

        registry.register_collector(collect)
        # Telemetry implies stage accounting: attach a profiler when
        # --profile did not already hang one on the pipeline.
        if self.pipeline.profiler is None:
            self.pipeline.profiler = StageProfiler()
        bridge.register_stage_profiler(
            registry, self.pipeline.profiler
        )
        bridge.register_rolling(registry, self.metrics, scope="fabric")
        bridge.register_executor(
            registry, self._executor, component="fabric"
        )
        if self.injector is not None:
            bridge.register_injector(registry, self.injector)
        if self.monitor is not None:
            bridge.register_health_monitor(registry, self.monitor)
        self.telemetry.add_event_source(
            bridge.rolling_event_source(self.metrics, scope="fabric")
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Drop all device caches, cursors and accumulated counters."""
        n = self.topology.n_devices
        for handle in self._shared:
            if handle is not None:
                handle.close()
        self.caches = []
        self._shared = []
        for _ in range(n):
            cache, handle = self._executor.make_cache(
                self.config.geometry
            )
            self.caches.append(cache)
            self._shared.append(handle)
        self._cursors = [0] * n
        self._device_stats = [CacheStats() for _ in range(n)]
        self._device_outcomes: list = [None] * n
        self._policies: list | None = None
        # Chaos bookkeeping (all zero / empty on fault-free runs).
        self._chunk_index = 0
        self._down: dict[int, int] = {}
        self._slow: dict[int, int] = {}
        self._failover_stats = [CacheStats() for _ in range(n)]
        self._degraded_stats = [CacheStats() for _ in range(n)]
        self._extra_time_ns = [0] * n
        self._chunk_premium = [0] * n
        self._chunk_foreign = [CacheStats() for _ in range(n)]

    def close(self) -> None:
        """Release the worker pool and any shared-memory planes."""
        self._executor.shutdown()
        for handle in self._shared:
            if handle is not None:
                handle.close()
        self._shared = [None] * len(self._shared)

    def __enter__(self) -> "CxlFabric":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def bind(
        self,
        strategy: str,
        admission_threshold: float = 0.0,
        page_score_map: dict[int, float] | None = None,
        score_cuts: np.ndarray | None = None,
    ) -> None:
        """Reset the fleet and build per-device policies for a strategy.

        Parameters
        ----------
        strategy:
            Fig. 6 strategy driving every device.
        admission_threshold:
            Sec. 3.2 score cut-off (admission-enabled strategies).
        page_score_map:
            Global page -> marginal score mapping; required by
            ``gmm-caching-eviction`` (each device receives the slice
            routed to it, keyed by the device-local page the
            simulator sees, exactly like the serving shards).
        score_cuts:
            Bucket boundaries of the ``score`` placement; when
            omitted they are derived as unique-page quantiles of
            ``page_score_map``'s values.
        """
        self.reset()
        self._strategy = strategy
        n = self.topology.n_devices
        combined = strategy == "gmm-caching-eviction"
        if self.topology.placement == "score":
            if score_cuts is not None:
                self._score_cuts = np.asarray(
                    score_cuts, dtype=np.float64
                )
            elif page_score_map:
                marginals = np.fromiter(
                    page_score_map.values(),
                    dtype=np.float64,
                    count=len(page_score_map),
                )
                self._score_cuts = self._cuts_from_marginals(marginals)
            else:
                raise ValueError(
                    "score placement needs score_cuts or a"
                    " page_score_map to derive them from"
                )
        self._device_page_maps: list[dict[int, float]] = [
            {} for _ in range(n)
        ]
        if combined:
            if page_score_map is None:
                raise ValueError(
                    "gmm-caching-eviction requires page_score_map"
                )
            keys = np.fromiter(
                page_score_map.keys(),
                dtype=np.int64,
                count=len(page_score_map),
            )
            values = np.fromiter(
                page_score_map.values(),
                dtype=np.float64,
                count=len(page_score_map),
            )
            self._extend_page_maps(keys, values)
        self._policies = [
            build_policy(
                strategy,
                admission_threshold,
                page_scores=(
                    self._device_page_maps[d] if combined else None
                ),
            )
            for d in range(n)
        ]

    def _cuts_from_marginals(self, marginals: np.ndarray) -> np.ndarray:
        """Equal-population score-bucket boundaries for placement."""
        n = self.topology.n_devices
        if n == 1 or marginals.size == 0:
            return np.empty(0, dtype=np.float64)
        quantiles = np.arange(1, n) / n
        return np.quantile(np.unique(marginals), quantiles)

    def _extend_page_maps(
        self, pages: np.ndarray, marginals: np.ndarray
    ) -> None:
        """Route (page, marginal) pairs into the per-device dicts."""
        device_ids, local_pages = self.place(pages, marginals)
        for device in np.unique(device_ids).tolist():
            mask = device_ids == device
            self._device_page_maps[device].update(
                zip(
                    local_pages[mask].tolist(),
                    marginals[mask].tolist(),
                    strict=True,
                )
            )

    # ------------------------------------------------------------------
    # Stage: Place
    # ------------------------------------------------------------------
    def place(
        self,
        pages: np.ndarray,
        page_marginals: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(device_id, local_page)`` arrays.

        ``interleave`` divides the page by the device count so the
        local page doubles as a collision-free tag; ``range`` and
        ``score`` keep the global page (tags already unique).  The
        ``score`` placement needs the per-access time-marginalised
        scores and a bound fabric (for the bucket boundaries).
        """
        pages = np.asarray(pages, dtype=np.int64)
        n = self.topology.n_devices
        placement = self.topology.placement
        if placement == "interleave":
            return pages % n, pages // n
        if placement == "range":
            stride = self.topology.range_stride_pages
            return (pages // stride) % n, pages
        if page_marginals is None:
            raise ValueError(
                "score placement needs per-access page_marginals"
            )
        if self._score_cuts is None:
            raise ValueError(
                "score placement needs bind() (or score_cuts) first"
            )
        marginals = np.asarray(page_marginals, dtype=np.float64)
        buckets = np.searchsorted(
            self._score_cuts, marginals, side="right"
        )
        # Hottest bucket (highest marginal) -> fastest link.
        device_ids = self._device_rank[n - 1 - buckets]
        return device_ids, pages

    # ------------------------------------------------------------------
    # Stage: Replay (resumable, parallel)
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        devices: list[int],
        tasks: list[ReplayTask],
    ) -> list:
        """One concurrent round of per-device simulate calls.

        Results come back in task order (deterministic merge); the
        post-run policy objects are adopted so a process-backend
        round-trip stays resumable, and the combined strategy's
        per-device score maps are re-aliased to the adopted policies.
        """
        results = self._executor.replay(
            tasks,
            simulator=self.config.simulator,
            profiler=self.pipeline.profiler,
        )
        for device, result in zip(devices, results, strict=True):
            policy = result.policy
            self._policies[device] = policy
            if isinstance(policy, CombinedIcgmmPolicy):
                self._device_page_maps[device] = policy._page_scores
        return results

    def ingest(
        self,
        pages: np.ndarray,
        is_write: np.ndarray,
        scores: np.ndarray | None = None,
        page_marginals: np.ndarray | None = None,
    ) -> CacheStats:
        """Stream one chunk through the fleet; returns its counters.

        Requires a prior :meth:`bind`.  Each device's slice resumes
        at that device's cursor, so chunked ingestion is bit-identical
        to a one-shot :meth:`run_prepared` with no warm-up cut.  For
        the combined strategy, ``page_marginals`` extends the
        per-device eviction metadata with newly-seen pages.

        Under chaos (an injector is wired), each chunk first consults
        the fault timeline at this chunk's logical index: a failed
        device's accesses fail over to healthy devices (score-aware
        when marginals are present, priced at the topology's degraded
        link factor) or -- with ``failover=False`` or no healthy
        device left -- are served SSD-direct on the failed device's
        path; degraded link windows inflate the affected device's
        link component.  All of it is deterministic in the chunk
        index, so any worker count observes the identical timeline.
        """
        if self._policies is None:
            raise ValueError("bind() a strategy before ingesting")
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if self._strategy == "gmm-caching-eviction":
            if page_marginals is None:
                raise ValueError(
                    "gmm-caching-eviction ingestion needs"
                    " page_marginals"
                )
            unique_pages, first = np.unique(pages, return_index=True)
            self._extend_page_maps(
                unique_pages,
                np.asarray(page_marginals, dtype=np.float64)[first],
            )
        device_ids, local_pages = self.place(pages, page_marginals)
        chunk_index = self._chunk_index
        self._chunk_index += 1
        span = (
            self.telemetry.tracer.begin(
                "fabric", "chunk", index=chunk_index
            )
            if self.telemetry is not None
            else None
        )
        chunk = CacheStats()
        home_ids = device_ids
        failover_mask = None
        link_factors: dict[int, float] = {}
        slow_factors: dict[int, float] = {}
        failed: list[int] = []
        if self.injector is not None:
            failed = self._outage_transitions(chunk_index)
            link_factors = {
                d: self.injector.link_factor(d, chunk_index)
                for d in range(self.topology.n_devices)
            }
            slow_factors = {
                d: self.injector.failslow_factor(d, chunk_index)
                for d in range(self.topology.n_devices)
            }
            self._failslow_transitions(slow_factors, chunk_index)
        if self.monitor is not None:
            # Quarantined devices leave placement exactly like failed
            # ones: their home traffic re-homes score-aware onto the
            # remaining fleet (decisions from the previous chunk's
            # ``step``, so the cut is causal and worker-invariant).
            self._chunk_premium = [0] * self.topology.n_devices
            self._chunk_foreign = [
                CacheStats() for _ in range(self.topology.n_devices)
            ]
            blocked = self.monitor.blocked_devices()
            if blocked:
                failed = sorted(set(failed).union(blocked))
        if failed:
            device_ids, local_pages, failover_mask, chunk = (
                self._apply_failover(
                    failed,
                    pages,
                    is_write,
                    device_ids,
                    local_pages,
                    page_marginals,
                    chunk,
                )
            )
        if scores is not None:
            scores = np.asarray(scores, dtype=np.float64)
        need_outcome = (
            failover_mask is not None and bool(failover_mask.any())
        )
        devices: list[int] = []
        tasks: list[ReplayTask] = []
        for device in range(self.topology.n_devices):
            positions = np.nonzero(device_ids == device)[0]
            if positions.size == 0:
                continue
            devices.append(device)
            tasks.append(
                ReplayTask(
                    cache=self.caches[device],
                    policy=self._policies[device],
                    pages=local_pages[positions],
                    is_write=is_write[positions],
                    scores=(
                        scores[positions]
                        if scores is not None
                        else None
                    ),
                    index_offset=self._cursors[device],
                    record_outcome=need_outcome,
                    shared=self._shared[device],
                )
            )
        served: dict[int, CacheStats] = {}
        for device, task, result in zip(
            devices, tasks, self._dispatch(devices, tasks), strict=True
        ):
            self._cursors[device] += int(task.pages.shape[0])
            self._device_stats[device] = self._device_stats[
                device
            ].merge(result.stats)
            chunk = chunk.merge(result.stats)
            if self.monitor is not None:
                served[device] = result.stats
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "fabric",
                    "device_round",
                    device=device,
                    accesses=result.stats.accesses,
                )
            factor = link_factors.get(device, 1.0)
            slow = slow_factors.get(device, 1.0)
            premium = 0
            if factor > 1.0:
                # Only the link component of the path scales during a
                # degradation window; cache behaviour is unaffected.
                premium += int(
                    round(
                        result.stats.accesses
                        * self.pricing[device].link_request_ns
                        * (factor - 1.0)
                    )
                )
            if slow > 1.0:
                # A fail-slow ramp scales the whole device path; the
                # multiplier grows per chunk (see
                # ``FaultInjector.failslow_factor``).
                premium += self.pricing[device].failslow_premium_ns(
                    result.stats, slow
                )
            if premium:
                self._add_premium(device, premium)
                self._degraded_stats[device] = self._degraded_stats[
                    device
                ].merge(result.stats)
                self.metrics.record(
                    f"device:{device}", result.stats, degraded=True
                )
            if need_outcome:
                positions = np.nonzero(device_ids == device)[0]
                self._account_failover(
                    device,
                    result.outcome,
                    positions,
                    failover_mask,
                    home_ids,
                    is_write,
                )
        if self.monitor is not None:
            # Feed the monitor every serving device's chunk counters
            # with the *priced* service time (premiums included --
            # fail-slow is invisible in the counters themselves),
            # then advance the state machine; transitions land on
            # this fabric's event timeline and take effect at the
            # next chunk's placement.  Only *intrinsic* traffic is
            # observed: failover accesses a device absorbs for a
            # downed peer (and their degraded-link premium) are
            # borrowed load, not device sickness -- counting them
            # would make the monitor quarantine the healthy devices
            # covering an outage.
            for device, stats in served.items():
                intrinsic = _stats_minus(
                    stats, self._chunk_foreign[device]
                )
                self.monitor.observe(
                    device,
                    intrinsic,
                    self.pricing[device].total_time_ns(intrinsic)
                    + self._chunk_premium[device],
                )
            for kind, device, info in self.monitor.step(chunk_index):
                self.metrics.record_event(
                    f"device:{device}", kind, chunk_index, **info
                )
        if self.telemetry is not None:
            self._m_chunks.inc()
            self._m_accesses.inc(chunk.accesses)
            self._m_chunk_miss.observe(
                chunk.miss_rate if chunk.accesses else 0.0
            )
            self.telemetry.tracer.end(span, accesses=chunk.accesses)
        return chunk

    # ------------------------------------------------------------------
    # Chaos: failover, degradation, reinstatement
    # ------------------------------------------------------------------
    def _add_premium(
        self, device: int, time_ns: int, observe: bool = True
    ) -> None:
        """Accrue a degraded-mode pricing premium for one device.

        The per-chunk share is tracked separately so the health
        monitor sees each chunk's true priced latency, premiums
        included.  ``observe=False`` keeps the premium out of the
        monitor's lens (failover-path overhead charged to a healthy
        device covering a downed peer) while still pricing it.
        """
        self._extra_time_ns[device] += time_ns
        if observe and self.monitor is not None:
            self._chunk_premium[device] += time_ns

    def _failslow_transitions(
        self, slow_factors: dict[int, float], chunk_index: int
    ) -> None:
        """Record fail-slow onset/clear events on the metrics timeline.

        A ramp has no binary down/up edge in the injector's queries,
        so the fabric stamps the transition the first chunk a
        device's factor leaves 1.0 and the first chunk it returns.
        """
        for device, factor in slow_factors.items():
            if factor > 1.0 and device not in self._slow:
                self._slow[device] = chunk_index
                self.metrics.record_event(
                    f"device:{device}",
                    "failslow-onset",
                    chunk_index,
                )
            elif factor <= 1.0 and device in self._slow:
                del self._slow[device]
                self.metrics.record_event(
                    f"device:{device}",
                    "failslow-cleared",
                    chunk_index,
                )

    def _outage_transitions(self, chunk_index: int) -> list[int]:
        """Devices down this chunk, recording down/restore events.

        Reinstatement is automatic: the moment a device's outage
        window ends, :meth:`place` routes its home traffic back (the
        home cache kept its pre-outage contents, so warm pages hit
        again immediately).  The exception is an outage that begins
        *while the device is fail-slow*: that is a watchdog reset of
        a sick controller, and a controller reset loses the volatile
        DRAM cache state -- the device comes back cold and must
        re-fault its working set.  (This is what makes recovery-by-
        waiting so expensive under fail-slow, and health-driven
        quarantine cheap by comparison.)
        """
        failed: list[int] = []
        for device in range(self.topology.n_devices):
            if self.injector.device_down(device, chunk_index):
                failed.append(device)
                if device not in self._down:
                    self._down[device] = chunk_index
                    self.metrics.record_event(
                        f"device:{device}",
                        "device-down",
                        chunk_index,
                    )
                    if (
                        self.injector.failslow_factor(
                            device, chunk_index
                        )
                        > 1.0
                    ):
                        self._wipe_cache(device)
            elif device in self._down:
                del self._down[device]
                self.metrics.record_event(
                    f"device:{device}",
                    "device-restored",
                    chunk_index,
                )
        return failed

    def _wipe_cache(self, device: int) -> None:
        """Cold-restart one device's cache planes (watchdog reset).

        In-place fills, so process-backend shared-memory planes see
        the wipe too.  Dirty blocks are simply lost -- a crashed
        controller never got to write them back -- which only
        forfeits the write-back the pricing model would have charged
        on their eviction.
        """
        from repro.cache.setassoc import INVALID

        cache = self.caches[device]
        cache.tags.fill(INVALID)
        cache.dirty.fill(False)
        cache.meta.fill(0.0)
        cache.stamp.fill(0.0)

    def _failover_targets(
        self,
        pages: np.ndarray,
        marginals: np.ndarray | None,
        healthy: np.ndarray,
    ) -> np.ndarray:
        """Healthy device per failed-over access (deterministic).

        Score-aware when per-access marginals are available: the
        chunk's failed-over traffic is bucketed into
        ``len(healthy)`` equal-population score bands and the hottest
        band lands on the fastest healthy link -- the same policy the
        ``score`` placement applies fleet-wide.  Without marginals it
        falls back to page-modulo spreading.
        """
        k = int(healthy.size)
        if k == 1 or marginals is None:
            return healthy[pages % k]
        marginals = np.asarray(marginals, dtype=np.float64)
        cuts = np.quantile(
            np.unique(marginals), np.arange(1, k) / k
        )
        buckets = np.searchsorted(cuts, marginals, side="right")
        healthy_set = set(healthy.tolist())
        rank = np.asarray(
            [
                d
                for d in self._device_rank.tolist()
                if d in healthy_set
            ],
            dtype=np.int64,
        )
        return rank[k - 1 - buckets]

    def _apply_failover(
        self,
        failed: list[int],
        pages: np.ndarray,
        is_write: np.ndarray,
        device_ids: np.ndarray,
        local_pages: np.ndarray,
        page_marginals: np.ndarray | None,
        chunk: CacheStats,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, CacheStats]:
        """Re-target failed devices' accesses for one chunk.

        With failover enabled and at least one healthy device, the
        failed homes' accesses move onto healthy devices under the
        collision-free :data:`FAILOVER_TAG_OFFSET` tag space (the
        combined strategy's backup score maps are extended with the
        same tags).  Otherwise the accesses are served SSD-direct and
        accounted as bypasses on their home device -- degraded, but
        never lost.
        """
        n = self.topology.n_devices
        device_ids = device_ids.copy()
        local_pages = local_pages.copy()
        failed_arr = np.asarray(failed, dtype=np.int64)
        mask = np.isin(device_ids, failed_arr)
        if not mask.any():
            return device_ids, local_pages, None, chunk
        healthy = np.asarray(
            [d for d in range(n) if d not in set(failed)],
            dtype=np.int64,
        )
        if healthy.size == 0 or not self.topology.failover:
            # SSD-direct: every affected access bypasses the caches
            # entirely, charged to its home device's path.
            for device in failed:
                sub = device_ids == device
                count = int(np.count_nonzero(sub))
                if count == 0:
                    continue
                stats = stats_from_outcomes(
                    np.full(count, OUTCOME_BYPASS, dtype=np.uint8),
                    is_write[sub],
                )
                self._device_stats[device] = self._device_stats[
                    device
                ].merge(stats)
                self._failover_stats[device] = self._failover_stats[
                    device
                ].merge(stats)
                chunk = chunk.merge(stats)
                self.metrics.record(
                    f"device:{device}", stats, degraded=True
                )
            device_ids[mask] = -1
            return device_ids, local_pages, None, chunk
        marginals = (
            np.asarray(page_marginals, dtype=np.float64)[mask]
            if page_marginals is not None
            else None
        )
        targets = self._failover_targets(
            pages[mask], marginals, healthy
        )
        failover_tags = pages[mask] + FAILOVER_TAG_OFFSET
        device_ids[mask] = targets
        local_pages[mask] = failover_tags
        if self._strategy == "gmm-caching-eviction":
            for device in np.unique(targets).tolist():
                sub = targets == device
                self._device_page_maps[device].update(
                    zip(
                        failover_tags[sub].tolist(),
                        marginals[sub].tolist(),
                        strict=True,
                    )
                )
        return device_ids, local_pages, mask, chunk

    def _account_failover(
        self,
        device: int,
        outcome: np.ndarray,
        positions: np.ndarray,
        failover_mask: np.ndarray,
        home_ids: np.ndarray,
        is_write: np.ndarray,
    ) -> None:
        """Split one serving device's chunk outcome by failed home.

        Charges the failover-path premium (degraded link factor on
        the serving device's link) and credits the counters to each
        failed home device's failover lens.
        """
        task_mask = failover_mask[positions]
        count = int(np.count_nonzero(task_mask))
        if count == 0:
            return
        self._add_premium(
            device,
            int(
                round(
                    count
                    * self.pricing[device].link_request_ns
                    * (self.topology.degraded_link_factor - 1.0)
                )
            ),
            observe=False,
        )
        failover_positions = positions[task_mask]
        homes = home_ids[failover_positions]
        for home in np.unique(homes).tolist():
            sub = homes == home
            stats = stats_from_outcomes(
                outcome[task_mask][sub],
                is_write[failover_positions][sub],
            )
            if self.monitor is not None:
                self._chunk_foreign[device] = self._chunk_foreign[
                    device
                ].merge(stats)
            self._failover_stats[home] = self._failover_stats[
                home
            ].merge(stats)
            self.metrics.record(
                f"device:{home}", stats, degraded=True
            )

    def results(self) -> FabricRunResult:
        """Price the accumulated per-device counters."""
        chaos = self.injector is not None or self.monitor is not None
        devices = tuple(
            DeviceReplayResult(
                device_id=d,
                link=self.links[d],
                stats=self._device_stats[d],
                time_ns=self.pricing[d].total_time_ns(
                    self._device_stats[d]
                )
                + self._extra_time_ns[d],
                outcomes=self._device_outcomes[d],
                failover_stats=(
                    self._failover_stats[d] if chaos else None
                ),
                degraded_time_ns=(
                    self._extra_time_ns[d] if chaos else 0
                ),
            )
            for d in range(self.topology.n_devices)
        )
        return FabricRunResult(devices=devices)

    # ------------------------------------------------------------------
    # Offline one-shot entry point
    # ------------------------------------------------------------------
    def run_prepared(
        self,
        prepared: PreparedWorkload,
        strategy: str,
        warmup_fraction: float | None = None,
        keep_outcomes: bool = False,
        chunk_requests: int = 8192,
    ) -> FabricRunResult:
        """Replay a prepared workload over the fleet in one shot.

        Binds the strategy, places the full stream, and replays each
        device's sub-stream through the pipeline's Simulate stage
        with the warm-up cut applied *per sub-stream* -- which is
        exactly what a single-shot offline run on that sub-stream
        does, so per-device counters match it bit for bit (the
        fabric parity suite asserts this for every placement and
        strategy).  Device replays run concurrently per
        :attr:`parallel` and merge in device order.

        **Chaos-capable.**  When a fault injector or health monitor
        is wired, the one-shot fan-out cannot consult the fault
        timeline (faults tick on chunk indices), so the replay
        degrades to the chunked ingest path in ``chunk_requests``
        slices: every fault channel (outages, correlated blasts,
        link windows, fail-slow ramps, worker crashes) and the fleet
        monitor fire exactly as on a streamed run, with zero access
        loss.  Like :meth:`run_streamed`, the chaos path measures
        every access (steady-state serving; ``warmup_fraction`` is
        not applied) and does not support ``keep_outcomes``.  With
        chaos and monitoring disabled this method executes the exact
        pre-chaos one-shot path, byte for byte -- the parity suite
        asserts it.

        With ``keep_outcomes=False`` (the default) only the
        per-device :class:`~repro.cache.stats.CacheStats` are
        aggregated -- no per-access outcome array is ever allocated,
        so an 8-device x 1M-access replay costs counters, not eight
        megabyte-scale buffers.  Pass ``keep_outcomes=True`` to
        record each device's ``OUTCOME_*`` stream on
        :attr:`DeviceReplayResult.outcomes` for downstream per-access
        accounting.
        """
        if self.injector is not None or self.monitor is not None:
            if keep_outcomes:
                raise ValueError(
                    "keep_outcomes is not supported on a chaos or"
                    " monitored run_prepared: the chunked replay"
                    " aggregates counters only"
                )
            return self.run_streamed(
                prepared, strategy, chunk_requests=chunk_requests
            )
        if warmup_fraction is None:
            warmup_fraction = self.config.warmup_fraction
        with self.pipeline.stage_scope("score"):
            page_score_map = (
                prepared.page_score_map()
                if strategy == "gmm-caching-eviction"
                or self.topology.placement == "score"
                else None
            )
            score_cuts = None
            if self.topology.placement == "score":
                score_cuts = self._cuts_from_marginals(
                    np.fromiter(
                        page_score_map.values(),
                        dtype=np.float64,
                        count=len(page_score_map),
                    )
                )
            self.bind(
                strategy,
                prepared.engine.admission_threshold,
                page_score_map=(
                    page_score_map
                    if strategy == "gmm-caching-eviction"
                    else None
                ),
                score_cuts=score_cuts,
            )
            scores = self.pipeline.strategy_scores(prepared, strategy)
            device_ids, local_pages = self.place(
                prepared.page_indices, prepared.page_frequency_scores
            )
        devices: list[int] = []
        tasks: list[ReplayTask] = []
        for device in range(self.topology.n_devices):
            positions = np.nonzero(device_ids == device)[0]
            if positions.size == 0:
                continue
            devices.append(device)
            tasks.append(
                ReplayTask(
                    cache=self.caches[device],
                    policy=self._policies[device],
                    pages=local_pages[positions],
                    is_write=prepared.is_write[positions],
                    scores=(
                        scores[positions]
                        if scores is not None
                        else None
                    ),
                    warmup_fraction=warmup_fraction,
                    record_outcome=keep_outcomes,
                    shared=self._shared[device],
                )
            )
        # The whole fan-out is timed as one Simulate section (the
        # profiler accounts stages, not workers).
        with self.pipeline.stage_scope("simulate"):
            results = self._dispatch(devices, tasks)
        for device, task, result in zip(
            devices, tasks, results, strict=True
        ):
            self._cursors[device] += int(task.pages.shape[0])
            self._device_stats[device] = result.stats
            if keep_outcomes:
                self._device_outcomes[device] = result.outcome
        with self.pipeline.stage_scope("price"):
            return self.results()

    def run_streamed(
        self,
        prepared: PreparedWorkload,
        strategy: str,
        chunk_requests: int = 8192,
    ) -> FabricRunResult:
        """Replay a prepared workload through the chunked ingest path.

        Binds exactly like :meth:`run_prepared`, then streams the
        stream chunk by chunk through :meth:`ingest` -- the path the
        chaos harness hooks (outage failover, link degradation).
        Streamed replay measures every access (no warm-up cut): it
        models steady-state serving, not the offline Fig. 6 protocol.
        """
        with self.pipeline.stage_scope("score"):
            page_score_map = (
                prepared.page_score_map()
                if strategy == "gmm-caching-eviction"
                or self.topology.placement == "score"
                else None
            )
            score_cuts = None
            if self.topology.placement == "score":
                score_cuts = self._cuts_from_marginals(
                    np.fromiter(
                        page_score_map.values(),
                        dtype=np.float64,
                        count=len(page_score_map),
                    )
                )
            self.bind(
                strategy,
                prepared.engine.admission_threshold,
                page_score_map=(
                    page_score_map
                    if strategy == "gmm-caching-eviction"
                    else None
                ),
                score_cuts=score_cuts,
            )
            scores = self.pipeline.strategy_scores(prepared, strategy)
        pages = prepared.page_indices
        marginals = prepared.page_frequency_scores
        with self.pipeline.stage_scope("simulate"):
            for start in range(0, pages.shape[0], chunk_requests):
                sl = slice(start, start + chunk_requests)
                self.ingest(
                    pages[sl],
                    prepared.is_write[sl],
                    scores=scores[sl] if scores is not None else None,
                    page_marginals=(
                        marginals[sl] if marginals is not None else None
                    ),
                )
        with self.pipeline.stage_scope("price"):
            return self.results()

    def __repr__(self) -> str:
        return (
            f"CxlFabric(n_devices={self.topology.n_devices},"
            f" placement={self.topology.placement!r},"
            f" strategy={self._strategy!r})"
        )

"""The CXL memory-expansion device: DRAM cache over SSD.

This is the device half of Fig. 1: an SSD (~TB) exposed through
CXL.mem, fronted by the device-DRAM cache that ICGMM manages.  The
class wraps the cache substrate into a stateful per-request interface
returning service latencies, which the router composes with the link
model into end-to-end access times.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import CacheStats
from repro.hardware.ssd import SsdLatencyEmulator

#: Device DRAM service time for a cache hit (Sec. 5.3: 1 us).
DEVICE_DRAM_HIT_NS = 1_000


@dataclass(frozen=True)
class DeviceAccessResult:
    """Outcome of one device access.

    Attributes
    ----------
    latency_ns:
        Device-internal service time (excluding the CXL link).
    hit:
        Whether the DRAM cache served the request.
    bypassed:
        Whether an admission policy refused to cache the missing page.
    """

    latency_ns: int
    hit: bool
    bypassed: bool


class CxlMemoryDevice:
    """SSD-backed memory expansion device with a managed DRAM cache.

    Parameters
    ----------
    cache:
        The device DRAM cache tag store.
    policy:
        The ICGMM (or baseline) cache policy.
    ssd:
        SSD latency emulator backing the cache.
    hit_latency_ns:
        DRAM cache service time on a hit.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        policy: ReplacementPolicy,
        ssd: SsdLatencyEmulator | None = None,
        hit_latency_ns: int = DEVICE_DRAM_HIT_NS,
    ) -> None:
        if hit_latency_ns <= 0:
            raise ValueError("hit_latency_ns must be positive")
        self.cache = cache
        self.policy = policy
        self.ssd = ssd if ssd is not None else SsdLatencyEmulator()
        self.hit_latency_ns = hit_latency_ns
        self.stats = CacheStats()
        self._access_index = 0

    def access(
        self, page: int, is_write: bool, score: float = 0.0
    ) -> DeviceAccessResult:
        """Serve one 4 KB page request; returns internal latency.

        Follows the Sec. 3.2 flow exactly: hit -> DRAM; miss -> SSD
        read plus (admission permitting) a fill with possible dirty
        write-back; bypassed writes program flash directly.
        """
        index = self._access_index
        self._access_index += 1
        set_index, way = self.cache.lookup(page)

        if way is not None:
            self.policy.on_hit(self.cache, set_index, way, index, score)
            if is_write:
                self.cache.dirty[set_index][way] = True
            self.stats.hits += 1
            if is_write:
                self.stats.write_hits += 1
            return DeviceAccessResult(
                latency_ns=self.hit_latency_ns, hit=True, bypassed=False
            )

        self.stats.misses += 1
        if is_write:
            self.stats.write_misses += 1
        latency = self.ssd.read_latency_ns()

        if not self.policy.admit(page, score, is_write, index):
            self.stats.bypasses += 1
            if is_write:
                self.stats.bypassed_writes += 1
                latency += self.ssd.write_latency_ns()
            return DeviceAccessResult(
                latency_ns=latency, hit=False, bypassed=True
            )

        victim = self.cache.find_invalid_way(set_index)
        if victim is None:
            victim = self.policy.select_victim(
                self.cache, set_index, index
            )
            self.stats.evictions += 1
            if self.cache.dirty[set_index][victim]:
                self.stats.dirty_evictions += 1
                latency += self.ssd.write_latency_ns()
        self.stats.fills += 1
        self.cache.fill(
            set_index,
            victim,
            page,
            is_write,
            self.policy.fill_meta(page, score, index),
            float(index),
        )
        return DeviceAccessResult(
            latency_ns=latency, hit=False, bypassed=False
        )

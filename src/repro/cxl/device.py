"""The CXL memory-expansion device: DRAM cache over SSD.

This is the device half of Fig. 1: an SSD (~TB) exposed through
CXL.mem, fronted by the device-DRAM cache that ICGMM manages.  The
class wraps the cache substrate into a stateful per-request interface
returning service latencies, which the router composes with the link
model into end-to-end access times.

Accounting is outcome-based: every access is classified with the same
``OUTCOME_*`` codes the trace simulators record, and :attr:`
CxlMemoryDevice.stats` is rebuilt from those codes via
:func:`repro.cache.stats.stats_from_outcomes` -- the device no longer
hand-rolls a fourth copy of the counter arithmetic, so its tallies
are consistent with :class:`~repro.cache.stats.CacheStats` by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cache.policies.base import ReplacementPolicy
from repro.cache.setassoc import SetAssociativeCache
from repro.cache.stats import (
    OUTCOME_BYPASS,
    OUTCOME_DIRTY_EVICT,
    OUTCOME_EVICT,
    OUTCOME_FILL,
    OUTCOME_HIT,
    CacheStats,
    fold_outcome,
    stats_from_outcomes,
)
from repro.hardware.ssd import SsdLatencyEmulator

#: Device DRAM service time for a cache hit (Sec. 5.3: 1 us).
DEVICE_DRAM_HIT_NS = 1_000


@dataclass(frozen=True)
class DeviceAccessResult:
    """Outcome of one device access.

    Attributes
    ----------
    latency_ns:
        Device-internal service time (excluding the CXL link).
    hit:
        Whether the DRAM cache served the request.
    bypassed:
        Whether an admission policy refused to cache the missing page.
    outcome:
        The access's ``OUTCOME_*`` classification (see
        :mod:`repro.cache.stats`).
    """

    latency_ns: int
    hit: bool
    bypassed: bool
    outcome: int


class CxlMemoryDevice:
    """SSD-backed memory expansion device with a managed DRAM cache.

    Parameters
    ----------
    cache:
        The device DRAM cache tag store.
    policy:
        The ICGMM (or baseline) cache policy.
    ssd:
        SSD latency emulator backing the cache.
    hit_latency_ns:
        DRAM cache service time on a hit.
    keep_outcomes:
        With ``True`` (default) the full per-access ``OUTCOME_*`` /
        write record is retained, which is what the differential
        parity suites re-account against -- but it grows with the
        replayed stream.  Pass ``False`` for long replays that only
        need counters: outcomes then fold into a running
        :class:`~repro.cache.stats.CacheStats` one access at a time
        and nothing per-access stays alive.
    """

    def __init__(
        self,
        cache: SetAssociativeCache,
        policy: ReplacementPolicy,
        ssd: SsdLatencyEmulator | None = None,
        hit_latency_ns: int = DEVICE_DRAM_HIT_NS,
        keep_outcomes: bool = True,
    ) -> None:
        if hit_latency_ns <= 0:
            raise ValueError("hit_latency_ns must be positive")
        self.cache = cache
        self.policy = policy
        self.ssd = ssd if ssd is not None else SsdLatencyEmulator()
        self.hit_latency_ns = hit_latency_ns
        self.keep_outcomes = keep_outcomes
        self._outcomes: list[int] = []
        self._writes: list[bool] = []
        self._running = CacheStats()
        self._access_index = 0
        self._stats_cache: tuple[int, CacheStats] | None = None

    @property
    def stats(self) -> CacheStats:
        """Counters rebuilt from the recorded per-access outcomes.

        Memoised per history length, so polling between accesses is
        O(1); only the first read after new traffic pays the rebuild.
        With ``keep_outcomes=False`` the incrementally-folded
        counters are returned directly (same single-source-of-truth
        arithmetic -- each access's code is folded exactly once).
        """
        if not self.keep_outcomes:
            return self._running
        n = len(self._outcomes)
        if self._stats_cache is None or self._stats_cache[0] != n:
            self._stats_cache = (
                n,
                stats_from_outcomes(
                    np.asarray(self._outcomes, dtype=np.uint8),
                    np.asarray(self._writes, dtype=bool),
                ),
            )
        return self._stats_cache[1]

    def outcome_record(self) -> tuple[np.ndarray, np.ndarray]:
        """The per-access ``(outcomes, is_write)`` arrays so far."""
        if not self.keep_outcomes:
            raise ValueError(
                "outcome_record() needs keep_outcomes=True; this"
                " device only folded counters"
            )
        return (
            np.asarray(self._outcomes, dtype=np.uint8),
            np.asarray(self._writes, dtype=bool),
        )

    def _record(self, outcome: int, is_write: bool) -> None:
        """Account one classified access (list or running counters)."""
        if self.keep_outcomes:
            self._outcomes.append(outcome)
            self._writes.append(is_write)
            return
        fold_outcome(self._running, outcome, is_write)

    def access(
        self, page: int, is_write: bool, score: float = 0.0
    ) -> DeviceAccessResult:
        """Serve one 4 KB page request; returns internal latency.

        Follows the Sec. 3.2 flow exactly: hit -> DRAM; miss -> SSD
        read plus (admission permitting) a fill with possible dirty
        write-back; bypassed writes program flash directly.
        """
        index = self._access_index
        self._access_index += 1
        set_index, way = self.cache.lookup(page)

        if way is not None:
            self.policy.on_hit(self.cache, set_index, way, index, score)
            if is_write:
                self.cache.dirty[set_index][way] = True
            self._record(OUTCOME_HIT, bool(is_write))
            return DeviceAccessResult(
                latency_ns=self.hit_latency_ns,
                hit=True,
                bypassed=False,
                outcome=OUTCOME_HIT,
            )

        latency = self.ssd.read_latency_ns()

        if not self.policy.admit(page, score, is_write, index):
            if is_write:
                latency += self.ssd.write_latency_ns()
            self._record(OUTCOME_BYPASS, bool(is_write))
            return DeviceAccessResult(
                latency_ns=latency,
                hit=False,
                bypassed=True,
                outcome=OUTCOME_BYPASS,
            )

        outcome = OUTCOME_FILL
        victim = self.cache.find_invalid_way(set_index)
        if victim is None:
            victim = self.policy.select_victim(
                self.cache, set_index, index
            )
            if self.cache.dirty[set_index][victim]:
                outcome = OUTCOME_DIRTY_EVICT
                latency += self.ssd.write_latency_ns()
            else:
                outcome = OUTCOME_EVICT
        self.cache.fill(
            set_index,
            victim,
            page,
            is_write,
            self.policy.fill_meta(page, score, index),
            float(index),
        )
        self._record(outcome, bool(is_write))
        return DeviceAccessResult(
            latency_ns=latency, hit=False, bypassed=False, outcome=outcome
        )

"""CXL memory-expansion substrate (Fig. 1's system context)."""

from repro.cxl.address_space import (
    AddressRange,
    UnifiedAddressSpace,
)
from repro.cxl.device import (
    DEVICE_DRAM_HIT_NS,
    CxlMemoryDevice,
    DeviceAccessResult,
)
from repro.cxl.link import CxlLinkSpec
from repro.cxl.router import (
    HOST_DRAM_LATENCY_NS,
    CxlSystem,
    RoutedRunResult,
)

__all__ = [
    "AddressRange",
    "CxlLinkSpec",
    "CxlMemoryDevice",
    "CxlSystem",
    "DEVICE_DRAM_HIT_NS",
    "DeviceAccessResult",
    "HOST_DRAM_LATENCY_NS",
    "RoutedRunResult",
    "UnifiedAddressSpace",
]

"""CXL memory-expansion substrate (Fig. 1's system context).

Two execution paths share the staged pipeline core:

* the per-access :class:`CxlSystem` router over one
  :class:`CxlMemoryDevice` -- the scalar parity reference, and
* the vectorized multi-device :class:`CxlFabric`, which partitions a
  trace across a device fleet and replays every sub-stream at
  fast-path speed (:mod:`repro.cxl.fabric`).
"""

from repro.cxl.address_space import (
    AddressRange,
    UnifiedAddressSpace,
)
from repro.cxl.device import (
    DEVICE_DRAM_HIT_NS,
    CxlMemoryDevice,
    DeviceAccessResult,
)
from repro.cxl.fabric import (
    CxlFabric,
    DeviceReplayResult,
    FabricRunResult,
)
from repro.cxl.link import CxlLinkSpec
from repro.cxl.router import (
    HOST_DRAM_LATENCY_NS,
    CxlSystem,
    RoutedRunResult,
)

__all__ = [
    "AddressRange",
    "CxlFabric",
    "CxlLinkSpec",
    "CxlMemoryDevice",
    "CxlSystem",
    "DEVICE_DRAM_HIT_NS",
    "DeviceAccessResult",
    "DeviceReplayResult",
    "FabricRunResult",
    "HOST_DRAM_LATENCY_NS",
    "RoutedRunResult",
    "UnifiedAddressSpace",
]

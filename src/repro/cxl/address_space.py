"""Unified host + device address space (Fig. 1).

CXL.mem exposes the device's storage as a contiguous extension of the
host physical address space: loads and stores below the expansion base
go to host DRAM, everything above is backed by the CXL device (DRAM
cache over SSD).  These classes model that split and the host-physical
to device-local translation.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default host DRAM size in the modelled system (16 GiB).
DEFAULT_HOST_BYTES = 16 << 30

#: Default device (SSD-backed) expansion size (1 TiB).
DEFAULT_DEVICE_BYTES = 1 << 40


@dataclass(frozen=True)
class AddressRange:
    """A half-open physical address range ``[base, base + size)``."""

    base: int
    size: int

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if self.size <= 0:
            raise ValueError("size must be positive")

    @property
    def end(self) -> int:
        """One past the last byte of the range."""
        return self.base + self.size

    def __contains__(self, address: int) -> bool:
        return self.base <= address < self.end

    def offset_of(self, address: int) -> int:
        """Range-local offset of ``address``.

        Raises
        ------
        ValueError
            If the address is outside this range.
        """
        if address not in self:
            raise ValueError(
                f"address {address:#x} outside"
                f" [{self.base:#x}, {self.end:#x})"
            )
        return address - self.base


class UnifiedAddressSpace:
    """Host DRAM plus CXL-expanded device memory in one space.

    Parameters
    ----------
    host_bytes:
        Size of native host DRAM; it occupies ``[0, host_bytes)``.
    device_bytes:
        Size of the CXL device's exposed memory; it occupies
        ``[host_bytes, host_bytes + device_bytes)``.
    """

    def __init__(
        self,
        host_bytes: int = DEFAULT_HOST_BYTES,
        device_bytes: int = DEFAULT_DEVICE_BYTES,
    ) -> None:
        self.host_range = AddressRange(0, host_bytes)
        self.device_range = AddressRange(host_bytes, device_bytes)

    @property
    def total_bytes(self) -> int:
        """Total unified capacity."""
        return self.host_range.size + self.device_range.size

    def is_device_address(self, address: int) -> bool:
        """Whether ``address`` is backed by the CXL device."""
        return address in self.device_range

    def is_host_address(self, address: int) -> bool:
        """Whether ``address`` is native host DRAM."""
        return address in self.host_range

    def to_device_offset(self, address: int) -> int:
        """Translate a host-physical address to a device-local offset."""
        return self.device_range.offset_of(address)

    def to_host_physical(self, device_offset: int) -> int:
        """Translate a device-local offset back to host-physical."""
        if not 0 <= device_offset < self.device_range.size:
            raise ValueError(
                f"device offset {device_offset:#x} out of range"
            )
        return self.device_range.base + device_offset

    def __repr__(self) -> str:
        return (
            f"UnifiedAddressSpace(host={self.host_range.size >> 30} GiB,"
            f" device={self.device_range.size >> 30} GiB)"
        )

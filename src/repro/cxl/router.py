"""Host-side request routing over the unified address space.

The host issues loads/stores against one flat physical space; the
router sends each to native DRAM or across the CXL link to the
expansion device, and accumulates the end-to-end latency statistics a
system architect would look at when sizing the expansion.

This per-access router is the *parity reference* for the vectorized
multi-device :class:`~repro.cxl.fabric.CxlFabric`: it walks one
request at a time through :meth:`CxlMemoryDevice.access`, and its
:class:`RoutedRunResult` carries the device's full
:class:`~repro.cache.stats.CacheStats` (rebuilt from recorded
``OUTCOME_*`` codes via
:func:`~repro.cache.stats.stats_from_outcomes`, not re-derived ad
hoc), so the fabric's count-based pricing can be checked against it
bit for bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cache.stats import CacheStats, stats_from_outcomes
from repro.cxl.address_space import UnifiedAddressSpace
from repro.cxl.device import CxlMemoryDevice
from repro.cxl.link import CxlLinkSpec
from repro.traces.record import CACHE_LINE_SIZE, PAGE_SHIFT, MemoryTrace

#: Native host DRAM access time (typical DDR round trip).
HOST_DRAM_LATENCY_NS = 80


@dataclass(frozen=True)
class RoutedRunResult:
    """Aggregate outcome of routing a trace.

    Attributes
    ----------
    host_accesses / device_accesses:
        Requests served by native DRAM vs the CXL device.
    host_time_ns / device_time_ns:
        Total service time on each side (device time includes the
        link).
    device_stats:
        Full cache counters of the device-routed requests, rebuilt
        from the recorded per-access outcomes -- including the
        read/write splits (``write_hits``/``write_misses``/
        ``bypassed_writes``) the latency models need.
    """

    host_accesses: int
    device_accesses: int
    host_time_ns: int
    device_time_ns: int
    device_stats: CacheStats = field(default_factory=CacheStats)

    @property
    def total_accesses(self) -> int:
        """All routed requests."""
        return self.host_accesses + self.device_accesses

    @property
    def average_latency_ns(self) -> float:
        """Mean end-to-end latency over all requests."""
        if self.total_accesses == 0:
            return 0.0
        return (
            self.host_time_ns + self.device_time_ns
        ) / self.total_accesses

    @property
    def average_device_latency_us(self) -> float:
        """Mean latency of device-routed requests, in microseconds."""
        if self.device_accesses == 0:
            return 0.0
        return self.device_time_ns / self.device_accesses / 1_000.0


class CxlSystem:
    """A host with one CXL memory-expansion device.

    Parameters
    ----------
    address_space:
        The unified host + device layout.
    device:
        The expansion device (DRAM cache over SSD).
    link:
        CXL link model between host and device.
    host_latency_ns:
        Native DRAM access time.
    """

    def __init__(
        self,
        address_space: UnifiedAddressSpace,
        device: CxlMemoryDevice,
        link: CxlLinkSpec | None = None,
        host_latency_ns: int = HOST_DRAM_LATENCY_NS,
    ) -> None:
        if host_latency_ns <= 0:
            raise ValueError("host_latency_ns must be positive")
        self.address_space = address_space
        self.device = device
        self.link = link if link is not None else CxlLinkSpec()
        self.host_latency_ns = host_latency_ns

    def access(
        self, address: int, is_write: bool, score: float = 0.0
    ) -> int:
        """Serve one host request; returns end-to-end latency in ns."""
        if self.address_space.is_host_address(address):
            return self.host_latency_ns
        offset = self.address_space.to_device_offset(address)
        page = offset >> PAGE_SHIFT
        result = self.device.access(page, is_write, score)
        # The host moves one cache line over the link per request.
        link_ns = self.link.request_latency_ns(CACHE_LINE_SIZE)
        return link_ns + result.latency_ns

    def run_trace(
        self,
        trace: MemoryTrace,
        scores: np.ndarray | None = None,
    ) -> RoutedRunResult:
        """Route every request of a trace; returns aggregate stats.

        ``trace`` addresses are interpreted in the unified space;
        ``scores`` (optional) feed the device's cache policy.  Host
        traffic is tallied in one vectorized pass (its latency is a
        constant); device traffic walks the per-access reference
        loop, and its counters are rebuilt from the recorded
        ``OUTCOME_*`` codes with
        :func:`~repro.cache.stats.stats_from_outcomes`.
        """
        if scores is None:
            scores = np.zeros(len(trace))
        else:
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape[0] != len(trace):
                raise ValueError("scores must align with the trace")
        addresses = np.asarray(trace.addresses)
        writes = np.asarray(trace.is_write, dtype=bool)
        host = self.address_space.host_range
        device_range = self.address_space.device_range
        host_mask = (addresses >= host.base) & (addresses < host.end)
        device_mask = (addresses >= device_range.base) & (
            addresses < device_range.end
        )
        stray = np.nonzero(~(host_mask | device_mask))[0]
        if stray.size:
            # Reuse the translation's error for the first bad address.
            self.address_space.to_device_offset(int(addresses[stray[0]]))

        host_accesses = int(np.count_nonzero(host_mask))
        host_time = host_accesses * self.host_latency_ns

        device_positions = np.nonzero(device_mask)[0]
        link_ns = self.link.request_latency_ns(CACHE_LINE_SIZE)
        device_time = 0
        outcomes = np.empty(device_positions.size, dtype=np.uint8)
        device_pages = (
            addresses[device_positions] - device_range.base
        ) >> PAGE_SHIFT
        for i in range(device_positions.size):
            position = int(device_positions[i])
            result = self.device.access(
                int(device_pages[i]),
                bool(writes[position]),
                float(scores[position]),
            )
            outcomes[i] = result.outcome
            device_time += link_ns + result.latency_ns
        return RoutedRunResult(
            host_accesses=host_accesses,
            device_accesses=int(device_positions.size),
            host_time_ns=host_time,
            device_time_ns=device_time,
            device_stats=stats_from_outcomes(
                outcomes, writes[device_positions]
            ),
        )

"""Command-line interface.

Nine subcommands cover the common entry points without writing any
Python::

    python -m repro.cli generate-trace dlrm -n 100000 -o dlrm.npz
    python -m repro.cli run memtier --trace-length 120000
    python -m repro.cli suite --workloads memtier stream
    python -m repro.cli serve --workloads memtier stream --drift
    python -m repro.cli fabric memtier --devices 4 --placement score
    python -m repro.cli chaos --scenarios device_failure worker_crash
    python -m repro.cli metrics telemetry.json --format prom
    python -m repro.cli top telemetry.json
    python -m repro.cli hardware-report

``serve`` and ``fabric`` additionally accept ``--chaos-seed N`` to
run under the deterministic fault-injection demo plan (see
``docs/robustness.md``), and ``run``/``serve``/``fabric``/``chaos``
accept ``--telemetry-out PATH`` to capture the run's unified
telemetry (``docs/observability.md``) -- the export format follows
the suffix.  ``serve``/``fabric``/``chaos`` also accept ``--json`` to
emit the canonical telemetry snapshot on stdout instead of tables.
"""

from __future__ import annotations

import argparse
import json
import sys
import zipfile

import numpy as np

from repro.analysis import render_dict_table, render_table
from repro.chaos import (
    PREPARED_SCENARIOS,
    SCENARIO_NAMES,
    SERVING_SCENARIOS,
    recovery_chunk,
    run_fabric_scenario,
    run_prepared_scenario,
    run_serving_scenario,
    scenario_chaos,
    tail_miss_rate,
)
from repro.core.config import (
    PARALLEL_BACKENDS,
    PIPELINE_MODES,
    PLACEMENTS,
    STRATEGIES,
    ChaosConfig,
    FabricTopology,
    FleetHealthConfig,
    GmmEngineConfig,
    IcgmmConfig,
    ParallelConfig,
    ServingConfig,
    TelemetryConfig,
)
from repro.core.engine import GmmPolicyEngine
from repro.core.experiment import run_suite
from repro.core.pipeline import StageProfiler
from repro.core.system import IcgmmSystem
from repro.cxl.fabric import CxlFabric
from repro.obs import SNAPSHOT_SCHEMA, Telemetry
from repro.hardware import (
    FpgaSpec,
    GmmEngineTiming,
    LstmEngineTiming,
    engine_speedup,
    estimate_gmm_engine,
    estimate_icgmm_system,
    estimate_lstm_engine,
)
from repro.serving import IcgmmCacheService, ServingFrontend
from repro.traces.io import (
    load_trace,
    save_trace_csv,
    save_trace_npz,
    stream_trace_chunks,
)
from repro.traces.mixing import multi_tenant_trace, relocate
from repro.traces.preprocess import transform_timestamps
from repro.traces.record import CACHE_LINE_SIZE, PAGE_SHIFT
from repro.traces.workloads import WORKLOAD_NAMES, get_workload


def _add_generate_trace(subparsers) -> None:
    parser = subparsers.add_parser(
        "generate-trace",
        help="generate a synthetic workload trace to a file",
    )
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument(
        "-n", "--length", type=int, default=100_000,
        help="number of requests",
    )
    parser.add_argument(
        "-o", "--output", required=True,
        help="output path (.csv or .npz)",
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--uncompressed",
        action="store_true",
        help=(
            "store .npz members raw so streaming consumers"
            " (serve/fabric --trace) can memory-map them zero-copy"
        ),
    )
    parser.add_argument(
        "--mmap-out",
        action="store_true",
        help=(
            "write the .npz column-by-column through memory-mapped"
            " temporaries instead of materializing the archive in"
            " RAM (implies --uncompressed; bounds writer RSS for"
            " huge traces)"
        ),
    )
    parser.add_argument("--seed", type=int, default=42)


def _add_trace_argument(parser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "replay a recorded trace file instead of generating"
            " synthetic traffic (.npz archives stored uncompressed"
            " stream through zero-copy memory-mapped slices; .csv"
            " through the chunked vectorized reader)"
        ),
    )


def _add_run(subparsers) -> None:
    parser = subparsers.add_parser(
        "run", help="run the ICGMM pipeline on one workload"
    )
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--components", type=int, default=None)
    _add_profile_argument(parser)
    _add_telemetry_arguments(parser, json_flag=False)
    parser.add_argument("--seed", type=int, default=42)


def _add_suite(subparsers) -> None:
    parser = subparsers.add_parser(
        "suite", help="run the Fig. 6 / Table 1 evaluation suite"
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=WORKLOAD_NAMES,
        default=list(WORKLOAD_NAMES),
    )
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--seed", type=int, default=42)


def _add_serve(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        help=(
            "replay a multi-tenant stream through the online ICGMM"
            " cache service (sharded planes, drift-aware refresh)"
        ),
    )
    parser.add_argument(
        "--workloads",
        nargs="+",
        choices=WORKLOAD_NAMES,
        default=["memtier", "stream"],
        help="one tenant per workload",
    )
    _add_trace_argument(parser)
    parser.add_argument("--length", type=int, default=200_000)
    parser.add_argument("--chunk", type=int, default=8192)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--sharding", choices=("hash", "tenant"), default="hash"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="gmm-caching-eviction",
        help="Fig. 6 strategy driving the cache planes",
    )
    parser.add_argument("--components", type=int, default=None)
    parser.add_argument(
        "--train-fraction", type=float, default=0.3,
        help="leading stream fraction the offline engine trains on",
    )
    parser.add_argument(
        "--drift",
        action="store_true",
        help=(
            "shift every tenant's hot region at the stream midpoint"
            " (exercises the drift detector and model refresh)"
        ),
    )
    parser.add_argument(
        "--no-refresh",
        action="store_true",
        help="freeze the engine (the paper's deployment)",
    )
    parser.add_argument(
        "--report-every", type=int, default=8,
        help="chunks between progress lines",
    )
    parser.add_argument(
        "--pipeline",
        choices=PIPELINE_MODES,
        default="off",
        help=(
            "run the stream through the pipelined front-end:"
            " 'deterministic' interleaves producer and consumer on a"
            " fixed logical clock (byte-identical to the plain loop),"
            " 'throughput' overlaps ingest with replay and moves"
            " model refresh off the critical path; 'off' keeps the"
            " synchronous loop (see docs/serving.md)"
        ),
    )
    parser.add_argument(
        "--queue-chunks", type=int, default=8,
        help="ingest queue capacity in chunks (pipelined modes)",
    )
    _add_parallel_arguments(parser, "shard replays")
    _add_chaos_seed_argument(parser)
    _add_profile_argument(parser)
    _add_telemetry_arguments(parser)
    parser.add_argument("--seed", type=int, default=42)


def _add_chaos_seed_argument(parser) -> None:
    parser.add_argument(
        "--chaos-seed",
        type=int,
        default=None,
        help=(
            "run under the deterministic chaos demo plan seeded here"
            " (fault injection + graceful degradation; see"
            " docs/robustness.md)"
        ),
    )


def _chaos_from_args(args) -> ChaosConfig | None:
    if args.chaos_seed is None:
        return None
    return ChaosConfig.demo(args.chaos_seed)


def _add_telemetry_arguments(parser, json_flag: bool = True) -> None:
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help=(
            "capture the run's unified telemetry and write it here;"
            " format follows the suffix (.prom Prometheus text,"
            " .trace.json/.perfetto.json Chrome trace-event JSON,"
            " anything else the canonical JSON snapshot)"
        ),
    )
    if json_flag:
        parser.add_argument(
            "--json",
            action="store_true",
            help=(
                "emit the canonical telemetry JSON snapshot (schema"
                f" {SNAPSHOT_SCHEMA}) on stdout instead of tables"
            ),
        )


def _telemetry_from_args(args) -> Telemetry | None:
    """A bundle when ``--telemetry-out``/``--json`` asked for one.

    ``None`` otherwise -- the instrumented layers then run their
    exact pre-telemetry code paths.
    """
    if args.telemetry_out is None and not getattr(
        args, "json", False
    ):
        return None
    return Telemetry.from_config(
        TelemetryConfig(enabled=True, seed=args.seed)
    )


def _finish_telemetry(args, telemetry, extra=None) -> None:
    """Write/print the requested exports at command end."""
    if telemetry is None:
        return
    if args.telemetry_out is not None:
        kind = telemetry.write(args.telemetry_out, extra=extra)
        print(
            f"wrote {kind} telemetry to {args.telemetry_out}",
            file=sys.stderr,
        )
    if getattr(args, "json", False):
        sys.stdout.write(telemetry.snapshot_json(extra=extra))


def _load_snapshot(path: str) -> dict | None:
    """Read and validate a canonical snapshot file (None on error)."""
    try:
        with open(path, encoding="utf-8") as handle:
            snapshot = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None
    if (
        not isinstance(snapshot, dict)
        or snapshot.get("schema") != SNAPSHOT_SCHEMA
    ):
        print(
            f"error: {path} is not a {SNAPSHOT_SCHEMA} snapshot"
            " (capture one with --telemetry-out or --json)",
            file=sys.stderr,
        )
        return None
    return snapshot


def _add_profile_argument(parser) -> None:
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print per-stage wall-clock (Prepare/Score/Simulate/"
            "Price) from the staged pipeline after the run"
        ),
    )


def _print_profile(pipeline) -> None:
    """Render an attached :class:`StageProfiler`'s stage table."""
    profiler = pipeline.profiler
    if profiler is None or not profiler.seconds:
        return
    print()
    print(
        render_table(
            ["stage", "calls", "seconds", "share %"],
            [
                [name, calls, seconds, 100.0 * share]
                for name, calls, seconds, share in profiler.rows()
            ],
        )
    )


def _add_parallel_arguments(parser, what: str) -> None:
    """The shared ``--workers`` / ``--parallel-backend`` flags."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            f"concurrent workers driving the {what}"
            " (0 = CPU count; 1 = sequential)"
        ),
    )
    parser.add_argument(
        "--parallel-backend",
        choices=PARALLEL_BACKENDS,
        default="thread",
        help=(
            "thread pool (numpy releases the GIL) or spawn process"
            " pool with shared-memory cache planes"
        ),
    )


def _parallel_from_args(
    args, chaos: ChaosConfig | None = None
) -> ParallelConfig:
    # A chaos run injects worker crashes; without a retry budget the
    # first one aborts the replay instead of being absorbed.
    return ParallelConfig(
        workers=args.workers,
        backend=args.parallel_backend,
        max_retries=2 if chaos is not None else 0,
    )


def _add_fabric(subparsers) -> None:
    parser = subparsers.add_parser(
        "fabric",
        help=(
            "replay a workload over a multi-device CXL fabric"
            " (vectorized per-device replay, per-link pricing)"
        ),
    )
    parser.add_argument("workload", choices=WORKLOAD_NAMES)
    _add_trace_argument(parser)
    parser.add_argument("--trace-length", type=int, default=None)
    parser.add_argument("--components", type=int, default=None)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument(
        "--placement", choices=PLACEMENTS, default="interleave"
    )
    parser.add_argument(
        "--strategy",
        choices=STRATEGIES,
        default="gmm-caching-eviction",
        help="Fig. 6 strategy driving every device cache",
    )
    parser.add_argument(
        "--link-overhead-ns",
        type=int,
        nargs="+",
        default=None,
        help=(
            "per-device CXL link round-trip overhead (one value per"
            " device; models near/far fabric topologies)"
        ),
    )
    parser.add_argument(
        "--chunk",
        type=int,
        default=8192,
        help=(
            "requests per streamed ingest chunk (chaos mode replays"
            " through the streaming path)"
        ),
    )
    _add_parallel_arguments(parser, "per-device replays")
    _add_chaos_seed_argument(parser)
    _add_profile_argument(parser)
    _add_telemetry_arguments(parser)
    parser.add_argument("--seed", type=int, default=42)


def _add_chaos(subparsers) -> None:
    parser = subparsers.add_parser(
        "chaos",
        help=(
            "run the canonical fault-injection scenarios and report"
            " degradation + recovery against a no-fault baseline"
        ),
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        choices=SCENARIO_NAMES,
        default=list(SCENARIO_NAMES),
    )
    parser.add_argument(
        "workload",
        nargs="?",
        choices=WORKLOAD_NAMES,
        default="memtier",
    )
    parser.add_argument("--length", type=int, default=60_000)
    parser.add_argument("--chunk", type=int, default=2048)
    parser.add_argument("--devices", type=int, default=4)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--components", type=int, default=None)
    parser.add_argument(
        "--chaos-seed", type=int, default=0,
        help="seed of the deterministic fault plans",
    )
    parser.add_argument(
        "--monitor",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "arm the fleet health monitor on fabric-layer scenarios:"
            " sick devices (fail-slow ramps, broken caches) are"
            " quarantined off the placement and reinstated after"
            " clean probation probes (--no-monitor: rely on failover"
            " alone)"
        ),
    )
    _add_parallel_arguments(parser, "scenario replays")
    _add_telemetry_arguments(parser)
    parser.add_argument("--seed", type=int, default=42)


def _add_metrics(subparsers) -> None:
    parser = subparsers.add_parser(
        "metrics",
        help=(
            "re-render a captured telemetry snapshot (Prometheus"
            " text, canonical JSON, Chrome trace-event JSON)"
        ),
    )
    parser.add_argument(
        "snapshot",
        help=(
            "canonical JSON snapshot file captured with"
            " --telemetry-out or --json"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("prom", "json", "trace"),
        default="prom",
        help="output format (default: Prometheus text exposition)",
    )


def _add_top(subparsers) -> None:
    parser = subparsers.add_parser(
        "top",
        help=(
            "one-shot text dashboard over a captured telemetry"
            " snapshot (headline counters, rolling table, stages,"
            " recent failure events)"
        ),
    )
    parser.add_argument(
        "snapshot",
        help=(
            "canonical JSON snapshot file captured with"
            " --telemetry-out or --json"
        ),
    )


def _add_hardware_report(subparsers) -> None:
    subparsers.add_parser(
        "hardware-report",
        help="print the Table 2 / Sec. 5.1 hardware estimates",
    )


def _cmd_generate_trace(args) -> int:
    generator = get_workload(args.workload, scale=args.scale)
    rng = np.random.default_rng(args.seed)
    trace = generator.generate(args.length, rng)
    if args.output.endswith(".csv"):
        if args.mmap_out:
            print(
                "error: --mmap-out requires a .npz output",
                file=sys.stderr,
            )
            return 2
        save_trace_csv(trace, args.output)
    elif args.output.endswith(".npz"):
        save_trace_npz(
            trace,
            args.output,
            compressed=not args.uncompressed and not args.mmap_out,
            mmap=args.mmap_out,
        )
    else:
        print("error: output must end in .csv or .npz", file=sys.stderr)
        return 2
    print(
        f"wrote {len(trace)} requests"
        f" ({trace.unique_page_count()} pages,"
        f" {trace.write_fraction():.1%} writes) to {args.output}"
    )
    return 0


def _config_from_args(args) -> IcgmmConfig:
    kwargs = {"seed": args.seed}
    if getattr(args, "trace_length", None) is not None:
        kwargs["trace_length"] = args.trace_length
    if getattr(args, "components", None) is not None:
        kwargs["gmm"] = GmmEngineConfig(n_components=args.components)
    return IcgmmConfig(**kwargs)


def _cmd_run(args) -> int:
    system = IcgmmSystem(_config_from_args(args))
    if args.profile:
        system.pipeline.profiler = StageProfiler()
    telemetry = _telemetry_from_args(args)
    if telemetry is not None:
        from repro.obs import bridge

        if system.pipeline.profiler is None:
            system.pipeline.profiler = StageProfiler()
        system.pipeline.telemetry = telemetry
        bridge.register_stage_profiler(
            telemetry.registry, system.pipeline.profiler
        )
    result = system.run_benchmark(args.workload)
    rows = [
        [
            outcome.strategy,
            outcome.miss_rate_percent,
            outcome.average_time_us,
        ]
        for outcome in result.outcomes.values()
    ]
    print(
        render_table(
            ["strategy", "miss rate %", "avg access us"], rows
        )
    )
    print(
        f"best: {result.best_gmm.strategy}"
        f" (-{result.miss_reduction_points:.2f} pts,"
        f" -{result.time_reduction_percent:.1f}% time)"
    )
    if args.profile:
        _print_profile(system.pipeline)
    _finish_telemetry(
        args,
        telemetry,
        extra={
            "command": "run",
            "workload": args.workload,
            "best_strategy": result.best_gmm.strategy,
            "miss_reduction_points": float(
                result.miss_reduction_points
            ),
            "time_reduction_percent": float(
                result.time_reduction_percent
            ),
        },
    )
    return 0


def _cmd_suite(args) -> int:
    suite = run_suite(
        workloads=tuple(args.workloads),
        config=_config_from_args(args),
    )
    print(render_dict_table(suite.fig6_rows()))
    print()
    print(render_dict_table(suite.table1_rows()))
    return 0


def _cmd_serve(args) -> int:
    rng = np.random.default_rng(args.seed)
    config = _config_from_args(args)
    chaos = _chaos_from_args(args)
    telemetry = _telemetry_from_args(args)
    # --json owns stdout: informational output is suppressed so the
    # emitted snapshot is the whole (machine-parseable) stream.
    emit = (lambda *a, **k: None) if args.json else print
    generators = [
        get_workload(name, scale=config.workload_scale)
        for name in args.workloads
    ]
    weights = [1.0] * len(generators)
    try:
        serving = ServingConfig(
            chunk_requests=args.chunk,
            n_shards=args.shards,
            sharding=args.sharding,
            strategy=args.strategy,
            refresh_enabled=not args.no_refresh,
            parallel=_parallel_from_args(args, chaos),
            pipeline=args.pipeline,
            ingest_queue_chunks=args.queue_chunks,
            refresh_async=args.pipeline == "throughput",
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    step = serving.chunk_requests * max(1, args.report_every)
    pages = is_write = chunk_iter = None
    if args.trace:
        if args.drift:
            print(
                "error: --drift shapes synthetic traffic and cannot"
                " be combined with --trace",
                file=sys.stderr,
            )
            return 2
        # Streaming ingest: the trace is consumed in report-window
        # chunks (memory-mapped slices for stored .npz archives,
        # vectorized parses for .csv) and never fully materializes;
        # only the training prefix is held transiently.
        try:
            length, chunk_iter = stream_trace_chunks(
                args.trace, step
            )
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    elif args.drift:
        half = args.length // 2
        head = multi_tenant_trace(
            generators, weights, half, rng,
            partition_pages=serving.partition_pages,
        )
        shifted = [
            get_workload(name, scale=config.workload_scale)
            for name in args.workloads
        ]
        tail = relocate(
            multi_tenant_trace(
                shifted, weights, args.length - half, rng,
                partition_pages=serving.partition_pages,
            ),
            base_page=serving.partition_pages // 8,
        )
        pages = np.concatenate(
            [head.addresses >> PAGE_SHIFT, tail.addresses >> PAGE_SHIFT]
        )
        is_write = np.concatenate([head.is_write, tail.is_write])
        length = len(pages)
    else:
        trace = multi_tenant_trace(
            generators, weights, args.length, rng,
            partition_pages=serving.partition_pages,
        )
        pages = trace.addresses >> PAGE_SHIFT
        is_write = trace.is_write
        length = len(pages)

    n_train = min(
        length,
        max(
            config.gmm.n_components + 1,
            int(length * args.train_fraction),
        ),
    )
    if n_train <= config.gmm.n_components:
        source = (
            f"--trace {args.trace}"
            if args.trace
            else f"--length {args.length}"
        )
        print(
            f"error: {source} leaves only {n_train}"
            f" training requests for K={config.gmm.n_components};"
            " raise the stream length or lower --components",
            file=sys.stderr,
        )
        return 2
    buffered: list = []
    if args.trace:
        got = 0
        for trace_chunk in chunk_iter:
            buffered.append(trace_chunk)
            got += len(trace_chunk)
            if got >= n_train:
                break
        train_pages = (
            np.concatenate(
                [c.page_indices() for c in buffered]
            )[:n_train]
            if buffered
            else np.empty(0, dtype=np.int64)
        )
    else:
        train_pages = pages[:n_train]
    timestamps = transform_timestamps(
        n_train,
        config.len_window,
        config.len_access_shot,
        config.timestamp_mode,
    )
    features = np.column_stack(
        [
            train_pages.astype(np.float64),
            timestamps.astype(np.float64),
        ]
    )
    emit(
        f"training offline engine on {n_train:,} requests"
        + (
            f" from {args.trace}..."
            if args.trace
            else f" ({len(args.workloads)} tenants)..."
        )
    )
    engine = GmmPolicyEngine.train(features, config.gmm, rng)
    try:
        service = IcgmmCacheService(
            engine,
            config=config,
            serving=serving,
            measure_from=n_train,
            chaos=chaos,
            telemetry=telemetry,
        )
    except ValueError as exc:  # e.g. --shards not dividing the sets
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # Telemetry already hangs a profiler on the pipeline; replacing
    # it would orphan the registered collector.
    if args.profile and service.pipeline.profiler is None:
        service.pipeline.profiler = StageProfiler()

    def _windows():
        if args.trace:
            # Buffered training-prefix chunks replay first (popped as
            # they go so parsed CSV prefixes free immediately), then
            # the rest of the stream straight off the iterator.
            while buffered:
                trace_chunk = buffered.pop(0)
                yield (
                    trace_chunk.page_indices(),
                    np.asarray(trace_chunk.is_write),
                )
            for trace_chunk in chunk_iter:
                yield (
                    trace_chunk.page_indices(),
                    np.asarray(trace_chunk.is_write),
                )
        else:
            for start in range(0, length, step):
                yield (
                    pages[start : start + step],
                    is_write[start : start + step],
                )

    front_report = None
    try:
        if args.pipeline != "off":
            frontend = ServingFrontend(service)
            front_report = frontend.run(_windows())
        else:
            for window_pages, window_writes in _windows():
                reports = service.ingest(window_pages, window_writes)
                window_hits = sum(r.stats.hits for r in reports)
                window_total = sum(
                    r.stats.accesses for r in reports
                )
                window_miss = (
                    100.0 * (1.0 - window_hits / window_total)
                    if window_total
                    else 0.0
                )
                swapped = any(r.swapped for r in reports)
                emit(
                    f"  cursor {service.access_cursor:>9,d}"
                    f"  window miss {window_miss:6.2f}%"
                    f"  generation {service.generation}"
                    f"{'  [engine swapped]' if swapped else ''}"
                )

        summary = service.summary()
    finally:
        # Deterministic teardown even on a failed ingest: the shard
        # executor pool (and any shared planes) must not leak.
        service.close()
    emit()
    emit(
        render_table(
            ["shard", "miss rate %", "latency us", "traffic %"],
            [
                [
                    key,
                    100 * row["miss_rate"],
                    row["latency_us"],
                    100 * row["traffic_share"],
                ]
                for key, row in sorted(summary["shards"].items())
            ],
        )
    )
    emit()
    emit(
        render_table(
            ["tenant", "miss rate %", "latency us", "traffic %"],
            [
                [
                    key,
                    100 * row["miss_rate"],
                    row["latency_us"],
                    100 * row["traffic_share"],
                ]
                for key, row in sorted(summary["tenants"].items())
            ],
        )
    )
    emit(
        f"\ntotal: {summary['accesses']:,} measured accesses,"
        f" miss rate {100 * summary['miss_rate']:.2f}%,"
        f" {len(summary['swaps'])} engine swap(s),"
        f" generation {summary['generation']}"
    )
    if front_report is not None:
        emit(
            f"pipeline {front_report.mode}:"
            f" {front_report.consumed_chunks} chunk(s) /"
            f" {front_report.consumed_requests:,} request(s),"
            f" queue depth max {front_report.queue['max_depth']}"
            f"/{front_report.queue['capacity']},"
            f" {front_report.backpressure_stalls} backpressure"
            " stall(s),"
            f" {front_report.refresh_overlap_chunks} chunk(s) under"
            " off-path refresh"
        )
        if front_report.latency_p50_us is not None:
            emit(
                "pipeline request latency:"
                f" p50 {front_report.latency_p50_us:,.1f}us,"
                f" p99 {front_report.latency_p99_us:,.1f}us"
            )
    if "chaos" in summary:
        chaos = summary["chaos"]
        emit(
            f"chaos: {len(chaos['timeline'])} fault(s)"
            f" [{chaos['timeline_digest'][:12]}],"
            f" {len(chaos['events'])} event(s),"
            f" {chaos['stall_retries']} stall retries,"
            f" {chaos['worker_retries']} worker retries,"
            f" {chaos['refresh_failures']}/{chaos['refresh_attempts']}"
            " refresh failures"
        )
        for event in chaos["events"]:
            emit(
                f"  chunk {event['chunk_index']:>5d}"
                f"  {event['key']:<10s} {event['kind']}"
            )
    # The stage table stays an explicit --profile opt-in (and --json
    # owns stdout).
    if args.profile and not args.json:
        _print_profile(service.pipeline)
    _finish_telemetry(
        args,
        telemetry,
        extra={"command": "serve", "summary": summary},
    )
    return 0


def _cmd_fabric(args) -> int:
    config = _config_from_args(args)
    try:
        topology = FabricTopology(
            n_devices=args.devices,
            placement=args.placement,
            link_overhead_ns=(
                tuple(args.link_overhead_ns)
                if args.link_overhead_ns is not None
                else None
            ),
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    chaos = _chaos_from_args(args)
    telemetry = _telemetry_from_args(args)
    emit = (lambda *a, **k: None) if args.json else print
    trace = None
    if args.trace:
        # A stored .npz opens memory-mapped: the raw columns stay on
        # disk and only the spans preprocessing touches fault in.
        try:
            trace = load_trace(args.trace)
        except (OSError, ValueError, zipfile.BadZipFile) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    fabric = CxlFabric(
        topology,
        config=config,
        parallel=_parallel_from_args(args, chaos),
        chaos=chaos,
        telemetry=telemetry,
    )
    # Telemetry already hangs a profiler on the pipeline; replacing
    # it would orphan the registered collector.
    if args.profile and fabric.pipeline.profiler is None:
        fabric.pipeline.profiler = StageProfiler()
    emit(
        f"preparing {args.workload} through the staged pipeline"
        f" ({args.devices} devices, {args.placement} placement,"
        f" {fabric.parallel.workers} worker(s)"
        f"{f', trace {args.trace}' if args.trace else ''}"
        f"{', chaos on' if chaos is not None else ''})..."
    )
    try:
        prepared = fabric.pipeline.prepare(
            args.workload, trace=trace
        )
        if chaos is not None:
            # Faults hook the streaming path: replay chunk by chunk
            # through ingest instead of the one-shot replay.
            result = fabric.run_streamed(
                prepared, args.strategy, chunk_requests=args.chunk
            )
        else:
            result = fabric.run_prepared(prepared, args.strategy)
    finally:
        # Deterministic teardown: the executor pool and any
        # shared-memory planes must not outlive the command, even
        # when preparation or replay raises.
        fabric.close()
    emit()
    emit(
        render_table(
            [
                "device",
                "accesses",
                "miss rate %",
                "avg latency us",
                "link ns",
            ],
            [
                [
                    device.device_id,
                    device.accesses,
                    100 * device.stats.miss_rate,
                    device.average_latency_us,
                    device.link.request_latency_ns(CACHE_LINE_SIZE),
                ]
                for device in result.devices
            ],
        )
    )
    totals = result.totals
    emit(
        f"\nfleet: {totals.accesses:,} measured accesses,"
        f" miss rate {100 * totals.miss_rate:.2f}%,"
        f" avg latency {result.average_latency_us:.1f} us"
        f" ({args.strategy})"
    )
    if fabric.injector is not None:
        failover = sum(
            d.failover_stats.accesses
            for d in result.devices
            if d.failover_stats is not None
        )
        degraded_ns = sum(d.degraded_time_ns for d in result.devices)
        emit(
            f"chaos: {len(fabric.injector.timeline())} fault(s)"
            f" [{fabric.injector.timeline_digest()[:12]}],"
            f" {failover:,} failover accesses,"
            f" {degraded_ns:,} ns degraded-link premium"
        )
        for event in fabric.metrics.events():
            emit(
                f"  chunk {event.chunk_index:>5d}"
                f"  {event.key:<10s} {event.kind}"
            )
    # Telemetry also attaches a profiler; the stage table stays an
    # explicit --profile opt-in (and --json owns stdout).
    if args.profile and not args.json:
        _print_profile(fabric.pipeline)
    _finish_telemetry(
        args,
        telemetry,
        extra={
            "command": "fabric",
            "workload": args.workload,
            "strategy": args.strategy,
            "accesses": int(totals.accesses),
            "miss_rate": float(totals.miss_rate),
            "average_latency_us": float(result.average_latency_us),
            "devices": [
                {
                    "device": int(device.device_id),
                    "accesses": int(device.accesses),
                    "miss_rate": float(device.stats.miss_rate),
                    "average_latency_us": float(
                        device.average_latency_us
                    ),
                }
                for device in result.devices
            ],
        },
    )
    return 0


def _cmd_chaos(args) -> int:
    rng = np.random.default_rng(args.seed)
    config = _config_from_args(args)
    telemetry = _telemetry_from_args(args)
    emit = (lambda *a, **k: None) if args.json else print
    # Phase-shifted stream (as ``serve --drift``): the hot region
    # moves at the midpoint so the refresh loop actually runs --
    # otherwise the refresh-fault channel has nothing to hit.
    half = args.length // 2
    head = get_workload(
        args.workload, scale=config.workload_scale
    ).generate(half, rng)
    tail = relocate(
        get_workload(
            args.workload, scale=config.workload_scale
        ).generate(args.length - half, rng),
        base_page=1 << 17,
    )
    pages = np.concatenate(
        [head.addresses >> PAGE_SHIFT, tail.addresses >> PAGE_SHIFT]
    )
    is_write = np.concatenate([head.is_write, tail.is_write])
    parallel = _parallel_from_args(args)
    # Crash retries must cover the scenario's injected attempts, or
    # the run aborts instead of recovering.
    retrying = ParallelConfig(
        workers=parallel.workers,
        backend=parallel.backend,
        max_retries=2,
    )
    topology = FabricTopology(n_devices=args.devices)
    serving = ServingConfig(
        chunk_requests=args.chunk,
        n_shards=args.shards,
        sharding="hash",
        strategy="gmm-caching-eviction",
        refresh_enabled=True,
        drift_baseline_chunks=2,
        drift_patience=2,
        refresh_cooldown_chunks=2,
        # Soft resilience knobs: quick backoff and a late breaker so
        # the refresh-failure scenario can land a good build before
        # the stream ends (the breaker path itself is exercised
        # deterministically in tests/chaos).
        refresh_backoff_chunks=1,
        refresh_breaker_threshold=4,
        quarantine_chunks=8,
        parallel=retrying,
    )

    engine = None
    if any(name in SERVING_SCENARIOS for name in args.scenarios):
        n_train = max(
            config.gmm.n_components + 1, int(len(pages) * 0.3)
        )
        timestamps = transform_timestamps(
            n_train,
            config.len_window,
            config.len_access_shot,
            config.timestamp_mode,
        )
        features = np.column_stack(
            [
                pages[:n_train].astype(np.float64),
                timestamps.astype(np.float64),
            ]
        )
        emit(f"training engine on {n_train:,} requests...")
        engine = GmmPolicyEngine.train(features, config.gmm, rng)

    health = (
        FleetHealthConfig(enabled=True) if args.monitor else None
    )

    def run(name, chaos, telemetry=None):
        if name in SERVING_SCENARIOS:
            return run_serving_scenario(
                chaos, engine, pages, is_write,
                config=config, serving=serving,
                telemetry=telemetry,
            )
        if name in PREPARED_SCENARIOS:
            return run_prepared_scenario(
                chaos, pages, is_write,
                topology=topology, config=config,
                chunk_requests=args.chunk, parallel=retrying,
                health=health, telemetry=telemetry,
            )
        return run_fabric_scenario(
            chaos, pages, is_write,
            topology=topology, config=config,
            chunk_requests=args.chunk, parallel=retrying,
            health=health, telemetry=telemetry,
        )

    baselines = {}
    rows = []
    scorecard = []
    for name in args.scenarios:
        if name in SERVING_SCENARIOS:
            layer = "serving"
        elif name in PREPARED_SCENARIOS:
            layer = "prepared"
        else:
            layer = "fabric"
        if layer not in baselines:
            baselines[layer] = run(name, None)
        base = baselines[layer]
        # Faults are planned over the leading 70% of the stream so
        # the trailing chunks form a clean post-recovery window --
        # except fail-slow ramps, which clamp to the stream's end: a
        # sick device never recovers by waiting, so the whole run is
        # its tail and only quarantine (--monitor) improves it.
        n_chunks = -(-len(pages) // args.chunk)
        horizon = max(1, (7 * n_chunks) // 10)
        if name == "device_failslow":
            horizon = n_chunks
        out = run(
            name,
            scenario_chaos(
                name, args.chaos_seed, horizon_chunks=horizon
            ),
            telemetry=telemetry,
        )
        recover_at = recovery_chunk(out["timeline"], out["events"])
        if "chunk_counters" in out:
            tail = tail_miss_rate(out["chunk_counters"], recover_at)
            base_tail = tail_miss_rate(
                base["chunk_counters"], recover_at
            )
        else:
            # The prepared runner aggregates counters only.
            tail = out["miss_rate"]
            base_tail = base["miss_rate"]
        monitor = out.get("monitor") or {}
        rows.append(
            [
                name,
                layer,
                len(out["timeline"]),
                out["accesses"],
                100 * out["miss_rate"],
                100 * base["miss_rate"],
                100 * tail,
                100 * base_tail,
                out["worker_retries"],
                monitor.get("quarantines", 0),
            ]
        )
        scorecard.append(
            {
                "scenario": name,
                "layer": layer,
                "faults": len(out["timeline"]),
                "timeline_digest": out["timeline_digest"],
                "accesses": int(out["accesses"]),
                "miss_rate": float(out["miss_rate"]),
                "baseline_miss_rate": float(base["miss_rate"]),
                "tail_miss_rate": float(tail),
                "baseline_tail_miss_rate": float(base_tail),
                "worker_retries": int(out["worker_retries"]),
                "quarantines": int(monitor.get("quarantines", 0)),
                "reinstatements": int(
                    monitor.get("reinstatements", 0)
                ),
                "monitor_digest": monitor.get(
                    "decision_digest", ""
                ),
            }
        )
    emit()
    emit(
        render_table(
            [
                "scenario",
                "layer",
                "faults",
                "accesses",
                "miss %",
                "base %",
                "tail %",
                "base tail %",
                "retries",
                "quarantines",
            ],
            rows,
        )
    )
    _finish_telemetry(
        args,
        telemetry,
        extra={"command": "chaos", "scenarios": scorecard},
    )
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs.export import (
        chrome_trace_json,
        prometheus_text,
        snapshot_json,
    )

    snapshot = _load_snapshot(args.snapshot)
    if snapshot is None:
        return 2
    if args.format == "prom":
        sys.stdout.write(
            prometheus_text(snapshot.get("metrics", []))
        )
    elif args.format == "trace":
        sys.stdout.write(
            chrome_trace_json(
                snapshot.get("spans", []),
                snapshot.get("events", []),
            )
        )
    else:
        sys.stdout.write(snapshot_json(snapshot))
    return 0


def _cmd_top(args) -> int:
    from repro.obs.dashboard import render_top

    snapshot = _load_snapshot(args.snapshot)
    if snapshot is None:
        return 2
    sys.stdout.write(render_top(snapshot))
    return 0


def _cmd_hardware_report(_args) -> int:
    fpga = FpgaSpec()
    gmm = estimate_gmm_engine()
    lstm = estimate_lstm_engine()
    gmm_timing = GmmEngineTiming()
    lstm_timing = LstmEngineTiming()
    print(
        render_table(
            ["engine", "BRAM", "DSP", "LUT", "FF", "latency"],
            [
                ["LSTM", lstm.bram, lstm.dsp, lstm.lut, lstm.ff,
                 f"{lstm_timing.latency_us(fpga) / 1000:.1f} ms"],
                ["GMM", gmm.bram, gmm.dsp, gmm.lut, gmm.ff,
                 f"{gmm_timing.latency_us(fpga):.1f} us"],
            ],
        )
    )
    system = estimate_icgmm_system()
    utilization = system.utilization(fpga)
    print(
        f"system: {system.bram} BRAM ({utilization['bram']:.0%}),"
        f" {system.dsp} DSP ({utilization['dsp']:.0%});"
        f" speedup"
        f" {engine_speedup(lstm_timing, gmm_timing, fpga):,.0f}x"
    )
    return 0


_COMMANDS = {
    "generate-trace": _cmd_generate_trace,
    "run": _cmd_run,
    "suite": _cmd_suite,
    "serve": _cmd_serve,
    "fabric": _cmd_fabric,
    "chaos": _cmd_chaos,
    "metrics": _cmd_metrics,
    "top": _cmd_top,
    "hardware-report": _cmd_hardware_report,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ICGMM reproduction command-line interface",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_generate_trace(subparsers)
    _add_run(subparsers)
    _add_suite(subparsers)
    _add_serve(subparsers)
    _add_fabric(subparsers)
    _add_chaos(subparsers)
    _add_metrics(subparsers)
    _add_top(subparsers)
    _add_hardware_report(subparsers)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Deterministic labeled metrics: counters, gauges, histograms.

The registry is the single sink every subsystem's quantitative state
lands in -- the serving loop's :class:`~repro.serving.metrics.
RollingMetrics`, the pipeline's :class:`~repro.core.pipeline.
StageProfiler`, the fabric's failover/pricing accumulators, the
executor's dispatch/retry counters, and the refresher's build
outcomes.  Two registration styles coexist:

* **push** -- hot-path call sites hold an instrument handle and call
  ``inc``/``observe`` directly (a dict update per *chunk*, never per
  access, so the enabled-mode overhead stays inside the bench gate);
* **pull** -- a *collector* callable registered via
  :meth:`MetricsRegistry.register_collector` reads a component's
  existing accumulators and ``set``\\ s gauges/counters at collection
  time (zero hot-path cost).

Determinism contract: histogram bucket edges are fixed at
registration (:func:`exponential_edges` -- never derived from data),
and every instrument declares whether its *values* are deterministic
functions of the run (counters over logical events, ratios over
counters) or wall-clock measurements (stage seconds).  The canonical
snapshot digest (:mod:`repro.obs.export`) covers only the
deterministic subset, so one seed produces one digest regardless of
worker count or host speed.

Every metric name must be ``snake_case`` and end in a unit suffix
(:data:`UNIT_SUFFIXES`) -- enforced at registration and re-checked by
the naming lint test over a fully-wired run.
"""

from __future__ import annotations

import re
from typing import Callable, Iterable

#: Allowed terminal name components.  ``_total``/``_count`` mark event
#: counts, ``_ratio``/``_share``/``_percent`` dimensionless fractions,
#: and the rest physical units.
UNIT_SUFFIXES = (
    "total",
    "count",
    "ratio",
    "share",
    "percent",
    "us",
    "ns",
    "seconds",
    "bytes",
    "chunks",
    "info",
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9]*(?:_[a-z0-9]+)*$")

#: Instrument kinds.
KIND_COUNTER = "counter"
KIND_GAUGE = "gauge"
KIND_HISTOGRAM = "histogram"


def validate_metric_name(name: str) -> None:
    """Raise :class:`ValueError` unless ``name`` follows convention.

    Convention: ``snake_case`` (lowercase alphanumerics joined by
    single underscores) ending in one of :data:`UNIT_SUFFIXES`.
    """
    if not _NAME_RE.match(name):
        raise ValueError(
            f"metric name {name!r} is not snake_case"
            " (lowercase alphanumerics joined by single underscores)"
        )
    suffix = name.rsplit("_", 1)[-1]
    if suffix not in UNIT_SUFFIXES:
        raise ValueError(
            f"metric name {name!r} must end in a unit suffix"
            f" (one of {UNIT_SUFFIXES})"
        )


def exponential_edges(
    start: float, factor: float, count: int
) -> tuple[float, ...]:
    """``count`` fixed exponential bucket edges from ``start``.

    Edges are ``start * factor**i`` -- a pure function of the three
    arguments, so the same registration always yields byte-identical
    buckets (the determinism the snapshot digest rests on).
    """
    if start <= 0.0:
        raise ValueError("start must be > 0")
    if factor <= 1.0:
        raise ValueError("factor must be > 1")
    if count < 1:
        raise ValueError("count must be >= 1")
    return tuple(start * factor**i for i in range(count))


#: Shared edge sets for the common value domains.
RATIO_EDGES = exponential_edges(1.0 / 1024.0, 2.0, 11)  # ..1.0
LATENCY_EDGES_US = exponential_edges(0.0625, 2.0, 16)  # ..2048us
SECONDS_EDGES = exponential_edges(1e-4, 4.0, 10)


class Counter:
    """Monotonic event count (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counter increments must be >= 0")
        self.value += amount

    def set(self, value: float) -> None:
        """Pull-style update from a monotonic source accumulator."""
        self.value = float(value)


class Gauge:
    """Point-in-time value (one labeled child)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket distribution (one labeled child).

    ``counts[i]`` counts observations ``<= edges[i]``, with one
    overflow bucket at the end (the ``+Inf`` bucket of the text
    exposition); ``sum``/``count`` track the usual aggregates.
    """

    __slots__ = ("edges", "counts", "sum", "count")

    def __init__(self, edges: tuple[float, ...]) -> None:
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        value = float(value)
        index = len(self.edges)
        for i, edge in enumerate(self.edges):
            if value <= edge:
                index = i
                break
        self.counts[index] += 1
        self.sum += value
        self.count += 1


_INSTRUMENTS = {
    KIND_COUNTER: Counter,
    KIND_GAUGE: Gauge,
    KIND_HISTOGRAM: Histogram,
}


class MetricFamily:
    """One named metric and its labeled children.

    Children are created on first :meth:`labels` call and keyed by
    the label *values* in the family's fixed label-name order; a
    label-less family proxies ``inc``/``set``/``observe`` to its
    single implicit child.
    """

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        label_names: tuple[str, ...] = (),
        deterministic: bool = True,
        edges: tuple[float, ...] | None = None,
    ) -> None:
        validate_metric_name(name)
        if kind not in _INSTRUMENTS:
            raise ValueError(f"unknown metric kind {kind!r}")
        if kind == KIND_HISTOGRAM and not edges:
            raise ValueError("histogram families need bucket edges")
        self.name = name
        self.kind = kind
        self.help = help
        self.label_names = tuple(label_names)
        self.deterministic = bool(deterministic)
        self.edges = tuple(edges) if edges is not None else None
        self._children: dict[tuple[str, ...], object] = {}

    def labels(self, **labels: object):
        """The child instrument at these label values (created once)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name}: expected labels {self.label_names},"
                f" got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            child = (
                Histogram(self.edges)
                if self.kind == KIND_HISTOGRAM
                else _INSTRUMENTS[self.kind]()
            )
            self._children[key] = child
        return child

    # -- label-less convenience proxies --------------------------------
    def _default(self):
        if self.label_names:
            raise ValueError(
                f"{self.name} is labeled; use .labels(...) first"
            )
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._default().inc(amount)

    def set(self, value: float) -> None:
        self._default().set(value)

    def observe(self, value: float) -> None:
        self._default().observe(value)

    # -- canonical serialization ---------------------------------------
    def samples(self) -> list[dict]:
        """Children as dicts, sorted by label values (canonical)."""
        out = []
        for key in sorted(self._children):
            child = self._children[key]
            sample: dict = {
                "labels": dict(
                    zip(self.label_names, key, strict=True)
                ),
            }
            if self.kind == KIND_HISTOGRAM:
                sample["buckets"] = list(child.edges)
                sample["counts"] = list(child.counts)
                sample["sum"] = child.sum
                sample["count"] = child.count
            else:
                sample["value"] = child.value
            out.append(sample)
        return out

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "deterministic": self.deterministic,
            "samples": self.samples(),
        }


class MetricsRegistry:
    """Get-or-create registry of :class:`MetricFamily` instances.

    Re-registering an existing name is idempotent when the kind and
    label names match (so several components can share one family,
    e.g. the executor counters labeled by component) and an error
    otherwise -- a name can never silently change meaning.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], None]] = []

    def _register(
        self,
        name: str,
        kind: str,
        help: str,
        labels: Iterable[str],
        deterministic: bool,
        edges: tuple[float, ...] | None = None,
    ) -> MetricFamily:
        labels = tuple(labels)
        existing = self._families.get(name)
        if existing is not None:
            if (
                existing.kind != kind
                or existing.label_names != labels
                or existing.edges != (edges if edges is None else tuple(edges))
            ):
                raise ValueError(
                    f"metric {name!r} already registered as"
                    f" {existing.kind} with labels"
                    f" {existing.label_names}"
                )
            return existing
        family = MetricFamily(
            name,
            kind,
            help=help,
            label_names=labels,
            deterministic=deterministic,
            edges=edges,
        )
        self._families[name] = family
        return family

    def counter(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        deterministic: bool = True,
    ) -> MetricFamily:
        return self._register(
            name, KIND_COUNTER, help, labels, deterministic
        )

    def gauge(
        self,
        name: str,
        help: str = "",
        labels: Iterable[str] = (),
        deterministic: bool = True,
    ) -> MetricFamily:
        return self._register(
            name, KIND_GAUGE, help, labels, deterministic
        )

    def histogram(
        self,
        name: str,
        edges: tuple[float, ...],
        help: str = "",
        labels: Iterable[str] = (),
        deterministic: bool = True,
    ) -> MetricFamily:
        return self._register(
            name, KIND_HISTOGRAM, help, labels, deterministic,
            edges=tuple(edges),
        )

    def register_collector(self, collect: Callable[[], None]) -> None:
        """Add a pull-style collector run by :meth:`collect`.

        Collectors run in registration order (deterministic: a later
        registrant's ``set`` wins on a shared child), and must only
        ``set`` values -- repeated collection is idempotent.
        """
        self._collectors.append(collect)

    def collect(self) -> None:
        """Run every registered collector once."""
        for collect in self._collectors:
            collect()

    def families(self) -> list[MetricFamily]:
        """All families in canonical (name-sorted) order."""
        return [
            self._families[name] for name in sorted(self._families)
        ]

    def as_dicts(self, run_collectors: bool = True) -> list[dict]:
        """Canonical metrics section of the telemetry snapshot."""
        if run_collectors:
            self.collect()
        return [family.as_dict() for family in self.families()]

    def __contains__(self, name: str) -> bool:
        return name in self._families

    def __len__(self) -> int:
        return len(self._families)

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(families={len(self._families)},"
            f" collectors={len(self._collectors)})"
        )

"""Telemetry exporters: Prometheus text, canonical JSON, Chrome trace.

All three formats render from the same canonical snapshot structure
(:func:`build_snapshot`), so there is exactly one serialization path
to keep deterministic.  The snapshot digest follows the FaultPlan
convention (``repro.chaos.plan``): SHA-256 over minified sorted-key
JSON -- but restricted to the *deterministic* subset (metrics flagged
``deterministic``, all spans, all events, any embedded extra
payload), so wall-clock gauges like ``stage_wall_seconds`` never
perturb it.
"""

from __future__ import annotations

import hashlib
import json

SNAPSHOT_SCHEMA = "repro.telemetry/v1"

#: Event kinds that open/close a fault window (rendered as one
#: duration slice in the Chrome trace); all other kinds render as
#: instant events.
EVENT_PAIRS = {
    "device-down": "device-restored",
    "breaker-open": "breaker-close",
    "stall-degraded": "stall-recovered",
    "device-quarantined": "device-reinstated",
    "failslow-onset": "failslow-cleared",
}


def canonical_json(payload) -> str:
    """Minified, key-sorted JSON -- the digestible byte form."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def digest_payload(payload) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def build_snapshot(
    metrics: list[dict],
    spans: list[dict],
    events: list[dict],
    extra: dict | None = None,
) -> dict:
    """The canonical snapshot dict with its reproducibility digest.

    ``metrics``/``spans``/``events`` are the already-canonical dict
    forms from :class:`~repro.obs.registry.MetricsRegistry`,
    :class:`~repro.obs.trace.Tracer`, and the component event
    sources; ``extra`` carries a command's primary payload (summary,
    fabric result, chaos scorecard) for ``--json`` output.
    """
    digest_src = {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": [m for m in metrics if m.get("deterministic")],
        "spans": spans,
        "events": events,
    }
    if extra is not None:
        digest_src["extra"] = extra
    snapshot = {
        "schema": SNAPSHOT_SCHEMA,
        "digest": digest_payload(digest_src),
        "metrics": metrics,
        "spans": spans,
        "events": events,
    }
    if extra is not None:
        snapshot["extra"] = extra
    return snapshot


def snapshot_json(snapshot: dict) -> str:
    """Pretty canonical JSON (sorted keys, trailing newline)."""
    return json.dumps(snapshot, sort_keys=True, indent=2) + "\n"


# -- Prometheus text exposition ---------------------------------------


def _prom_labels(labels: dict, extra: dict | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_prom_escape(str(value))}"'
        for key, value in merged.items()
    )
    return "{" + body + "}"


def _prom_escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: list[dict]) -> str:
    """Render the snapshot metrics section as Prometheus exposition."""
    lines: list[str] = []
    for family in metrics:
        name = family["name"]
        if family.get("help"):
            lines.append(f"# HELP {name} {family['help']}")
        lines.append(f"# TYPE {name} {family['type']}")
        for sample in family["samples"]:
            labels = sample["labels"]
            if family["type"] == "histogram":
                cumulative = 0
                for edge, count in zip(
                    sample["buckets"], sample["counts"], strict=False
                ):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_prom_labels(labels, {'le': _prom_number(edge)})}"
                        f" {cumulative}"
                    )
                cumulative += sample["counts"][-1]
                lines.append(
                    f"{name}_bucket{_prom_labels(labels, {'le': '+Inf'})}"
                    f" {cumulative}"
                )
                lines.append(
                    f"{name}_sum{_prom_labels(labels)}"
                    f" {_prom_number(sample['sum'])}"
                )
                lines.append(
                    f"{name}_count{_prom_labels(labels)}"
                    f" {sample['count']}"
                )
            else:
                lines.append(
                    f"{name}{_prom_labels(labels)}"
                    f" {_prom_number(sample['value'])}"
                )
    return "\n".join(lines) + "\n"


# -- Chrome/Perfetto trace-event JSON ---------------------------------

_TID_SPANS = 0
_TID_FAULTS = 1


def chrome_trace(spans: list[dict], events: list[dict]) -> dict:
    """Trace-event JSON: spans on tid 0, fault windows on tid 1.

    Logical-clock ticks map directly to microsecond ``ts`` values --
    the absolute scale is meaningless but ordering and containment
    are exact.  Paired component events (:data:`EVENT_PAIRS`) close
    over their matching open event per (kind, key) so chaos fault
    windows render as duration slices alongside the stage spans.
    """
    trace_events: list[dict] = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": _TID_SPANS,
            "args": {"name": "spans"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": _TID_FAULTS,
            "args": {"name": "fault-windows"},
        },
    ]
    for span in spans:
        start = span["start"]
        end = span["end"] if span["end"] is not None else start + 1
        trace_events.append(
            {
                "name": f"{span['component']}.{span['name']}",
                "cat": span["component"],
                "ph": "X",
                "ts": start,
                "dur": max(1, end - start),
                "pid": 0,
                "tid": _TID_SPANS,
                "args": {
                    "id": span["id"],
                    "parent_id": span["parent_id"],
                    **span["attrs"],
                },
            }
        )
    close_to_open = {v: k for k, v in EVENT_PAIRS.items()}
    open_events: dict[tuple[str, str], dict] = {}
    for event in events:
        kind = event.get("kind", "")
        key = str(event.get("key", ""))
        clock = int(event.get("chunk_index", 0))
        if kind in EVENT_PAIRS:
            open_events[(kind, key)] = event
            continue
        if kind in close_to_open:
            opener = open_events.pop((close_to_open[kind], key), None)
            if opener is not None:
                start = int(opener.get("chunk_index", 0))
                trace_events.append(
                    {
                        "name": f"{close_to_open[kind]}:{key}",
                        "cat": "fault",
                        "ph": "X",
                        "ts": start,
                        "dur": max(1, clock - start),
                        "pid": 0,
                        "tid": _TID_FAULTS,
                        "args": {
                            "open": dict(opener.get("info", {})),
                            "close": dict(event.get("info", {})),
                        },
                    }
                )
                continue
        trace_events.append(
            {
                "name": f"{kind}:{key}",
                "cat": "fault",
                "ph": "i",
                "s": "t",
                "ts": clock,
                "pid": 0,
                "tid": _TID_FAULTS,
                "args": dict(event.get("info", {})),
            }
        )
    # Unclosed windows (run ended mid-fault) render as instants at
    # their opening clock so they are not silently dropped.
    for (kind, key), opener in open_events.items():
        trace_events.append(
            {
                "name": f"{kind}:{key} (unclosed)",
                "cat": "fault",
                "ph": "i",
                "s": "t",
                "ts": int(opener.get("chunk_index", 0)),
                "pid": 0,
                "tid": _TID_FAULTS,
                "args": dict(opener.get("info", {})),
            }
        )
    return {"traceEvents": trace_events}


def chrome_trace_json(spans: list[dict], events: list[dict]) -> str:
    return (
        json.dumps(chrome_trace(spans, events), sort_keys=True, indent=2)
        + "\n"
    )

"""Adapters binding existing components into the telemetry layer.

Each ``register_*`` function installs a **pull collector** on a
:class:`~repro.obs.registry.MetricsRegistry` that reads a component's
already-maintained accumulators (``RollingMetrics`` windows,
``StageProfiler`` sections, ``ParallelExecutor`` counters,
``FaultInjector`` timeline, ``ModelRefresher`` build counts) and sets
the corresponding instruments at collection time.  Nothing here runs
on a hot path, and nothing here imports the component modules: the
sources are duck-typed, so ``repro.obs`` stays a leaf package the
serving/fabric/chaos layers can import without cycles.

Collectors only ``set`` values derived from their source's current
state, so repeated collection is idempotent and re-registering after
a component reset simply rebinds the same families.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry


def register_rolling(
    registry: MetricsRegistry, rolling, scope: str
) -> None:
    """Export a ``RollingMetrics``'s snapshot under ``scope``.

    One gauge family per snapshot column, labeled ``(scope, key)`` so
    shard and tenant views of the same service coexist; the degraded
    lens appears only for keys that actually served degraded traffic
    (mirroring ``snapshot()``'s conditional fields).
    """
    miss = registry.gauge(
        "rolling_miss_ratio",
        help="Rolling-window miss ratio per shard/tenant key.",
        labels=("scope", "key"),
    )
    latency = registry.gauge(
        "rolling_latency_us",
        help="Rolling-window Table 1 average access time.",
        labels=("scope", "key"),
    )
    share = registry.gauge(
        "rolling_traffic_share",
        help="Key's share of rolling-window accesses.",
        labels=("scope", "key"),
    )
    accesses = registry.counter(
        "rolling_accesses_total",
        help="Accesses in the rolling window per key.",
        labels=("scope", "key"),
    )
    degraded_accesses = registry.counter(
        "rolling_degraded_accesses_total",
        help="Accesses served in degraded mode per key.",
        labels=("scope", "key"),
    )
    degraded_miss = registry.gauge(
        "rolling_degraded_miss_ratio",
        help="Miss ratio over degraded-mode traffic per key.",
        labels=("scope", "key"),
    )
    events = registry.gauge(
        "rolling_events_count",
        help="Failure/recovery transitions recorded.",
        labels=("scope",),
    )

    def collect() -> None:
        snapshot = rolling.snapshot()
        for key in sorted(snapshot):
            row = snapshot[key]
            miss.labels(scope=scope, key=key).set(row["miss_rate"])
            latency.labels(scope=scope, key=key).set(
                row["latency_us"]
            )
            share.labels(scope=scope, key=key).set(
                row["traffic_share"]
            )
            accesses.labels(scope=scope, key=key).set(
                row["accesses"]
            )
            if "degraded_accesses" in row:
                degraded_accesses.labels(scope=scope, key=key).set(
                    row["degraded_accesses"]
                )
                degraded_miss.labels(scope=scope, key=key).set(
                    row["degraded_miss_rate"]
                )
        events.labels(scope=scope).set(len(rolling.events()))

    registry.register_collector(collect)


def rolling_event_source(rolling, scope: str):
    """Event-source callable over a ``RollingMetrics`` timeline.

    Returns the canonical event dict form the exporters consume
    (``info`` nested, keys sorted) -- the bridge satellite that turns
    chaos fault windows into trace slices.
    """

    def events() -> list[dict]:
        return [
            {
                "scope": scope,
                "key": event.key,
                "kind": event.kind,
                "chunk_index": int(event.chunk_index),
                "info": dict(sorted(event.info.items())),
            }
            for event in rolling.events()
        ]

    return events


def register_stage_profiler(
    registry: MetricsRegistry, profiler
) -> None:
    """Export a ``StageProfiler``'s sections.

    Call counts are logical (deterministic); wall-clock seconds are
    flagged non-deterministic so they never enter the snapshot
    digest.
    """
    seconds = registry.gauge(
        "stage_wall_seconds",
        help="Accumulated wall-clock per pipeline stage section.",
        labels=("stage",),
        deterministic=False,
    )
    calls = registry.gauge(
        "stage_calls_count",
        help="Entries into each pipeline stage section.",
        labels=("stage",),
    )

    def collect() -> None:
        for name in sorted(profiler.seconds):
            seconds.labels(stage=name).set(profiler.seconds[name])
            calls.labels(stage=name).set(profiler.calls.get(name, 0))

    registry.register_collector(collect)


def register_executor(
    registry: MetricsRegistry, executor, component: str
) -> None:
    """Export a ``ParallelExecutor``'s dispatch/retry counters.

    Dispatch rounds and retries are parent-side logical counters
    (identical at every worker count); the worker count itself is a
    run parameter, flagged non-deterministic so workers=1 and
    workers=4 runs still digest identically.
    """
    rounds = registry.counter(
        "executor_dispatch_rounds_total",
        help="Fan-out calls issued by the executor.",
        labels=("component",),
    )
    retries = registry.counter(
        "executor_retries_total",
        help="Attempts recovered (injected crashes + real retries).",
        labels=("component",),
    )
    tasks = registry.counter(
        "executor_tasks_total",
        help="Tasks/items submitted across all fan-out calls.",
        labels=("component",),
    )
    workers = registry.gauge(
        "executor_workers_count",
        help="Configured concurrent workers.",
        labels=("component",),
        deterministic=False,
    )

    def collect() -> None:
        rounds.labels(component=component).set(
            executor.dispatch_rounds
        )
        retries.labels(component=component).set(
            executor.retries_performed
        )
        tasks.labels(component=component).set(
            executor.tasks_dispatched
        )
        workers.labels(component=component).set(executor.workers)

    registry.register_collector(collect)


def register_injector(registry: MetricsRegistry, injector) -> None:
    """Export a ``FaultInjector``'s observed timeline as per-kind
    fault counts (the timeline digest itself stays the chaos
    harness's own artifact)."""
    faults = registry.counter(
        "chaos_faults_total",
        help="Faults that actually fired, by plan kind.",
        labels=("kind",),
    )

    def collect() -> None:
        counts: dict[str, int] = {}
        for event in injector.timeline():
            kind = event["kind"]
            counts[kind] = counts.get(kind, 0) + 1
        for kind in sorted(counts):
            faults.labels(kind=kind).set(counts[kind])

    registry.register_collector(collect)


def register_health_monitor(
    registry: MetricsRegistry, monitor
) -> None:
    """Export a ``FleetHealthMonitor``'s counters and fleet states.

    Quarantine/reinstatement/suspect counts are logical decisions
    (bit-identical across worker counts, which the recovery bench
    asserts via the monitor's own decision digest); the per-state
    device counts give an operator the live fleet shape.
    """
    quarantines = registry.counter(
        "health_quarantines_total",
        help="Devices pulled from placement by the monitor.",
    )
    reinstatements = registry.counter(
        "health_reinstatements_total",
        help="Devices returned to service after clean probation.",
    )
    suspects = registry.counter(
        "health_suspects_total",
        help="Breach streaks opened (first breach observations).",
    )
    devices = registry.gauge(
        "health_devices_count",
        help="Devices currently in each monitor state.",
        labels=("state",),
    )

    def collect() -> None:
        quarantines.set(monitor.quarantines)
        reinstatements.set(monitor.reinstatements)
        suspects.set(monitor.suspects)
        counts: dict[str, int] = {}
        for device in range(monitor.n_devices):
            state = monitor.state(device)
            counts[state] = counts.get(state, 0) + 1
        for state in sorted(counts):
            devices.labels(state=state).set(counts[state])

    registry.register_collector(collect)


def register_frontend(registry: MetricsRegistry, frontend) -> None:
    """Export a ``ServingFrontend``'s queue/latency accounting.

    Every family is flagged non-deterministic: queue depths and
    request latencies are wall-clock artifacts of the schedule, and
    keeping them out of the snapshot digest is what lets the
    deterministic pipeline mode digest byte-identically to the plain
    synchronous loop.  The request-latency histogram is republished
    bucket-for-bucket from the front-end's ``RollingMetrics``
    accumulator (same fixed edges), so Prometheus/JSON consumers see
    the exact distribution the p50/p99 helpers are computed from.
    """
    depth = registry.gauge(
        "frontend_queue_depth_chunks",
        help="Chunks buffered in the ingest queue right now.",
        deterministic=False,
    )
    max_depth = registry.gauge(
        "frontend_queue_max_depth_chunks",
        help="High-water mark of the ingest queue.",
        deterministic=False,
    )
    stalls = registry.counter(
        "frontend_backpressure_stalls_total",
        help="Producer puts refused or blocked by a full queue.",
        deterministic=False,
    )
    producer_wait = registry.gauge(
        "frontend_producer_wait_seconds",
        help="Wall time the producer spent blocked on backpressure.",
        deterministic=False,
    )
    ingest_wait = registry.gauge(
        "frontend_ingest_wait_seconds",
        help="Wall time the consumer spent waiting for chunks.",
        deterministic=False,
    )
    chunks = registry.counter(
        "frontend_chunks_total",
        help="Chunks consumed through the pipeline.",
        deterministic=False,
    )
    requests = registry.counter(
        "frontend_requests_total",
        help="Requests consumed through the pipeline.",
        deterministic=False,
    )
    overlap = registry.counter(
        "frontend_refresh_overlap_chunks_total",
        help="Chunks served while a refresh built off-path.",
        deterministic=False,
    )
    latency = registry.histogram(
        "frontend_request_latency_us",
        edges=tuple(frontend.request_metrics.latency_edges_us),
        help="Per-request service latency (chunk wall time).",
        deterministic=False,
    )

    def collect() -> None:
        queue = frontend.queue
        if queue is not None:
            depth.set(queue.depth)
            max_depth.set(queue.max_depth)
            stalls.set(queue.blocked_puts)
            producer_wait.set(queue.producer_wait_s)
            ingest_wait.set(queue.consumer_wait_s)
        chunks.set(frontend.consumed_chunks)
        requests.set(frontend.consumed_requests)
        overlap.set(frontend.service.refresh_overlap_chunks)
        observed = frontend.request_metrics.latency_histogram(
            "request"
        )
        if observed is not None:
            edges, counts, sum_us, total = observed
            child = latency.labels()
            child.counts[:] = counts
            child.sum = float(sum_us)
            child.count = int(total)

    registry.register_collector(collect)


def register_refresher(registry: MetricsRegistry, refresher) -> None:
    """Export a ``ModelRefresher``'s build/buffer state."""
    built = registry.counter(
        "refresher_builds_total",
        help="Refreshed engines successfully built.",
    )
    attempted = registry.counter(
        "refresher_build_attempts_total",
        help="Build invocations, including failed folds.",
    )
    buffered = registry.gauge(
        "refresher_buffered_samples_count",
        help="Feature rows currently buffered for the next fold-in.",
    )

    def collect() -> None:
        built.set(refresher.refreshes_built)
        attempted.set(refresher.builds_attempted)
        buffered.set(refresher.buffered_samples)

    registry.register_collector(collect)

"""``repro top``: a one-shot text dashboard over a telemetry snapshot.

Renders the operator's glance view from a canonical snapshot dict
(live :meth:`repro.obs.Telemetry.snapshot` or one loaded from a
``--telemetry-out`` file): headline counters, the per-key rolling
table, stage shares, and the most recent failure/recovery
transitions.  Pure formatting -- no registry access, no state.
"""

from __future__ import annotations

_HEADLINE_ORDER = (
    "serving_chunks_total",
    "serving_accesses_total",
    "serving_hits_total",
    "serving_misses_total",
    "serving_engine_swaps_total",
    "fabric_chunks_total",
    "fabric_accesses_total",
    "fabric_failover_accesses_total",
    "executor_dispatch_rounds_total",
    "executor_retries_total",
    "chaos_faults_total",
    "tracer_spans_total",
)

_EVENT_TAIL = 8


def _families(snapshot: dict) -> dict[str, dict]:
    return {
        family["name"]: family
        for family in snapshot.get("metrics", [])
    }


def _family_total(family: dict) -> float:
    return sum(
        sample.get("value", 0.0) for sample in family["samples"]
    )


def _format_value(value: float) -> str:
    if value == int(value):
        return f"{int(value):,}"
    return f"{value:,.3f}"


def _histogram_quantile(sample: dict, q: float) -> float | None:
    """Inverted-CDF quantile from a snapshot histogram sample.

    Mirrors ``RollingMetrics.latency_quantile`` (smallest bucket edge
    whose cumulative count reaches ``ceil(q * N)``); the overflow
    bucket has no max-observed value in the snapshot, so a quantile
    landing there reports as ``None`` and the caller omits the row.
    """
    total = int(sample.get("count", 0))
    edges = sample.get("buckets", ())
    counts = sample.get("counts", ())
    if total <= 0 or not edges or not counts:
        return None
    rank = -((-q * total) // 1.0)
    if rank - q * total >= 1.0 - 1e-9:
        rank -= 1.0
    rank = max(rank, 1.0)
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += int(count)
        if cumulative >= rank:
            if index < len(edges):
                return float(edges[index])
            return None
    return None


def render_top(snapshot: dict) -> str:
    """The full dashboard text (trailing newline included)."""
    families = _families(snapshot)
    lines: list[str] = []
    digest = snapshot.get("digest", "")
    lines.append(
        f"telemetry {snapshot.get('schema', '?')}"
        + (f"  digest {digest[:12]}" if digest else "")
    )

    headline = [
        (name, _family_total(families[name]))
        for name in _HEADLINE_ORDER
        if name in families and families[name]["samples"]
    ]
    if headline:
        lines.append("")
        lines.append("== counters ==")
        width = max(len(name) for name, _ in headline)
        for name, value in headline:
            lines.append(f"  {name:<{width}}  {_format_value(value)}")

    frontend = families.get("frontend_chunks_total")
    if frontend is not None and frontend["samples"]:
        lines.append("")
        lines.append("== frontend ==")

        def _value(name: str) -> float:
            family = families.get(name)
            if family is None or not family["samples"]:
                return 0.0
            return _family_total(family)

        lines.append(
            f"  chunks={int(_value('frontend_chunks_total'))}"
            f"  requests={int(_value('frontend_requests_total'))}"
            f"  queue={int(_value('frontend_queue_depth_chunks'))}"
            f"/{int(_value('frontend_queue_max_depth_chunks'))} max"
            f"  stalls="
            f"{int(_value('frontend_backpressure_stalls_total'))}"
            f"  refresh_overlap="
            f"{int(_value('frontend_refresh_overlap_chunks_total'))}"
        )
        latency = families.get("frontend_request_latency_us")
        if latency is not None and latency["samples"]:
            sample = latency["samples"][0]
            p50 = _histogram_quantile(sample, 0.50)
            p99 = _histogram_quantile(sample, 0.99)
            if p50 is not None and p99 is not None:
                lines.append(
                    f"  latency p50={p50:,.1f}us p99={p99:,.1f}us"
                    f"  ({int(sample.get('count', 0)):,} requests)"
                )

    rolling = families.get("rolling_miss_ratio")
    if rolling is not None and rolling["samples"]:
        lines.append("")
        lines.append("== rolling (scope/key) ==")
        latency = families.get("rolling_latency_us")
        share = families.get("rolling_traffic_share")
        latency_by = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in (latency["samples"] if latency else ())
        }
        share_by = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in (share["samples"] if share else ())
        }
        lines.append(
            f"  {'key':<24} {'miss':>8} {'lat_us':>10} {'share':>7}"
        )
        for sample in rolling["samples"]:
            labels = sample["labels"]
            label_key = tuple(sorted(labels.items()))
            key = f"{labels.get('scope', '?')}/{labels.get('key', '?')}"
            lines.append(
                f"  {key:<24}"
                f" {sample['value']:>8.4f}"
                f" {latency_by.get(label_key, 0.0):>10.3f}"
                f" {share_by.get(label_key, 0.0):>7.3f}"
            )

    stages = families.get("stage_wall_seconds")
    if stages is not None and stages["samples"]:
        lines.append("")
        lines.append("== stages ==")
        total = _family_total(stages) or 1.0
        calls = families.get("stage_calls_count")
        calls_by = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in (calls["samples"] if calls else ())
        }
        for sample in stages["samples"]:
            labels = sample["labels"]
            label_key = tuple(sorted(labels.items()))
            lines.append(
                f"  {labels.get('stage', '?'):<20}"
                f" {sample['value']:>10.4f}s"
                f" {sample['value'] / total:>6.1%}"
                f"  calls={int(calls_by.get(label_key, 0))}"
            )

    events = snapshot.get("events", [])
    if events:
        lines.append("")
        lines.append(f"== events (last {_EVENT_TAIL}) ==")
        for event in events[-_EVENT_TAIL:]:
            lines.append(
                f"  @{event.get('chunk_index', 0):>5}"
                f"  {event.get('kind', '?'):<18}"
                f" {event.get('key', '')}"
            )

    span_count = len(snapshot.get("spans", []))
    lines.append("")
    lines.append(f"{span_count} spans, {len(events)} events recorded")
    return "\n".join(lines) + "\n"

"""Unified deterministic telemetry: metrics, tracing, exporters.

One :class:`Telemetry` object travels through a run -- the serving
loop, the CXL fabric, the staged pipeline, the chaos scenario runners
all accept ``telemetry=None`` and bind their instruments when given
one.  It bundles:

* a :class:`~repro.obs.registry.MetricsRegistry` of labeled
  counters/gauges/fixed-bucket histograms every subsystem registers
  into (push on chunk boundaries, pull via collectors at export);
* a :class:`~repro.obs.trace.Tracer` producing a logical-clock span
  tree (pipeline stages, fabric chunks and device rounds, serving
  chunks and shards, refresh builds) with seed-derived span IDs --
  bit-reproducible across runs and worker counts;
* *event sources* -- callables yielding failure/recovery timelines
  (``RollingMetrics.events``) that the exporters render alongside the
  spans, so chaos fault windows appear as slices in the trace view.

Three export formats, all off one canonical snapshot
(:mod:`repro.obs.export`): Prometheus text exposition, canonical JSON
with a SHA-256 digest (the reproducibility artifact), and
Chrome/Perfetto trace-event JSON.

The disabled form is ``None``, never a no-op object -- exactly the
chaos-harness contract -- so ``telemetry=None`` call paths are
byte-identical to a build without this package.
"""

from __future__ import annotations

from repro.core.config import TelemetryConfig
from repro.obs.export import (
    EVENT_PAIRS,
    SNAPSHOT_SCHEMA,
    build_snapshot,
    canonical_json,
    chrome_trace,
    chrome_trace_json,
    digest_payload,
    prometheus_text,
    snapshot_json,
)
from repro.obs.registry import (
    LATENCY_EDGES_US,
    RATIO_EDGES,
    SECONDS_EDGES,
    UNIT_SUFFIXES,
    MetricsRegistry,
    exponential_edges,
    validate_metric_name,
)
from repro.obs.trace import Span, Tracer, span_id
from repro.obs import bridge


class Telemetry:
    """The run-scoped bundle of registry + tracer + event sources."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = (
            config
            if config is not None
            else TelemetryConfig(enabled=True)
        )
        self.registry = MetricsRegistry()
        self.tracer = Tracer(
            seed=self.config.seed, max_spans=self.config.max_spans
        )
        self._event_sources = []
        self.registry.register_collector(self._collect_tracer)

    @classmethod
    def from_config(
        cls, config: TelemetryConfig | None
    ) -> "Telemetry | None":
        """A telemetry bundle, or ``None`` when disabled.

        ``None`` (not a no-op object) is the disabled form so every
        instrumented layer gates on ``if telemetry is not None`` and
        runs its exact pre-telemetry code path otherwise.
        """
        if config is None or not config.enabled:
            return None
        return cls(config)

    def _collect_tracer(self) -> None:
        self.registry.counter(
            "tracer_dropped_spans_total",
            help="Spans discarded at the max_spans cap.",
        ).set(self.tracer.dropped)
        self.registry.counter(
            "tracer_spans_total", help="Spans recorded."
        ).set(len(self.tracer))

    def add_event_source(self, source) -> None:
        """Register a callable returning canonical event dicts."""
        self._event_sources.append(source)

    def events(self) -> list[dict]:
        """All source timelines, concatenated in registration order."""
        out: list[dict] = []
        for source in self._event_sources:
            out.extend(source())
        return out

    # -- exports --------------------------------------------------------
    def snapshot(self, extra: dict | None = None) -> dict:
        """The canonical snapshot dict (collectors run first)."""
        return build_snapshot(
            self.registry.as_dicts(),
            self.tracer.as_dicts(),
            self.events(),
            extra=extra,
        )

    def snapshot_json(self, extra: dict | None = None) -> str:
        return snapshot_json(self.snapshot(extra=extra))

    def prometheus(self) -> str:
        return prometheus_text(self.registry.as_dicts())

    def chrome_json(self) -> str:
        return chrome_trace_json(self.tracer.as_dicts(), self.events())

    def write(self, path: str, extra: dict | None = None) -> str:
        """Write one export, format dispatched on the file suffix.

        ``*.prom`` -> Prometheus text; ``*.trace.json`` /
        ``*.perfetto.json`` -> Chrome trace-event JSON; anything else
        -> canonical JSON snapshot.  Returns the format written.
        """
        if path.endswith(".prom"):
            payload, kind = self.prometheus(), "prometheus"
        elif path.endswith((".trace.json", ".perfetto.json")):
            payload, kind = self.chrome_json(), "chrome-trace"
        else:
            payload, kind = self.snapshot_json(extra=extra), "snapshot"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(payload)
        return kind

    def __repr__(self) -> str:
        return (
            f"Telemetry(metrics={len(self.registry)},"
            f" spans={len(self.tracer)},"
            f" event_sources={len(self._event_sources)})"
        )


__all__ = [
    "EVENT_PAIRS",
    "LATENCY_EDGES_US",
    "RATIO_EDGES",
    "SECONDS_EDGES",
    "SNAPSHOT_SCHEMA",
    "UNIT_SUFFIXES",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "bridge",
    "build_snapshot",
    "canonical_json",
    "chrome_trace",
    "chrome_trace_json",
    "digest_payload",
    "exponential_edges",
    "prometheus_text",
    "snapshot_json",
    "span_id",
    "validate_metric_name",
]

"""Logical-clock span tracing with bit-reproducible span IDs.

Wall-clock timestamps differ on every run, so the tracer timestamps
spans with a **logical clock**: a monotonic tick incremented on every
span begin/end.  Because every traced event in this codebase already
happens at a deterministic point in the replay order (chunk index,
dispatch round, build index), the resulting span tree -- IDs, order,
nesting, durations in ticks -- is a pure function of (seed, workload,
config) and identical across repeated runs and worker counts.

Span IDs are ``sha256(f"{seed}|{component}|{name}|{clock}")[:16]``,
so two runs at the same seed produce byte-identical trace exports
(the reproducibility acceptance gate), while different seeds never
collide on IDs.

Spans are created **parent-side only**: the dispatching thread opens
and closes spans around executor calls and records per-task instants
in merge (dispatch) order; worker threads never touch the tracer.
That keeps the tracer single-threaded by construction -- it is not
thread-safe and does not need to be.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field


def span_id(seed: int, component: str, name: str, clock: int) -> str:
    """Deterministic 16-hex-char span ID."""
    payload = f"{seed}|{component}|{name}|{clock}".encode()
    return hashlib.sha256(payload).hexdigest()[:16]


@dataclass
class Span:
    """One node of the span tree (``end`` is None while open)."""

    id: str
    parent_id: str | None
    component: str
    name: str
    start: int
    end: int | None = None
    attrs: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "id": self.id,
            "parent_id": self.parent_id,
            "component": self.component,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": dict(sorted(self.attrs.items())),
        }


class Tracer:
    """Seeded, capped, logical-clock span recorder.

    ``max_spans`` bounds memory on long runs; spans past the cap are
    counted in :attr:`dropped` (surfaced as
    ``tracer_dropped_spans_total``) rather than recorded, and the cap
    applies identically at every worker count so capped traces stay
    reproducible too.
    """

    def __init__(self, seed: int = 0, max_spans: int = 100_000) -> None:
        self.seed = int(seed)
        self.max_spans = int(max_spans)
        self.clock = 0
        self.dropped = 0
        self._spans: list[Span] = []
        self._stack: list[Span] = []

    def tick(self) -> int:
        """Advance and return the logical clock."""
        self.clock += 1
        return self.clock

    def begin(self, component: str, name: str, **attrs) -> Span | None:
        """Open a span as a child of the current innermost open span."""
        clock = self.tick()
        if len(self._spans) >= self.max_spans:
            self.dropped += 1
            return None
        parent = self._stack[-1] if self._stack else None
        span = Span(
            id=span_id(self.seed, component, name, clock),
            parent_id=parent.id if parent else None,
            component=component,
            name=name,
            start=clock,
            attrs=dict(attrs),
        )
        self._spans.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span | None, **attrs) -> None:
        """Close ``span`` (no-op for spans dropped at the cap)."""
        clock = self.tick()
        if span is None:
            return
        span.end = clock
        span.attrs.update(attrs)
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            self._stack.remove(span)

    @contextmanager
    def span(self, component: str, name: str, **attrs):
        """``with tracer.span(...) as s:`` -- begin/end bracketed."""
        span = self.begin(component, name, **attrs)
        try:
            yield span
        finally:
            self.end(span)

    def instant(self, component: str, name: str, **attrs) -> Span | None:
        """A closed single-tick span (point event in the tree)."""
        span = self.begin(component, name, **attrs)
        self.end(span)
        return span

    def spans(self) -> list[Span]:
        return list(self._spans)

    def as_dicts(self) -> list[dict]:
        """Spans in creation (clock) order -- already canonical."""
        return [span.as_dict() for span in self._spans]

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return (
            f"Tracer(seed={self.seed}, spans={len(self._spans)},"
            f" clock={self.clock}, dropped={self.dropped})"
        )

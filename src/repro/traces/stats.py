"""Trace statistics: the raw material of Fig. 2.

Fig. 2 of the paper plots, per benchmark, (left) the *spatial
distribution* -- access counts against physical address groups -- and
(right) the *temporal distribution* -- accessed addresses against
time.  These helpers compute both, plus supporting statistics
(per-page counts, hot-set concentration, reuse gaps) used by the
analysis layer and the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.traces.record import MemoryTrace


@dataclass(frozen=True)
class SpatialHistogram:
    """Access counts over address-space bins (Fig. 2 left panes).

    Attributes
    ----------
    bin_edges:
        Page-index bin edges, shape ``(n_bins + 1,)``.
    counts:
        Accesses per bin, shape ``(n_bins,)``.
    """

    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def bin_centers(self) -> np.ndarray:
        """Midpoint of each address bin."""
        return 0.5 * (self.bin_edges[:-1] + self.bin_edges[1:])

    def modality(self, threshold_fraction: float = 0.05) -> int:
        """Count separated peaks above ``threshold_fraction * max``.

        A crude multi-modality detector: the number of maximal runs of
        above-threshold bins.  Fig. 2 workloads are multi-modal, which
        is the paper's motivation for a *mixture* model; tests assert
        the generators reproduce that.
        """
        if self.counts.size == 0:
            return 0
        mask = self.counts > threshold_fraction * np.max(self.counts)
        # Count rising edges of the boolean mask.
        padded = np.concatenate([[False], mask])
        return int(np.sum(~padded[:-1] & padded[1:]))


@dataclass(frozen=True)
class TemporalHistogram:
    """2-D access counts over (time, address) cells (Fig. 2 right).

    Attributes
    ----------
    time_edges:
        Tick bin edges, shape ``(n_time_bins + 1,)``.
    page_edges:
        Page bin edges, shape ``(n_page_bins + 1,)``.
    counts:
        Access counts, shape ``(n_time_bins, n_page_bins)``.
    """

    time_edges: np.ndarray
    page_edges: np.ndarray
    counts: np.ndarray

    def column_nonuniformity(self) -> float:
        """Coefficient of variation of per-time-bin activity profiles.

        Near zero when every time slice accesses addresses identically
        (temporally uninformative); grows when the hot region moves
        over time -- the property that makes the GMM's second input
        dimension worthwhile (Sec. 2.3).
        """
        totals = self.counts.sum(axis=1, keepdims=True)
        active = totals[:, 0] > 0
        if not np.any(active):
            return 0.0
        profiles = self.counts[active] / totals[active]
        mean_profile = profiles.mean(axis=0)
        deviation = np.linalg.norm(profiles - mean_profile, axis=1)
        scale = np.linalg.norm(mean_profile)
        if scale == 0:
            return 0.0
        return float(np.mean(deviation) / scale)


def spatial_histogram(
    trace: MemoryTrace, n_bins: int = 100
) -> SpatialHistogram:
    """Histogram accesses over equal-width page-index bins."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    pages = trace.page_indices()
    if pages.size == 0:
        edges = np.linspace(0.0, 1.0, n_bins + 1)
        return SpatialHistogram(edges, np.zeros(n_bins, dtype=np.int64))
    counts, edges = np.histogram(pages, bins=n_bins)
    return SpatialHistogram(edges, counts)


def temporal_histogram(
    trace: MemoryTrace, n_time_bins: int = 50, n_page_bins: int = 50
) -> TemporalHistogram:
    """2-D histogram of accesses over (time, page) cells."""
    if n_time_bins < 1 or n_page_bins < 1:
        raise ValueError("bin counts must be >= 1")
    pages = trace.page_indices()
    times = trace.times
    if pages.size == 0:
        return TemporalHistogram(
            np.linspace(0.0, 1.0, n_time_bins + 1),
            np.linspace(0.0, 1.0, n_page_bins + 1),
            np.zeros((n_time_bins, n_page_bins), dtype=np.int64),
        )
    counts, time_edges, page_edges = np.histogram2d(
        times.astype(np.float64),
        pages.astype(np.float64),
        bins=(n_time_bins, n_page_bins),
    )
    return TemporalHistogram(
        time_edges, page_edges, counts.astype(np.int64)
    )


def page_access_counts(
    trace: MemoryTrace,
) -> tuple[np.ndarray, np.ndarray]:
    """Distinct pages and their access counts, hottest first."""
    pages = trace.page_indices()
    unique, counts = np.unique(pages, return_counts=True)
    order = np.argsort(-counts)
    return unique[order], counts[order]


def hot_page_concentration(
    trace: MemoryTrace, top_fraction: float = 0.1
) -> float:
    """Fraction of accesses landing on the hottest ``top_fraction`` pages.

    A skew summary: 0.1 -> ~0.1 means uniform traffic, 0.1 -> ~0.9
    means a strongly cacheable hot set.
    """
    if not 0.0 < top_fraction <= 1.0:
        raise ValueError("top_fraction must be in (0, 1]")
    _, counts = page_access_counts(trace)
    if counts.size == 0:
        return 0.0
    n_top = max(1, int(np.ceil(counts.size * top_fraction)))
    return float(counts[:n_top].sum() / counts.sum())


def reuse_gaps(trace: MemoryTrace) -> np.ndarray:
    """Gap (in requests) since the previous access to the same page.

    First touches are excluded.  Small gaps mean recency works; gaps
    beyond the cache capacity are where frequency-based policies win.
    """
    pages = trace.page_indices()
    last_seen: dict[int, int] = {}
    gaps: list[int] = []
    for position, page in enumerate(pages):
        key = int(page)
        if key in last_seen:
            gaps.append(position - last_seen[key])
        last_seen[key] = position
    return np.asarray(gaps, dtype=np.int64)

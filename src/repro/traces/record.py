"""Memory-trace containers.

A trace is what the open-source collection tool of Yang et al. (ATC'23)
produces and what every stage of ICGMM consumes: a sequence of
``(read/write, physical address, access time)`` records (Sec. 3).  The
container here is column-oriented (one numpy array per field) because
traces run to millions of records and the simulators stream over them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

#: Byte offset shift converting a physical address to a 4 KB page index.
PAGE_SHIFT = 12

#: SSD access granularity in bytes (one flash page).
PAGE_SIZE = 1 << PAGE_SHIFT

#: Host access granularity in bytes (one DRAM cache line).
CACHE_LINE_SIZE = 64


@dataclass(frozen=True)
class TraceRecord:
    """A single memory request.

    Attributes
    ----------
    address:
        Physical byte address of the request.
    is_write:
        ``True`` for a store, ``False`` for a load.
    time:
        Collection timestamp in arbitrary monotonic ticks (the trace
        tools record one tick per request; absolute wall time is never
        used by the policy, only ordering).
    """

    address: int
    is_write: bool
    time: int

    @property
    def page_index(self) -> int:
        """4 KB page index of the request (``address >> 12``).

        The paper's Sec. 3.1 prints this as ``PA << 12``; consolidating
        byte addresses *into* pages requires the right shift implemented
        here.
        """
        return self.address >> PAGE_SHIFT


class MemoryTrace:
    """Column-oriented sequence of memory requests.

    Parameters
    ----------
    addresses:
        Physical byte addresses, shape ``(N,)``, non-negative integers.
    is_write:
        Boolean write flags, shape ``(N,)``.
    times:
        Monotonically non-decreasing access ticks, shape ``(N,)``.
        Defaults to ``arange(N)`` -- one tick per request.
    validate:
        When ``False``, skip the O(N) value scans (address sign and
        time monotonicity) while keeping the O(1) shape checks.  For
        columns from a trusted source only -- the memory-mapped trace
        loader uses it so that opening a multi-GB archive does not
        fault every page in; slices taken off such a trace still
        validate their spans on construction.
    """

    def __init__(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        times: np.ndarray | None = None,
        validate: bool = True,
    ) -> None:
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if addresses.ndim != 1:
            raise ValueError(
                f"addresses must be 1-D, got shape {addresses.shape}"
            )
        if is_write.shape != addresses.shape:
            raise ValueError(
                "is_write and addresses must have the same shape:"
                f" {is_write.shape} vs {addresses.shape}"
            )
        if validate and np.any(addresses < 0):
            raise ValueError("addresses must be non-negative")
        if times is None:
            times = np.arange(addresses.shape[0], dtype=np.int64)
        else:
            times = np.asarray(times, dtype=np.int64)
            if times.shape != addresses.shape:
                raise ValueError(
                    "times and addresses must have the same shape:"
                    f" {times.shape} vs {addresses.shape}"
                )
            if (
                validate
                and times.size > 1
                and np.any(np.diff(times) < 0)
            ):
                raise ValueError("times must be non-decreasing")
        self._addresses = addresses
        self._is_write = is_write
        self._times = times

    # ------------------------------------------------------------------
    # Basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._addresses.shape[0]

    def __iter__(self) -> Iterator[TraceRecord]:
        for i in range(len(self)):
            yield TraceRecord(
                address=int(self._addresses[i]),
                is_write=bool(self._is_write[i]),
                time=int(self._times[i]),
            )

    def __getitem__(self, key):
        if isinstance(key, slice):
            return MemoryTrace(
                self._addresses[key],
                self._is_write[key],
                self._times[key],
            )
        index = int(key)
        return TraceRecord(
            address=int(self._addresses[index]),
            is_write=bool(self._is_write[index]),
            time=int(self._times[index]),
        )

    def __repr__(self) -> str:
        return (
            f"MemoryTrace(n={len(self)},"
            f" pages={self.unique_page_count()},"
            f" write_fraction={self.write_fraction():.3f})"
        )

    # ------------------------------------------------------------------
    # Column access
    # ------------------------------------------------------------------
    @property
    def addresses(self) -> np.ndarray:
        """Physical byte addresses (read-only view)."""
        view = self._addresses.view()
        view.flags.writeable = False
        return view

    @property
    def is_write(self) -> np.ndarray:
        """Write flags (read-only view)."""
        view = self._is_write.view()
        view.flags.writeable = False
        return view

    @property
    def times(self) -> np.ndarray:
        """Access ticks (read-only view)."""
        view = self._times.view()
        view.flags.writeable = False
        return view

    def page_indices(self) -> np.ndarray:
        """4 KB page index per request (``address >> PAGE_SHIFT``)."""
        return self._addresses >> PAGE_SHIFT

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def write_fraction(self) -> float:
        """Fraction of requests that are writes (0 for an empty trace)."""
        if len(self) == 0:
            return 0.0
        return float(np.mean(self._is_write))

    def unique_page_count(self) -> int:
        """Number of distinct 4 KB pages touched (the footprint)."""
        if len(self) == 0:
            return 0
        return int(np.unique(self.page_indices()).shape[0])

    def footprint_bytes(self) -> int:
        """Footprint in bytes at page granularity."""
        return self.unique_page_count() * PAGE_SIZE

    # ------------------------------------------------------------------
    # Combination
    # ------------------------------------------------------------------
    @staticmethod
    def concatenate(traces: list["MemoryTrace"]) -> "MemoryTrace":
        """Concatenate traces, re-basing times to stay non-decreasing.

        Each segment's ticks are shifted so it starts right after the
        previous segment ends; used by the phased workload generators.
        """
        if not traces:
            return MemoryTrace(
                np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
            )
        addresses = []
        writes = []
        times = []
        offset = 0
        for trace in traces:
            addresses.append(trace._addresses)
            writes.append(trace._is_write)
            if len(trace) > 0:
                base = trace._times - trace._times[0]
                times.append(base + offset)
                offset += int(base[-1]) + 1
            else:
                times.append(trace._times)
        return MemoryTrace(
            np.concatenate(addresses),
            np.concatenate(writes),
            np.concatenate(times),
        )

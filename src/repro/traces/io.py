"""Trace file formats.

Two interchange formats are supported:

* **CSV** -- the human-readable format of the collection tool the paper
  uses (one ``op,address,time`` row per request, ``op`` in ``{R, W}``).
* **NPZ** -- compact binary for large generated traces.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.traces.record import MemoryTrace

_CSV_HEADER = ["op", "address", "time"]


def save_trace_csv(trace: MemoryTrace, path: str | Path) -> None:
    """Write a trace as ``op,address,time`` CSV rows."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for address, is_write, time in zip(
            trace.addresses, trace.is_write, trace.times
        ):
            writer.writerow(
                ["W" if is_write else "R", int(address), int(time)]
            )


def load_trace_csv(path: str | Path) -> MemoryTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Raises
    ------
    ValueError
        On a malformed header or an unknown op code.
    """
    addresses: list[int] = []
    writes: list[bool] = []
    times: list[int] = []
    with open(Path(path), newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header != _CSV_HEADER:
            raise ValueError(
                f"bad trace CSV header {header!r}, expected {_CSV_HEADER}"
            )
        for row_number, row in enumerate(reader, start=2):
            if len(row) != 3:
                raise ValueError(
                    f"line {row_number}: expected 3 fields, got {len(row)}"
                )
            op, address, time = row
            if op not in ("R", "W"):
                raise ValueError(
                    f"line {row_number}: unknown op {op!r}"
                )
            addresses.append(int(address))
            writes.append(op == "W")
            times.append(int(time))
    return MemoryTrace(
        np.asarray(addresses, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        np.asarray(times, dtype=np.int64),
    )


def save_trace_npz(trace: MemoryTrace, path: str | Path) -> None:
    """Write a trace as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        addresses=trace.addresses,
        is_write=trace.is_write,
        times=trace.times,
    )


def load_trace_npz(path: str | Path) -> MemoryTrace:
    """Read a trace written by :func:`save_trace_npz`."""
    with np.load(Path(path)) as data:
        missing = {"addresses", "is_write", "times"} - set(data.files)
        if missing:
            raise ValueError(
                f"trace archive missing arrays: {sorted(missing)}"
            )
        return MemoryTrace(
            data["addresses"], data["is_write"], data["times"]
        )

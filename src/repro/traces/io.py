"""Trace file formats.

Two interchange formats are supported:

* **CSV** -- the human-readable format of the collection tool the paper
  uses (one ``op,address,time`` row per request, ``op`` in ``{R, W}``).
* **NPZ** -- compact binary for large generated traces.

Both formats have a *streaming* ingest path next to the materializing
loaders, sized for the ROADMAP's multi-GB fleet traces:

* :func:`iter_trace_csv` parses the CSV in bounded chunks through a
  vectorized splitter (the scalar ``csv``-module walk survives as the
  exact-fallback for quoted rows and as the parity reference), so peak
  memory is one chunk, not one trace.
* :func:`load_trace_npz` with ``mmap=True`` memory-maps the three
  column arrays straight out of an *uncompressed* archive
  (:func:`save_trace_npz` with ``compressed=False``): nothing is
  copied at open time and untouched spans never enter memory.
* :func:`stream_trace_chunks` is the dispatching front the CLI ingest
  paths (``repro serve --trace`` / ``repro fabric --trace``) consume.
* :class:`TraceNpzWriter` mirrors the mapped reader on the write
  side: column chunks append into memory-mapped temporaries and close
  into a stored archive (``repro generate-trace --mmap-out``), so
  writing a trace never costs a second in-RAM copy of it.
"""

from __future__ import annotations

import csv
import zipfile
from itertools import islice
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.traces.record import MemoryTrace

_CSV_HEADER = ["op", "address", "time"]

#: Rows per parsed CSV chunk: bounds streaming peak memory at roughly
#: one chunk's columns while keeping the vectorized splitter's numpy
#: call overhead amortised.
DEFAULT_CSV_CHUNK = 65536

_NPZ_ARRAYS = ("addresses", "is_write", "times")


def save_trace_csv(trace: MemoryTrace, path: str | Path) -> None:
    """Write a trace as ``op,address,time`` CSV rows."""
    with open(Path(path), "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_HEADER)
        for address, is_write, time in zip(
            trace.addresses, trace.is_write, trace.times
        ):
            writer.writerow(
                ["W" if is_write else "R", int(address), int(time)]
            )


def _parse_csv_rows_scalar(
    lines: list[str], first_line: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Reference row-at-a-time parse of newline-stripped data rows.

    The original ``csv``-module walk: the exact-semantics fallback for
    rows the vectorized splitter refuses (quoted fields) and the
    parity baseline the io tests diff the fast parser against.
    """
    addresses: list[int] = []
    writes: list[bool] = []
    times: list[int] = []
    for offset, row in enumerate(csv.reader(lines)):
        row_number = first_line + offset
        if len(row) != 3:
            raise ValueError(
                f"line {row_number}: expected 3 fields, got {len(row)}"
            )
        op, address, time = row
        if op not in ("R", "W"):
            raise ValueError(
                f"line {row_number}: unknown op {op!r}"
            )
        addresses.append(int(address))
        writes.append(op == "W")
        times.append(int(time))
    return (
        np.asarray(addresses, dtype=np.int64),
        np.asarray(writes, dtype=bool),
        np.asarray(times, dtype=np.int64),
    )


def _parse_csv_rows(
    lines: list[str], first_line: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized parse of one chunk of data rows.

    Replaces the per-row Python loop with whole-chunk kernels: the
    joined chunk text is scanned once at byte level (``np.frombuffer``
    plus ``bincount``) to validate the per-row field counts, split
    into cells with a single C-level ``str.split``, and converted to
    columns in bulk.  Error messages (and the row numbering behind
    them) are bit-for-bit those of the scalar reference; chunks the
    fast path cannot split exactly -- quoted fields, or number
    formats numpy's int parser refuses but Python's accepts -- fall
    back to the scalar ``csv`` walk wholesale.
    """
    text = "".join(lines)
    if "\r" in text:
        text = text.replace("\r\n", "\n")
    if text.endswith("\n"):
        text = text[:-1]
    if '"' in text or "\r" in text:
        # Quoted fields need the csv dialect; a lone \r terminator
        # (not produced by the writer) splits differently there too.
        return _parse_csv_rows_scalar(
            [line.rstrip("\r\n") for line in lines], first_line
        )
    n = len(lines)
    raw = np.frombuffer(text.encode(), dtype=np.uint8)
    # Byte-level structure scan.  UTF-8 continuation bytes never
    # collide with the ASCII comma/newline values, so positions and
    # per-row counts computed on bytes are exact.
    newlines = np.flatnonzero(raw == 0x0A)
    starts = np.concatenate(([0], newlines + 1))
    ends = np.concatenate((newlines, [raw.size]))
    comma_pos = np.flatnonzero(raw == 0x2C)
    commas = np.bincount(
        np.searchsorted(newlines, comma_pos), minlength=n
    )
    bad = commas != 2
    if bad.any():
        at = int(bad.argmax())
        # csv.reader yields [] for a blank line, so its field count
        # is 0, not 1.
        fields = (
            0 if starts[at] == ends[at] else int(commas[at]) + 1
        )
        raise ValueError(
            f"line {first_line + at}: expected 3 fields, got {fields}"
        )
    first_comma = comma_pos[0::2]
    second_comma = comma_pos[1::2]
    op_byte = raw[starts]
    is_write = op_byte == 0x57  # "W"
    bad_op = (first_comma - starts != 1) | ~(
        is_write | (op_byte == 0x52)  # "R"
    )
    if bad_op.any():
        at = int(bad_op.argmax())
        op = text[starts[at] : first_comma[at]]
        raise ValueError(
            f"line {first_line + at}: unknown op {op!r}"
        )
    addresses = _parse_int_column(raw, first_comma + 1, second_comma)
    times = _parse_int_column(raw, second_comma + 1, ends)
    if addresses is None or times is None:
        # A field the digit kernel cannot parse (sign, whitespace,
        # >18 digits, empty): the reference parser either accepts it
        # (Python int() is more lenient) or raises Python's own
        # message.
        return _parse_csv_rows_scalar(text.split("\n"), first_line)
    return addresses, is_write, times


def _parse_int_column(
    raw: np.ndarray, starts: np.ndarray, ends: np.ndarray
) -> np.ndarray | None:
    """Parse one decimal column straight out of the chunk's bytes.

    Left-to-right multiply-accumulate over at most ``max(width)``
    vectorized steps -- no per-cell Python strings.  Returns ``None``
    for anything outside plain 1-18 digit fields (the caller falls
    back to the exact scalar parser for those).
    """
    width = ends - starts
    if width.size == 0:
        return np.empty(0, dtype=np.int64)
    max_width = int(width.max())
    if width.min() < 1 or max_width > 18:
        return None
    values = np.zeros(starts.shape[0], dtype=np.int64)
    for k in range(max_width):
        active = width > k
        digit = raw[starts[active] + k].astype(np.int64) - 0x30
        if (digit < 0).any() or (digit > 9).any():
            return None
        values[active] = values[active] * 10 + digit
    return values


def iter_trace_csv(
    path: str | Path, chunk_requests: int = DEFAULT_CSV_CHUNK
) -> Iterator[MemoryTrace]:
    """Stream a trace CSV as bounded :class:`MemoryTrace` chunks.

    Reads at most ``chunk_requests`` rows at a time through the
    vectorized parser, so a multi-GB trace is consumed at one chunk
    of peak memory.  Chunk columns are validated on construction;
    the cross-chunk time-monotonicity check is the one global
    invariant streaming forgoes (:func:`load_trace_csv`, which
    concatenates the chunks, still enforces it).

    Raises
    ------
    ValueError
        On a malformed header, wrong field count, or unknown op code
        -- same messages, same row numbering as the scalar reference.
    """
    if chunk_requests < 1:
        raise ValueError("chunk_requests must be >= 1")
    with open(Path(path), newline="") as handle:
        first = handle.readline()
        header = next(csv.reader([first]), None) if first else None
        if header != _CSV_HEADER:
            raise ValueError(
                f"bad trace CSV header {header!r}, expected {_CSV_HEADER}"
            )
        line_number = 2
        while True:
            lines = list(islice(handle, chunk_requests))
            if not lines:
                return
            addresses, writes, times = _parse_csv_rows(
                lines, line_number
            )
            line_number += len(lines)
            yield MemoryTrace(addresses, writes, times)


def load_trace_csv(path: str | Path) -> MemoryTrace:
    """Read a trace written by :func:`save_trace_csv`.

    Parses through the chunked vectorized reader and concatenates --
    about an order of magnitude faster than the historical per-row
    loop on large traces, with identical validation errors.

    Raises
    ------
    ValueError
        On a malformed header or an unknown op code.
    """
    chunks = list(iter_trace_csv(path))
    if not chunks:
        return MemoryTrace(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)
        )
    if len(chunks) == 1:
        return chunks[0]
    return MemoryTrace(
        np.concatenate([chunk.addresses for chunk in chunks]),
        np.concatenate([chunk.is_write for chunk in chunks]),
        np.concatenate([chunk.times for chunk in chunks]),
    )


class TraceNpzWriter:
    """Chunked, memory-mapped writer for uncompressed ``.npz`` traces.

    The write-side counterpart of :func:`load_trace_npz`'s zero-copy
    reader: each column accumulates in a per-column ``.npy``
    temporary created with :func:`np.lib.format.open_memmap`, so an
    :meth:`append` is a mapped slice assignment the OS pages out
    behind the writer -- peak RSS is bounded by the append chunk, not
    the trace.  :meth:`close` assembles the final archive by
    streaming the finished temporaries into a ``ZIP_STORED`` zip
    (``zipfile.write`` copies file-to-file) and unlinking them, which
    makes the output byte-layout a stored npz that
    :func:`load_trace_npz` can memory-map straight back.

    The total ``length`` is declared up front (a memory map needs its
    shape at creation); :meth:`close` refuses an underfilled writer.
    Aborting the context manager on an exception removes the
    temporaries and never writes the archive.
    """

    _DTYPES = {
        "addresses": np.int64,
        "is_write": np.bool_,
        "times": np.int64,
    }

    def __init__(self, path: str | Path, length: int) -> None:
        if length < 0:
            raise ValueError("length must be >= 0")
        self._path = Path(path)
        if self._path.suffix != ".npz":
            raise ValueError(
                f"TraceNpzWriter writes .npz archives, got {path!r}"
            )
        self._length = int(length)
        self._written = 0
        self._closed = False
        self._temp = {
            name: self._path.with_name(
                f".{self._path.name}.{name}.tmp.npy"
            )
            for name in _NPZ_ARRAYS
        }
        self._maps = {
            name: np.lib.format.open_memmap(
                self._temp[name],
                mode="w+",
                dtype=self._DTYPES[name],
                shape=(self._length,),
            )
            for name in _NPZ_ARRAYS
        }

    @property
    def written(self) -> int:
        """Requests appended so far."""
        return self._written

    def append(
        self,
        addresses: np.ndarray,
        is_write: np.ndarray,
        times: np.ndarray | None = None,
    ) -> None:
        """Append one chunk of rows to every column.

        ``times`` defaults to the running request index (the same
        ``arange`` a :class:`MemoryTrace` built without timestamps
        carries).
        """
        if self._closed:
            raise ValueError("writer is closed")
        addresses = np.asarray(addresses, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if addresses.shape != is_write.shape or addresses.ndim != 1:
            raise ValueError(
                "addresses and is_write must be 1-D and equal-length:"
                f" {addresses.shape} vs {is_write.shape}"
            )
        n = addresses.shape[0]
        if self._written + n > self._length:
            raise ValueError(
                f"append overflows declared length {self._length}:"
                f" {self._written} written + {n} appended"
            )
        if times is None:
            times = np.arange(
                self._written, self._written + n, dtype=np.int64
            )
        else:
            times = np.asarray(times, dtype=np.int64)
            if times.shape != addresses.shape:
                raise ValueError(
                    "times and addresses must have the same shape:"
                    f" {times.shape} vs {addresses.shape}"
                )
        stop = self._written + n
        self._maps["addresses"][self._written : stop] = addresses
        self._maps["is_write"][self._written : stop] = is_write
        self._maps["times"][self._written : stop] = times
        self._written = stop

    def close(self) -> None:
        """Flush the columns and assemble the stored archive."""
        if self._closed:
            return
        if self._written != self._length:
            self.abort()
            raise ValueError(
                f"writer declared {self._length} requests but only"
                f" {self._written} were appended"
            )
        for name in _NPZ_ARRAYS:
            self._maps[name].flush()
        self._release_maps()
        try:
            with zipfile.ZipFile(
                self._path, "w", zipfile.ZIP_STORED
            ) as archive:
                for name in _NPZ_ARRAYS:
                    archive.write(
                        self._temp[name], arcname=f"{name}.npy"
                    )
        finally:
            self._unlink_temp()
        self._closed = True

    def abort(self) -> None:
        """Drop the temporaries without writing the archive."""
        if self._closed:
            return
        self._release_maps()
        self._unlink_temp()
        self._closed = True

    def _release_maps(self) -> None:
        # Drop the mmap references so the underlying files close
        # before they are re-read (zip assembly) or unlinked.
        self._maps = {}

    def _unlink_temp(self) -> None:
        for temp in self._temp.values():
            try:
                temp.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "TraceNpzWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def save_trace_npz(
    trace: MemoryTrace,
    path: str | Path,
    compressed: bool = True,
    mmap: bool = False,
) -> None:
    """Write a trace as an ``.npz`` archive.

    ``compressed=False`` stores the members raw (``np.savez``), which
    is what :func:`load_trace_npz`'s memory-mapped mode requires --
    deflated members cannot be mapped.  ``mmap=True`` routes through
    :class:`TraceNpzWriter` instead of ``np.savez``: the columns are
    written through memory-mapped temporaries (bounded writer RSS)
    and the archive comes out stored, so it forces
    ``compressed=False`` semantics.
    """
    if mmap:
        if compressed:
            raise ValueError(
                "mmap-backed writes produce stored archives; pass"
                " compressed=False"
            )
        with TraceNpzWriter(path, len(trace)) as writer:
            writer.append(
                trace.addresses, trace.is_write, trace.times
            )
        return
    save = np.savez_compressed if compressed else np.savez
    save(
        Path(path),
        addresses=trace.addresses,
        is_write=trace.is_write,
        times=trace.times,
    )


def save_trace(
    trace: MemoryTrace,
    path: str | Path,
    compressed: bool = True,
    mmap: bool = False,
) -> None:
    """Save a trace file, dispatching on its suffix.

    The write-side twin of :func:`load_trace`: ``.csv`` goes through
    the row writer, ``.npz`` through :func:`save_trace_npz` with the
    given ``compressed``/``mmap`` options.
    """
    path = Path(path)
    if path.suffix == ".csv":
        if mmap:
            raise ValueError(
                "mmap-backed writes require an .npz target"
            )
        save_trace_csv(trace, path)
        return
    if path.suffix == ".npz":
        save_trace_npz(trace, path, compressed=compressed, mmap=mmap)
        return
    raise ValueError(
        f"unsupported trace format {path.suffix!r}"
        " (expected .csv or .npz)"
    )


def _npz_is_stored(path: Path) -> bool:
    """Whether every member of the archive is stored uncompressed."""
    with zipfile.ZipFile(path) as archive:
        return all(
            info.compress_type == zipfile.ZIP_STORED
            for info in archive.infolist()
        )


def _mmap_npz_member(
    path: Path, archive: zipfile.ZipFile, name: str
) -> np.ndarray:
    """Memory-map one stored ``.npy`` member of an open archive.

    ``np.load`` decompresses npz members through the zip layer even
    with ``mmap_mode`` set, so the zero-copy path is built by hand:
    read the member's ``.npy`` header for dtype/shape, compute the
    absolute payload offset from the zip local-file header, and map
    the payload in place.
    """
    info = archive.getinfo(name)
    if info.compress_type != zipfile.ZIP_STORED:
        raise ValueError(
            f"cannot memory-map {name!r}: archive member is"
            " compressed (write the trace with"
            " save_trace_npz(..., compressed=False))"
        )
    with archive.open(info) as member:
        version = np.lib.format.read_magic(member)
        if version == (1, 0):
            shape, fortran, dtype = (
                np.lib.format.read_array_header_1_0(member)
            )
        elif version == (2, 0):
            shape, fortran, dtype = (
                np.lib.format.read_array_header_2_0(member)
            )
        else:
            raise ValueError(
                f"unsupported .npy format version {version}"
                f" in {name!r}"
            )
        header_bytes = member.tell()
    if int(np.prod(shape)) == 0:
        return np.empty(shape, dtype=dtype)
    # The local file header's name/extra lengths can differ from the
    # central directory's, so the payload offset comes from the local
    # header itself.
    with open(path, "rb") as raw:
        raw.seek(info.header_offset)
        local = raw.read(30)
    if local[:4] != b"PK\x03\x04":
        raise ValueError(
            f"corrupt archive: bad local header for {name!r}"
        )
    name_len = int.from_bytes(local[26:28], "little")
    extra_len = int.from_bytes(local[28:30], "little")
    offset = (
        info.header_offset + 30 + name_len + extra_len + header_bytes
    )
    return np.memmap(
        path,
        dtype=dtype,
        mode="r",
        offset=offset,
        shape=shape,
        order="F" if fortran else "C",
    )


def load_trace_npz(
    path: str | Path, mmap: bool = False
) -> MemoryTrace:
    """Read a trace written by :func:`save_trace_npz`.

    With ``mmap=True`` the three columns are memory-mapped directly
    out of an *uncompressed* archive: open cost is a few header
    reads, no bytes are copied, and only the spans a consumer
    actually slices ever become resident -- the ingest path for
    traces larger than memory.  Mapped columns skip the O(N)
    re-validation scans (archives written by :func:`save_trace_npz`
    hold columns that were validated at trace construction); chunk
    slices taken off the mapped trace re-validate their spans on
    construction as usual.
    """
    path = Path(path)
    if mmap:
        with zipfile.ZipFile(path) as archive:
            members = set(archive.namelist())
            missing = {
                name
                for name in _NPZ_ARRAYS
                if f"{name}.npy" not in members
            }
            if missing:
                raise ValueError(
                    f"trace archive missing arrays: {sorted(missing)}"
                )
            columns = {
                name: _mmap_npz_member(path, archive, f"{name}.npy")
                for name in _NPZ_ARRAYS
            }
        return MemoryTrace(
            columns["addresses"],
            columns["is_write"],
            columns["times"],
            validate=False,
        )
    with np.load(path) as data:
        missing = set(_NPZ_ARRAYS) - set(data.files)
        if missing:
            raise ValueError(
                f"trace archive missing arrays: {sorted(missing)}"
            )
        return MemoryTrace(
            data["addresses"], data["is_write"], data["times"]
        )


def load_trace(path: str | Path, mmap: bool = True) -> MemoryTrace:
    """Load a trace file, dispatching on its suffix.

    ``.npz`` archives open memory-mapped when their members are
    stored uncompressed (and ``mmap`` is left on); compressed
    archives fall back to the materializing reader.  ``.csv`` goes
    through the chunked vectorized parser.
    """
    path = Path(path)
    if path.suffix == ".csv":
        return load_trace_csv(path)
    if path.suffix == ".npz":
        if mmap and _npz_is_stored(path):
            return load_trace_npz(path, mmap=True)
        return load_trace_npz(path)
    raise ValueError(
        f"unsupported trace format {path.suffix!r}"
        " (expected .csv or .npz)"
    )


def stream_trace_chunks(
    path: str | Path, chunk_requests: int = DEFAULT_CSV_CHUNK
) -> tuple[int, Iterator[MemoryTrace]]:
    """``(total_requests, chunk iterator)`` over a trace file.

    The streaming front the CLI ingest paths consume: the trace's
    length is known up front (npz: the mapped column shape; csv: one
    cheap line-count pass that holds no rows), and the iterator
    yields bounded :class:`MemoryTrace` chunks -- memory-mapped
    slices for stored npz archives, vectorized parses for csv -- so
    the full trace never materializes in the ingesting process.
    """
    if chunk_requests < 1:
        raise ValueError("chunk_requests must be >= 1")
    path = Path(path)
    if path.suffix == ".npz":
        trace = load_trace(path)

        def slices() -> Iterator[MemoryTrace]:
            for start in range(0, len(trace), chunk_requests):
                yield trace[start : start + chunk_requests]

        return len(trace), slices()
    if path.suffix == ".csv":
        with open(path, newline="") as handle:
            total = max(0, sum(1 for _ in handle) - 1)
        return total, iter_trace_csv(path, chunk_requests)
    raise ValueError(
        f"unsupported trace format {path.suffix!r}"
        " (expected .csv or .npz)"
    )


__all__ = [
    "DEFAULT_CSV_CHUNK",
    "TraceNpzWriter",
    "iter_trace_csv",
    "load_trace",
    "load_trace_csv",
    "load_trace_npz",
    "save_trace",
    "save_trace_csv",
    "save_trace_npz",
    "stream_trace_chunks",
]

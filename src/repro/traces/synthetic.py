"""Building blocks for synthetic workload generators.

The paper evaluates on traces collected from real programs; those traces
are not published.  What Fig. 2 *does* publish is their structure:
spatial access histograms that fit mixtures of Gaussians, plus phased,
non-random temporal behaviour.  The samplers here are the vocabulary the
seven workload modules (:mod:`repro.traces.workloads`) are written in:

* :class:`ZipfSampler` -- skewed popularity over a page range (key-value
  stores, embedding tables, B-tree leaves).
* :class:`GaussianClusterSampler` -- spatial hot clusters, directly
  mirroring the mixture structure of Fig. 2.
* :class:`UniformSampler` -- background noise over a range.
* :class:`SequentialLoopSampler` -- cyclic sweeps (HPC kernels, heapify
  passes); the classic LRU-pathological pattern.
* :class:`ScanOnceSampler` -- one-touch streaming (inputs, range scans);
  pure cache pollution that smart admission should bypass.
* :class:`MixtureSampler` -- interleaves component samplers access by
  access, preserving each component's internal order.
* :class:`PhasedTraceBuilder` -- chains phases into one trace, giving
  the temporal structure the 2-D GMM exploits.

Every sampler returns ``(pages, is_write)`` so read/write semantics stay
attached to the component that produced the access (a STREAM store
stream is all writes; a B-tree root probe is all reads).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.traces.record import CACHE_LINE_SIZE, PAGE_SHIFT, MemoryTrace

#: Number of cache lines per 4 KB page.
_LINES_PER_PAGE = (1 << PAGE_SHIFT) // CACHE_LINE_SIZE


def zipf_probabilities(n_items: int, alpha: float) -> np.ndarray:
    """Normalised Zipf(alpha) probabilities over ``n_items`` ranks.

    ``alpha = 0`` degenerates to uniform; larger values concentrate mass
    on the first ranks.
    """
    if n_items < 1:
        raise ValueError(f"n_items must be >= 1, got {n_items}")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


class PageSampler(ABC):
    """Source of page-granular accesses with attached write flags."""

    #: Probability that an access from this sampler is a write; used by
    #: samplers without a structural read/write split.
    write_fraction: float = 0.0

    @abstractmethod
    def sample(
        self, n: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Produce ``n`` accesses.

        Returns ``(pages, is_write)`` arrays of shape ``(n,)``.
        Stateful samplers advance their cursor; callers wanting a fresh
        pass construct a new instance.
        """

    def _bernoulli_writes(
        self, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        if self.write_fraction <= 0.0:
            return np.zeros(n, dtype=bool)
        return rng.random(n) < self.write_fraction


class ZipfSampler(PageSampler):
    """Zipf-popular pages over ``[base_page, base_page + n_pages)``.

    Parameters
    ----------
    base_page:
        First page of the region.
    n_pages:
        Region size in pages.
    alpha:
        Zipf exponent; ~0.7 models weakly-skewed embedding rows, ~1.1
        models hot key-value working sets.
    write_fraction:
        Bernoulli write probability per access.
    scramble:
        When ``True`` (default), popularity ranks are scattered across
        the region by a fixed permutation drawn from ``perm_seed``, so
        "hot" does not mean "low address".  When ``False``, rank ``r``
        maps to page ``base_page + r``, producing the smooth Gaussian-
        like spatial clusters seen in Fig. 2.
    """

    def __init__(
        self,
        base_page: int,
        n_pages: int,
        alpha: float,
        write_fraction: float = 0.0,
        scramble: bool = False,
        perm_seed: int = 0,
    ) -> None:
        self.base_page = int(base_page)
        self.n_pages = int(n_pages)
        self.alpha = float(alpha)
        self.write_fraction = float(write_fraction)
        self._probabilities = zipf_probabilities(self.n_pages, self.alpha)
        if scramble:
            perm_rng = np.random.default_rng(perm_seed)
            self._rank_to_page = perm_rng.permutation(self.n_pages)
        else:
            self._rank_to_page = None

    def sample(self, n, rng):
        ranks = rng.choice(self.n_pages, size=n, p=self._probabilities)
        if self._rank_to_page is not None:
            pages = self._rank_to_page[ranks]
        else:
            pages = ranks
        return self.base_page + pages, self._bernoulli_writes(n, rng)


class GaussianClusterSampler(PageSampler):
    """Mixture of Gaussian hot spots in page space (Fig. 2 structure).

    Parameters
    ----------
    clusters:
        List of ``(center_page, std_pages, weight)`` triples; weights
        are normalised internally.
    lo_page, hi_page:
        Samples are clipped into ``[lo_page, hi_page)``.
    """

    def __init__(
        self,
        clusters: list[tuple[float, float, float]],
        lo_page: int,
        hi_page: int,
        write_fraction: float = 0.0,
    ) -> None:
        if not clusters:
            raise ValueError("need at least one cluster")
        if hi_page <= lo_page:
            raise ValueError("hi_page must exceed lo_page")
        self.centers = np.array([c[0] for c in clusters], dtype=np.float64)
        self.stds = np.array([c[1] for c in clusters], dtype=np.float64)
        if np.any(self.stds <= 0):
            raise ValueError("cluster std must be positive")
        weights = np.array([c[2] for c in clusters], dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("cluster weights must be non-negative")
        self.weights = weights / weights.sum()
        self.lo_page = int(lo_page)
        self.hi_page = int(hi_page)
        self.write_fraction = float(write_fraction)

    def sample(self, n, rng):
        which = rng.choice(len(self.weights), size=n, p=self.weights)
        raw = rng.normal(self.centers[which], self.stds[which])
        pages = np.clip(
            np.round(raw), self.lo_page, self.hi_page - 1
        ).astype(np.int64)
        return pages, self._bernoulli_writes(n, rng)


class UniformSampler(PageSampler):
    """Uniform accesses over ``[base_page, base_page + n_pages)``."""

    def __init__(
        self, base_page: int, n_pages: int, write_fraction: float = 0.0
    ) -> None:
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1, got {n_pages}")
        self.base_page = int(base_page)
        self.n_pages = int(n_pages)
        self.write_fraction = float(write_fraction)

    def sample(self, n, rng):
        pages = self.base_page + rng.integers(self.n_pages, size=n)
        return pages.astype(np.int64), self._bernoulli_writes(n, rng)


class SequentialLoopSampler(PageSampler):
    """Cyclic sweep over a page range with per-page bursts.

    Models repeated passes over arrays (STREAM kernels, heapify).  When
    the region exceeds the cache, LRU's recency order is exactly wrong
    for this pattern -- every page returns just after eviction.

    Parameters
    ----------
    base_page, n_pages:
        The swept region.
    burst:
        Consecutive accesses per page before advancing (a host touching
        several 64 B lines of the page back to back).
    stride_pages:
        Pages skipped between visits (>= 1).
    """

    def __init__(
        self,
        base_page: int,
        n_pages: int,
        burst: int = 1,
        stride_pages: int = 1,
        write_fraction: float = 0.0,
    ) -> None:
        if n_pages < 1:
            raise ValueError(f"n_pages must be >= 1, got {n_pages}")
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        if stride_pages < 1:
            raise ValueError(f"stride_pages must be >= 1, got {stride_pages}")
        self.base_page = int(base_page)
        self.n_pages = int(n_pages)
        self.burst = int(burst)
        self.stride_pages = int(stride_pages)
        self.write_fraction = float(write_fraction)
        self._cursor = 0  # position in the virtual burst-expanded loop

    def sample(self, n, rng):
        positions = self._cursor + np.arange(n, dtype=np.int64)
        self._cursor += n
        visit = positions // self.burst
        offsets = (visit * self.stride_pages) % self.n_pages
        pages = self.base_page + offsets
        return pages, self._bernoulli_writes(n, rng)


class ScanOnceSampler(PageSampler):
    """One-touch streaming scan: every access hits a brand-new page.

    Models sequential input reading and table range scans.  Caching
    these pages is pure pollution, which is exactly what the GMM
    admission filter learns to refuse (their density is ~zero).  The
    region is ``region_pages`` long; if the scan exhausts it, it wraps
    to the start (a second pass -- still effectively one-touch at cache
    time scales).
    """

    def __init__(
        self,
        base_page: int,
        region_pages: int,
        write_fraction: float = 0.0,
    ) -> None:
        if region_pages < 1:
            raise ValueError(
                f"region_pages must be >= 1, got {region_pages}"
            )
        self.base_page = int(base_page)
        self.region_pages = int(region_pages)
        self.write_fraction = float(write_fraction)
        self._cursor = 0

    def sample(self, n, rng):
        positions = (self._cursor + np.arange(n)) % self.region_pages
        self._cursor += n
        pages = self.base_page + positions.astype(np.int64)
        return pages, self._bernoulli_writes(n, rng)


class MixtureSampler(PageSampler):
    """Interleave component samplers access-by-access.

    Each access independently picks a component with the configured
    weight, then consumes the *next* access from that component -- so
    stateful components (loops, scans) keep their internal order while
    being interleaved with the others, like threads sharing a memory
    bus.
    """

    def __init__(
        self, components: list[tuple[PageSampler, float]]
    ) -> None:
        if not components:
            raise ValueError("need at least one component")
        weights = np.array([w for _, w in components], dtype=np.float64)
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("component weights must be non-negative")
        self.samplers = [s for s, _ in components]
        self.weights = weights / weights.sum()

    def sample(self, n, rng):
        choice = rng.choice(len(self.samplers), size=n, p=self.weights)
        pages = np.empty(n, dtype=np.int64)
        writes = np.empty(n, dtype=bool)
        for index, sampler in enumerate(self.samplers):
            mask = choice == index
            count = int(np.sum(mask))
            if count == 0:
                continue
            component_pages, component_writes = sampler.sample(count, rng)
            pages[mask] = component_pages
            writes[mask] = component_writes
        return pages, writes


def pages_to_addresses(
    pages: np.ndarray, rng: np.random.Generator, sub_page: bool = True
) -> np.ndarray:
    """Convert page indices to byte addresses.

    With ``sub_page=True`` each access lands on a random 64 B-aligned
    line within its page, reflecting host (cache-line) granularity
    against SSD (page) granularity -- the mismatch at the heart of the
    paper's Challenge 2.
    """
    pages = np.asarray(pages, dtype=np.int64)
    addresses = pages << PAGE_SHIFT
    if sub_page:
        lines = rng.integers(_LINES_PER_PAGE, size=pages.shape[0])
        addresses = addresses + lines * CACHE_LINE_SIZE
    return addresses


class PhasedTraceBuilder:
    """Assemble a multi-phase trace.

    Phases model program stages (DLRM batch boundaries, PARSEC parallel
    regions); each phase owns a sampler.  The temporal axis this
    produces is what makes the second GMM dimension informative.
    """

    def __init__(self) -> None:
        self._phases: list[tuple[int, PageSampler]] = []

    def add_phase(self, n_accesses: int, sampler: PageSampler) -> None:
        """Append a phase of ``n_accesses`` drawn from ``sampler``."""
        if n_accesses < 0:
            raise ValueError(f"n_accesses must be >= 0, got {n_accesses}")
        self._phases.append((int(n_accesses), sampler))

    @property
    def total_accesses(self) -> int:
        """Sum of accesses over all registered phases."""
        return sum(n for n, _ in self._phases)

    def build(self, rng: np.random.Generator) -> MemoryTrace:
        """Generate the trace (one tick per access, phases in order)."""
        if not self._phases:
            raise ValueError("no phases registered")
        all_pages = []
        all_writes = []
        for n_accesses, sampler in self._phases:
            if n_accesses == 0:
                continue
            pages, writes = sampler.sample(n_accesses, rng)
            all_pages.append(pages)
            all_writes.append(writes)
        pages = np.concatenate(all_pages)
        writes = np.concatenate(all_writes)
        addresses = pages_to_addresses(pages, rng)
        return MemoryTrace(addresses, writes)


def scaled_pages(n_pages: int, scale: float, minimum: int = 4) -> int:
    """Scale a region size, keeping at least ``minimum`` pages.

    The workload generators size their regions against the paper's
    64 MB device cache; experiments run a proportionally scaled-down
    system (cache and footprints divided by the same factor) so that
    cache turnover -- and therefore eviction-policy differences --
    develops within simulatable trace lengths.  This is the standard
    scaled-cache methodology for trace-driven studies.
    """
    if scale <= 0:
        raise ValueError("scale must be positive")
    if minimum < 1:
        raise ValueError("minimum must be >= 1")
    return max(minimum, int(round(n_pages * scale)))


def add_bursty_phases(
    builder: PhasedTraceBuilder,
    n_accesses: int,
    normal_sampler: PageSampler,
    burst_sampler: PageSampler,
    period: int,
    burst_len: int,
) -> None:
    """Append alternating quiet/burst phases covering ``n_accesses``.

    Real systems run maintenance in concentrated bursts -- cache
    expiry cycles, B-tree range scans, rehashes, heap rebuilds -- that
    arrive with a characteristic cadence.  Each ``period`` requests end
    with ``burst_len`` requests drawn from ``burst_sampler``; the rest
    come from ``normal_sampler``.

    Aligning ``period`` with the preprocessing access-shot length
    (Algorithm 1's 10,000 requests) puts every burst at the same
    transformed-timestamp band, which is precisely what makes the
    GMM's *temporal* input dimension informative (Sec. 2.3: "the
    access frequency distribution is uneven in temporal").
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if not 0 <= burst_len < period:
        raise ValueError("burst_len must be in [0, period)")
    done = 0
    while done < n_accesses:
        quiet = min(period - burst_len, n_accesses - done)
        builder.add_phase(quiet, normal_sampler)
        done += quiet
        if done < n_accesses and burst_len > 0:
            chunk = min(burst_len, n_accesses - done)
            builder.add_phase(chunk, burst_sampler)
            done += chunk


class TraceGenerator(ABC):
    """Base class for the seven benchmark workload generators."""

    #: Workload name as used in the paper's figures and tables.
    name: str = "base"

    #: Default trace length used by the experiment harness.
    default_length: int = 300_000

    @abstractmethod
    def generate(
        self, n_accesses: int, rng: np.random.Generator
    ) -> MemoryTrace:
        """Produce a trace of ``n_accesses`` requests."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"

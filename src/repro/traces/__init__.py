"""Workload and trace substrate.

Everything the cache study consumes: trace containers
(:mod:`repro.traces.record`), the seven synthetic benchmark generators
(:mod:`repro.traces.workloads`), the Sec. 3.1 preprocessing pipeline
(:mod:`repro.traces.preprocess`), file formats (:mod:`repro.traces.io`)
and the Fig. 2 statistics (:mod:`repro.traces.stats`).
"""

from repro.traces.io import (
    DEFAULT_CSV_CHUNK,
    iter_trace_csv,
    load_trace,
    load_trace_csv,
    load_trace_npz,
    save_trace_csv,
    save_trace_npz,
    stream_trace_chunks,
)
from repro.traces.mixing import (
    interleave,
    multi_tenant_trace,
    relocate,
)
from repro.traces.preprocess import (
    ProcessedTrace,
    TracePreprocessor,
    transform_timestamps,
    transform_timestamps_at,
    trim_warmup,
)
from repro.traces.record import (
    CACHE_LINE_SIZE,
    PAGE_SHIFT,
    PAGE_SIZE,
    MemoryTrace,
    TraceRecord,
)
from repro.traces.stats import (
    SpatialHistogram,
    TemporalHistogram,
    hot_page_concentration,
    page_access_counts,
    reuse_gaps,
    spatial_histogram,
    temporal_histogram,
)
from repro.traces.synthetic import TraceGenerator
from repro.traces.workloads import WORKLOAD_NAMES, WORKLOADS, get_workload

__all__ = [
    "CACHE_LINE_SIZE",
    "DEFAULT_CSV_CHUNK",
    "MemoryTrace",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "ProcessedTrace",
    "SpatialHistogram",
    "TemporalHistogram",
    "TraceGenerator",
    "TracePreprocessor",
    "TraceRecord",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "get_workload",
    "hot_page_concentration",
    "interleave",
    "iter_trace_csv",
    "load_trace",
    "load_trace_csv",
    "load_trace_npz",
    "multi_tenant_trace",
    "page_access_counts",
    "relocate",
    "reuse_gaps",
    "save_trace_csv",
    "save_trace_npz",
    "spatial_histogram",
    "stream_trace_chunks",
    "temporal_histogram",
    "transform_timestamps",
    "transform_timestamps_at",
    "trim_warmup",
]

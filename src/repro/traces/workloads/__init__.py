"""Synthetic versions of the paper's seven trace benchmarks.

Sec. 5.1: "The synthetic trace benchmarks we choose are hashmap and heap
[10].  The real-world trace benchmarks are from different domains,
including dlrm from deep learning recommendation systems, parsec and
stream from high-performance computing, memtier and sysbench from
database systems."

The authors' traces are not published, so each module here generates a
seeded synthetic trace that reproduces the workload's documented access
structure (see DESIGN.md for the substitution argument).  All seven
expose the same :class:`repro.traces.synthetic.TraceGenerator` API.
"""

from repro.traces.workloads.dlrm import DlrmWorkload
from repro.traces.workloads.hashmap import HashmapWorkload
from repro.traces.workloads.heap import HeapWorkload
from repro.traces.workloads.memtier import MemtierWorkload
from repro.traces.workloads.parsec import ParsecWorkload
from repro.traces.workloads.stream import StreamWorkload
from repro.traces.workloads.sysbench import SysbenchWorkload

#: Workload classes keyed by the names the paper uses in Fig. 6/Table 1.
WORKLOADS = {
    "parsec": ParsecWorkload,
    "memtier": MemtierWorkload,
    "hashmap": HashmapWorkload,
    "heap": HeapWorkload,
    "sysbench": SysbenchWorkload,
    "dlrm": DlrmWorkload,
    "stream": StreamWorkload,
}

#: Benchmark order used by Fig. 6 and Table 1.
WORKLOAD_NAMES = tuple(WORKLOADS)


def get_workload(name: str, **params):
    """Instantiate a workload generator by its paper name.

    Extra keyword arguments are forwarded to the generator constructor,
    allowing experiments to override footprint or mix parameters.
    """
    try:
        cls = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return cls(**params)


__all__ = [
    "DlrmWorkload",
    "HashmapWorkload",
    "HeapWorkload",
    "MemtierWorkload",
    "ParsecWorkload",
    "StreamWorkload",
    "SysbenchWorkload",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "get_workload",
]

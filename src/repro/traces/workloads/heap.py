"""heap synthetic trace: priority-queue (binary heap) benchmark.

``heap`` is the second synthetic benchmark of Yang et al. (ATC'23,
the paper's [10]): continuous push/pop traffic on a large array-backed
binary heap.  The access structure is strongly depth-dependent: a
push/pop touches every level on its root-to-leaf path, so per page,
frequency decays geometrically with depth; rank-ordered Zipf over the
array is the page-level consequence.

Structure generated here:

* Sift-path traffic: Zipf over the heap array (rank == array position
  == depth order), with the ~45% write mix of sift swaps.
* A separate hot metadata region (size counters, benchmark
  bookkeeping) touched on every operation.
* Periodic *rebuild sweeps* (heapify) walking a chunk of the array
  each maintenance period -- over-capacity cyclic traffic.
* Heap growth at the frontier: one-touch appends.

Like parsec, this is a workload where the paper finds eviction-only
to be the best GMM strategy: nearly all pages are revisited (so
admission refusals cost hits, and in particular un-pin the rebuild
sweep), while score eviction keeps the shallow levels pinned through
the sweeps.
"""

from __future__ import annotations

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    SequentialLoopSampler,
    TraceGenerator,
    UniformSampler,
    ZipfSampler,
    add_bursty_phases,
    scaled_pages,
)


class HeapWorkload(TraceGenerator):
    """Synthetic binary-heap trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions sized at paper scale).
    heap_pages:
        Array footprint (paper scale).
    alpha:
        Zipf exponent modelling per-page depth decay.
    metadata_weight:
        Fraction of accesses to the hot bookkeeping region.
    growth_weight:
        Fraction of accesses appending fresh pages.
    burst_period / burst_len:
        Rebuild-sweep cadence over the array.
    """

    name = "heap"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        heap_pages: int = 26_000,
        alpha: float = 1.45,
        metadata_weight: float = 0.10,
        growth_weight: float = 0.005,
        burst_period: int = 10_000,
        burst_len: int = 60,
        write_fraction: float = 0.45,
    ) -> None:
        self.scale = scale
        self.heap_pages = heap_pages
        self.alpha = alpha
        self.metadata_weight = metadata_weight
        self.growth_weight = growth_weight
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.write_fraction = write_fraction

    def generate(self, n_accesses, rng):
        """Build the heap trace."""
        s = self.scale
        heap_pages = scaled_pages(self.heap_pages, s)
        heap_base = 0
        frontier_base = heap_pages
        frontier_region = scaled_pages(32_000, s)
        metadata_base = frontier_base + frontier_region
        sift = ZipfSampler(
            base_page=heap_base,
            n_pages=heap_pages,
            alpha=self.alpha,
            write_fraction=self.write_fraction,
        )
        metadata = UniformSampler(
            metadata_base,
            scaled_pages(96, s, minimum=8),
            write_fraction=0.50,
        )
        rebuild = SequentialLoopSampler(
            heap_base, heap_pages, burst=1, write_fraction=0.5
        )
        growth = ScanOnceSampler(
            frontier_base, frontier_region, write_fraction=1.0
        )
        sift_weight = 1.0 - (self.metadata_weight + self.growth_weight)
        normal = MixtureSampler(
            [
                (sift, sift_weight),
                (metadata, self.metadata_weight),
                (growth, self.growth_weight),
            ]
        )
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            n_accesses,
            normal_sampler=normal,
            burst_sampler=rebuild,
            period=self.burst_period,
            burst_len=self.burst_len,
        )
        return builder.build(rng)

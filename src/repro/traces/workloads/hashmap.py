"""hashmap synthetic trace: pointer-heavy hash-table benchmark.

``hashmap`` is one of the two synthetic benchmarks of Yang et al.
(USENIX ATC'23, the paper's [10]): a large chained hash table driven
by lookups, inserts and deletes.  Properties that matter for caching:

* Key popularity is skewed, and because hot keys are inserted early
  and the arena allocator packs nodes in insertion order, popularity
  correlates with address -- density decays along the arena.
* The bucket array is probed on *every* operation (compact and hot),
  spatially separate from the arena.
* Inserts append fresh nodes at the arena frontier (one-touch writes).
* Periodic *chain-maintenance sweeps* (rehash/compaction) walk a chunk
  of the arena sequentially each maintenance period -- an
  over-capacity cyclic pattern that recency-based eviction handles
  worst.
"""

from __future__ import annotations

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    SequentialLoopSampler,
    TraceGenerator,
    UniformSampler,
    ZipfSampler,
    add_bursty_phases,
    scaled_pages,
)


class HashmapWorkload(TraceGenerator):
    """Synthetic chained-hash-table trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions sized at paper scale).
    bucket_pages / arena_pages:
        Bucket-array and node-arena footprints (paper scale).
    alpha:
        Zipf exponent over allocation order.
    bucket_weight:
        Fraction of accesses probing the bucket array.
    frontier_weight:
        Fraction of accesses that are fresh-node allocations.
    burst_period / burst_len:
        Maintenance-sweep cadence over the arena.
    """

    name = "hashmap"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        bucket_pages: int = 3_000,
        arena_pages: int = 26_000,
        alpha: float = 1.50,
        bucket_weight: float = 0.30,
        frontier_weight: float = 0.005,
        burst_period: int = 10_000,
        burst_len: int = 90,
        write_fraction: float = 0.25,
    ) -> None:
        self.scale = scale
        self.bucket_pages = bucket_pages
        self.arena_pages = arena_pages
        self.alpha = alpha
        self.bucket_weight = bucket_weight
        self.frontier_weight = frontier_weight
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.write_fraction = write_fraction

    def generate(self, n_accesses, rng):
        """Build the hashmap trace."""
        s = self.scale
        arena_pages = scaled_pages(self.arena_pages, s)
        bucket_pages = scaled_pages(self.bucket_pages, s)
        arena_base = 0
        frontier_base = arena_base + arena_pages
        frontier_region = scaled_pages(64_000, s)
        bucket_base = frontier_base + frontier_region
        buckets = UniformSampler(
            bucket_base, bucket_pages, write_fraction=0.10
        )
        lookups = ZipfSampler(
            base_page=arena_base,
            n_pages=arena_pages,
            alpha=self.alpha,
            write_fraction=self.write_fraction,
        )
        frontier = ScanOnceSampler(
            frontier_base, frontier_region, write_fraction=1.0
        )
        sweep = SequentialLoopSampler(
            arena_base, arena_pages, burst=1, write_fraction=0.5
        )
        lookup_weight = 1.0 - (self.bucket_weight + self.frontier_weight)
        normal = MixtureSampler(
            [
                (buckets, self.bucket_weight),
                (lookups, lookup_weight),
                (frontier, self.frontier_weight),
            ]
        )
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            n_accesses,
            normal_sampler=normal,
            burst_sampler=sweep,
            period=self.burst_period,
            burst_len=self.burst_len,
        )
        return builder.build(rng)

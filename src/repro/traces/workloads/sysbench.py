"""sysbench-style trace: OLTP database benchmark.

sysbench OLTP (the paper's [19]) mixes point SELECTs, small UPDATEs
and range scans against an InnoDB-like B-tree.  The resulting memory
profile -- visible in Fig. 2(c) of the ICGMM paper -- has an extremely
hot, tiny region (root and inner nodes touched by *every* query), a
broad weakly-skewed leaf area, and sequential bursts from range scans
and the redo log.

Structure generated here:

* Inner-node region: a few hundred pages, steep Zipf, all reads.
* Leaf region: tens of thousands of pages with moderate skew and a
  20% write mix from UPDATE row changes.
* Redo log: an append loop over a small window, all writes.
* Range scans: each maintenance period ends with a sequential burst
  over the leaf area -- one-touch pollution under LRU, near-zero
  density to the GMM.
"""

from __future__ import annotations

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    SequentialLoopSampler,
    TraceGenerator,
    ZipfSampler,
    add_bursty_phases,
    scaled_pages,
)


class SysbenchWorkload(TraceGenerator):
    """Synthetic sysbench OLTP trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions sized at paper scale).
    inner_pages / leaf_pages:
        B-tree inner-node and leaf footprints (paper scale).
    leaf_alpha:
        Zipf exponent over leaves.
    inner_weight / log_weight:
        Access mix within quiet phases.
    burst_period / burst_len:
        Range-scan cadence over the leaf region.
    """

    name = "sysbench"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        inner_pages: int = 512,
        leaf_pages: int = 56_000,
        leaf_alpha: float = 1.45,
        inner_weight: float = 0.30,
        log_weight: float = 0.045,
        burst_period: int = 10_000,
        burst_len: int = 120,
    ) -> None:
        self.scale = scale
        self.inner_pages = inner_pages
        self.leaf_pages = leaf_pages
        self.leaf_alpha = leaf_alpha
        self.inner_weight = inner_weight
        self.log_weight = log_weight
        self.burst_period = burst_period
        self.burst_len = burst_len

    def generate(self, n_accesses, rng):
        """Build the sysbench trace."""
        s = self.scale
        inner_pages = scaled_pages(self.inner_pages, s, minimum=16)
        leaf_pages = scaled_pages(self.leaf_pages, s)
        inner_base = 0
        leaf_base = inner_pages
        log_base = leaf_base + leaf_pages
        inner = ZipfSampler(
            base_page=inner_base,
            n_pages=inner_pages,
            alpha=1.3,
            write_fraction=0.0,
        )
        leaves = ZipfSampler(
            base_page=leaf_base,
            n_pages=leaf_pages,
            alpha=self.leaf_alpha,
            write_fraction=0.20,
        )
        log = SequentialLoopSampler(
            log_base,
            scaled_pages(1_024, s, minimum=8),
            burst=8,
            write_fraction=1.0,
        )
        scans = ScanOnceSampler(leaf_base, leaf_pages)
        leaf_weight = 1.0 - (self.inner_weight + self.log_weight)
        normal = MixtureSampler(
            [
                (inner, self.inner_weight),
                (leaves, leaf_weight),
                (log, self.log_weight),
            ]
        )
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            n_accesses,
            normal_sampler=normal,
            burst_sampler=scans,
            period=self.burst_period,
            burst_len=self.burst_len,
        )
        return builder.build(rng)

"""memtier-style trace: key-value store (Redis/memcached) benchmark.

memtier_benchmark (the paper's [24]) drives a key-value server with a
configurable GET/SET mix and a skewed key popularity.  Server-side,
the value heap is slab-allocated, which gives popular keys real
spatial locality: keys inserted in the same warm-up burst sit in
neighbouring slabs, so popularity decays along the allocation order --
exactly the kind of address-correlated density a GMM can learn.

Structure generated here:

* A value heap accessed with Zipf popularity over the slab order
  (rank == allocation position), GET:SET of 9:1.
* A small hot metadata region (hash index head, stats).
* A periodic *expiry cycle*: every maintenance period the server walks
  a chunk of the keyspace sequentially (active-expire / eviction
  sampling).  The burst floods cache sets with one-touch fills --
  pollution that displaces warm keys under LRU, and that a density
  policy both refuses to admit and refuses to keep.

The expiry cadence matches the access-shot length, so the bursts live
in a fixed band of the transformed-timestamp axis -- the temporal
structure the 2-D GMM exploits (Sec. 2.3).
"""

from __future__ import annotations

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    TraceGenerator,
    UniformSampler,
    ZipfSampler,
    add_bursty_phases,
    scaled_pages,
)


class MemtierWorkload(TraceGenerator):
    """Synthetic memtier key-value trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions are sized at paper scale).
    keyspace_pages:
        Pages holding values (slab area), paper scale.
    alpha:
        Zipf exponent of key popularity.
    set_fraction:
        Fraction of key operations that are SETs (writes).
    burst_period / burst_len:
        Expiry-cycle cadence: every ``burst_period`` requests end with
        ``burst_len`` sequential expiry-scan requests.
    """

    name = "memtier"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        keyspace_pages: int = 48_000,
        alpha: float = 1.50,
        set_fraction: float = 0.10,
        burst_period: int = 10_000,
        burst_len: int = 50,
        metadata_weight: float = 0.04,
    ) -> None:
        if not 0.0 <= set_fraction <= 1.0:
            raise ValueError("set_fraction must be in [0, 1]")
        self.scale = scale
        self.keyspace_pages = keyspace_pages
        self.alpha = alpha
        self.set_fraction = set_fraction
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.metadata_weight = metadata_weight

    def generate(self, n_accesses, rng):
        """Build the memtier trace."""
        keyspace = scaled_pages(self.keyspace_pages, self.scale)
        heap_base = 0
        metadata_base = heap_base + keyspace
        keys = ZipfSampler(
            base_page=heap_base,
            n_pages=keyspace,
            alpha=self.alpha,
            write_fraction=self.set_fraction,
        )
        metadata = UniformSampler(
            metadata_base,
            scaled_pages(128, self.scale, minimum=8),
            write_fraction=0.30,
        )
        expiry = ScanOnceSampler(heap_base, keyspace)
        normal = MixtureSampler(
            [
                (keys, 1.0 - self.metadata_weight),
                (metadata, self.metadata_weight),
            ]
        )
        builder = PhasedTraceBuilder()
        add_bursty_phases(
            builder,
            n_accesses,
            normal_sampler=normal,
            burst_sampler=expiry,
            period=self.burst_period,
            burst_len=self.burst_len,
        )
        return builder.build(rng)

"""DLRM-style trace: deep-learning recommendation inference.

Facebook's DLRM (Gupta et al., the paper's [17]) is dominated by
sparse embedding-table lookups: a handful of large tables, each
accessed with a skewed row popularity, plus dense MLP activations
streamed through once per batch.  Fig. 2(a) of the ICGMM paper shows
the resulting spatial profile -- several distinct address clusters of
very different heights -- and a temporal profile whose hot columns
drift over time (request mix shifts).

Structure generated here:

* ``n_tables`` embedding tables laid out back to back; lookups within
  a table follow a Zipf law over rows, so spatial density decays from
  the table base -- a one-sided cluster per table, matching the spikes
  in Fig. 2(a).  The combined footprint dwarfs the device cache,
  which is why dlrm shows the second-highest miss rate in Fig. 6.
* Table popularity rotates across three macro-phases (request-mix
  drift) -- the temporal structure of Fig. 2(a).
* Dense-activation streaming at every batch boundary: each batch
  period ends with a one-touch burst over the activation region
  (classic pollution that smart admission refuses).
* A small, very hot parameter/stack region.
"""

from __future__ import annotations

import numpy as np

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    TraceGenerator,
    UniformSampler,
    ZipfSampler,
    add_bursty_phases,
    scaled_pages,
)


class DlrmWorkload(TraceGenerator):
    """Synthetic DLRM inference trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions sized at paper scale).
    n_tables:
        Number of embedding tables.
    table_pages:
        4 KB pages per table (paper scale).
    table_alpha:
        Zipf exponent of row popularity inside a table.
    dense_pages:
        Size of the streamed dense-activation region (paper scale).
    hot_weight:
        Access fraction of the hot parameter region.
    burst_period / burst_len:
        Batch cadence: every ``burst_period`` requests end with
        ``burst_len`` dense-activation streaming requests.
    n_phases:
        Number of request-mix macro-phases.
    """

    name = "dlrm"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        n_tables: int = 8,
        table_pages: int = 14_000,
        table_alpha: float = 1.45,
        dense_pages: int = 48_000,
        hot_weight: float = 0.08,
        burst_period: int = 10_000,
        burst_len: int = 350,
        n_phases: int = 3,
    ) -> None:
        if n_tables < 1:
            raise ValueError("n_tables must be >= 1")
        if n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        self.scale = scale
        self.n_tables = n_tables
        self.table_pages = table_pages
        self.table_alpha = table_alpha
        self.dense_pages = dense_pages
        self.hot_weight = hot_weight
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.n_phases = n_phases

    def _table_weights(self, phase: int) -> np.ndarray:
        """Per-table popularity for a phase (rotates hot tables)."""
        base = np.array(
            [2.0 ** (-(i % 4)) for i in range(self.n_tables)],
            dtype=np.float64,
        )
        rotated = np.roll(base, phase * 2)
        return rotated / rotated.sum()

    def generate(self, n_accesses, rng):
        """Build the phased DLRM trace.

        Regions are laid out compactly (parameters, then activations,
        then tables), as a real allocator would place them.
        """
        s = self.scale
        table_pages = scaled_pages(self.table_pages, s)
        dense_pages = scaled_pages(self.dense_pages, s)
        hot_pages = scaled_pages(256, s, minimum=8)
        hot_base = 0
        dense_base = hot_pages
        tables_base = dense_base + dense_pages
        builder = PhasedTraceBuilder()
        per_phase = n_accesses // self.n_phases
        remainder = n_accesses - per_phase * self.n_phases
        # Stateful scan shared across phases: the MLP keeps streaming.
        dense = ScanOnceSampler(dense_base, dense_pages)
        embedding_weight = 1.0 - self.hot_weight
        for phase in range(self.n_phases):
            weights = self._table_weights(phase)
            tables = [
                (
                    ZipfSampler(
                        base_page=tables_base + i * table_pages,
                        n_pages=table_pages,
                        alpha=self.table_alpha,
                        write_fraction=0.02,
                    ),
                    embedding_weight * weights[i],
                )
                for i in range(self.n_tables)
            ]
            normal = MixtureSampler(
                tables
                + [
                    (
                        UniformSampler(
                            hot_base, hot_pages, write_fraction=0.10
                        ),
                        self.hot_weight,
                    ),
                ]
            )
            length = per_phase + (remainder if phase == 0 else 0)
            add_bursty_phases(
                builder,
                length,
                normal_sampler=normal,
                burst_sampler=dense,
                period=self.burst_period,
                burst_len=self.burst_len,
            )
        return builder.build(rng)

"""PARSEC-style trace: multi-phase shared-memory HPC application.

PARSEC programs (the paper's [18]) run through distinct parallel
regions, each hammering its own working set: Fig. 2(b) of the ICGMM
paper shows a few wide spatial clusters and a temporal profile whose
dominant cluster changes between program phases.

Structure generated here:

* Three Gaussian spatial clusters (the per-region working sets); their
  relative weight shifts across three macro-phases while the union
  stays resident.
* A periodic reduction pass: every maintenance period the program
  sweeps a chunk of an over-capacity buffer (burst-phased, so the
  sweep has a fixed place in the access-shot timeline).  The sweep's
  reuse distance equals the buffer size -- the classic
  LRU-pathological pattern; a frequency/density policy instead pins a
  resident subset that hits once per cycle.
* A thin one-touch input scan.

This is a workload where the paper finds *eviction-only* to be the
best GMM strategy (Fig. 6): nearly everything gets reused, so refusing
admission costs hits (in particular it un-pins the swept buffer),
while score-based eviction protects cluster pages and pinned sweep
pages alike.
"""

from __future__ import annotations

from repro.traces.synthetic import (
    GaussianClusterSampler,
    MixtureSampler,
    PhasedTraceBuilder,
    ScanOnceSampler,
    SequentialLoopSampler,
    TraceGenerator,
    add_bursty_phases,
    scaled_pages,
)


class ParsecWorkload(TraceGenerator):
    """Synthetic PARSEC trace (streamcluster/canneal-like).

    Region sizes are expressed at paper scale (against the 64 MB
    cache) and multiplied by ``scale``; experiments use the
    proportionally scaled-down profile (see
    :func:`repro.traces.synthetic.scaled_pages`).

    Parameters
    ----------
    scale:
        Footprint scale factor.
    footprint_pages:
        Combined working-set extent of the clusters (paper scale).
    loop_pages:
        Size of the periodically swept buffer (paper scale); above
        cache capacity so recency-based eviction thrashes on it.
    burst_period / burst_len:
        Sweep cadence: every ``burst_period`` requests end with
        ``burst_len`` sweep requests.
    scan_weight:
        One-touch input-scan fraction within quiet phases.
    """

    name = "parsec"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        cluster_centers: tuple[int, ...] = (1_200, 5_000, 8_800),
        cluster_stds: tuple[int, ...] = (350, 500, 300),
        footprint_pages: int = 10_000,
        loop_pages: int = 20_000,
        burst_period: int = 10_000,
        burst_len: int = 130,
        scan_weight: float = 0.003,
        write_fraction: float = 0.30,
        n_phases: int = 3,
    ) -> None:
        if len(cluster_centers) != len(cluster_stds):
            raise ValueError(
                "cluster_centers and cluster_stds must have equal length"
            )
        if n_phases < 1:
            raise ValueError("n_phases must be >= 1")
        self.scale = scale
        self.cluster_centers = cluster_centers
        self.cluster_stds = cluster_stds
        self.footprint_pages = footprint_pages
        self.loop_pages = loop_pages
        self.burst_period = burst_period
        self.burst_len = burst_len
        self.scan_weight = scan_weight
        self.write_fraction = write_fraction
        self.n_phases = n_phases

    def _phase_cluster_weights(self, phase: int) -> list[float]:
        """Rotate emphasis among clusters across macro-phases."""
        n = len(self.cluster_centers)
        weights = [1.0] * n
        weights[phase % n] = 3.0
        return weights

    def generate(self, n_accesses, rng):
        """Build the phased PARSEC trace."""
        s = self.scale
        footprint = scaled_pages(self.footprint_pages, s)
        loop_pages = scaled_pages(self.loop_pages, s)
        loop_base = footprint
        scan_base = loop_base + loop_pages
        builder = PhasedTraceBuilder()
        per_phase = n_accesses // self.n_phases
        remainder = n_accesses - per_phase * self.n_phases
        loop = SequentialLoopSampler(
            loop_base, loop_pages, burst=1, write_fraction=0.25
        )
        scan = ScanOnceSampler(scan_base, scaled_pages(64_000, s))
        for phase in range(self.n_phases):
            weights = self._phase_cluster_weights(phase)
            clusters = GaussianClusterSampler(
                [
                    (center * s, max(1.0, std * s), weight)
                    for center, std, weight in zip(
                        self.cluster_centers, self.cluster_stds, weights
                    )
                ],
                lo_page=0,
                hi_page=footprint,
                write_fraction=self.write_fraction,
            )
            normal = MixtureSampler(
                [
                    (clusters, 1.0 - self.scan_weight),
                    (scan, self.scan_weight),
                ]
            )
            length = per_phase + (remainder if phase == 0 else 0)
            add_bursty_phases(
                builder,
                length,
                normal_sampler=normal,
                burst_sampler=loop,
                period=self.burst_period,
                burst_len=self.burst_len,
            )
        return builder.build(rng)

"""STREAM-style trace: bandwidth-bound array sweeps.

McCalpin's STREAM (the paper's [23]) cycles four kernels -- copy,
scale, add, triad -- over arrays sized far beyond any cache.  At page
granularity every sweep access is a (re-)visit at a reuse distance of
a full array, which is the canonical worst case for LRU: each page
comes back just after recency evicted it.  That is why stream shows by
far the highest miss rate in Fig. 6 (~37% under LRU) and the largest
absolute GMM gain (6.14 points).

Structure generated here:

* Three large arrays swept cyclically (page stride), with the write
  mix of the STREAM kernels (outputs are stores).
* A small, intensely hot region: loop counters, reduction scalars and
  kernel code pages; this is what keeps the overall miss rate below
  100% and what score-based eviction must protect.

Against this trace a density policy wins two ways: the swept pages
have near-zero density, so admission stops them from churning the
cache, and score eviction effectively pins a resident subset of each
array that then hits once per sweep -- recency can do neither.
"""

from __future__ import annotations

from repro.traces.synthetic import (
    MixtureSampler,
    PhasedTraceBuilder,
    SequentialLoopSampler,
    TraceGenerator,
    UniformSampler,
    scaled_pages,
)


class StreamWorkload(TraceGenerator):
    """Synthetic STREAM trace.

    Parameters
    ----------
    scale:
        Footprint scale factor (regions sized at paper scale).
    array_pages:
        Pages per array at paper scale (default 24,000 pages =
        93.75 MB, beyond the 64 MB device cache on its own).
    n_arrays:
        Number of distinct arrays swept.
    sweep_weight:
        Fraction of accesses belonging to the sweeps (split evenly).
    hot_pages:
        Size of the hot scalar/code region (paper scale).
    """

    name = "stream"
    default_length = 400_000

    def __init__(
        self,
        scale: float = 1.0,
        array_pages: int = 24_000,
        n_arrays: int = 3,
        sweep_weight: float = 0.38,
        hot_pages: int = 192,
    ) -> None:
        if n_arrays < 1:
            raise ValueError("n_arrays must be >= 1")
        if not 0.0 < sweep_weight < 1.0:
            raise ValueError("sweep_weight must be in (0, 1)")
        self.scale = scale
        self.array_pages = array_pages
        self.n_arrays = n_arrays
        self.sweep_weight = sweep_weight
        self.hot_pages = hot_pages

    def generate(self, n_accesses, rng):
        """Build the STREAM trace (single phase; kernels interleave)."""
        s = self.scale
        array_pages = scaled_pages(self.array_pages, s)
        hot_pages = scaled_pages(self.hot_pages, s, minimum=16)
        arrays_base = hot_pages
        # Store fractions per array, mirroring copy/scale/add/triad:
        # every kernel reads one or two arrays and writes one.
        write_fractions = [0.0, 0.5, 0.33]
        sweeps = []
        for i in range(self.n_arrays):
            sweeps.append(
                SequentialLoopSampler(
                    base_page=arrays_base + i * array_pages,
                    n_pages=array_pages,
                    burst=1,
                    write_fraction=write_fractions[i % len(write_fractions)],
                )
            )
        per_sweep = self.sweep_weight / self.n_arrays
        hot = UniformSampler(0, hot_pages, write_fraction=0.05)
        mixture = MixtureSampler(
            [(hot, 1.0 - self.sweep_weight)]
            + [(sweep, per_sweep) for sweep in sweeps]
        )
        builder = PhasedTraceBuilder()
        builder.add_phase(n_accesses, mixture)
        return builder.build(rng)

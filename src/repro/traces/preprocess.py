"""Trace preprocessing: Sec. 3.1 of the paper.

Three steps turn a raw trace into GMM training inputs:

1. **Warm-up trim** -- "we discard the initial 20% and final 10% of
   traces" to remove program warm-up and tear-down bias.
2. **Page consolidation** -- host 64 B accesses are consolidated into
   4 KB SSD pages via the page index.  (The paper prints the formula as
   ``PI = PA << 12``; turning a byte address into a page index is the
   right shift ``PA >> 12`` implemented here.)
3. **Timestamp transformation** -- Algorithm 1: the trace is split into
   *access shots*, each shot into *time windows* of ``len_window``
   requests; all requests in a window share one integer timestamp, and
   the timestamp counter resets at the end of each access shot.  The
   paper uses ``len_window = 32`` and ``len_access_shot = 10,000``.

Algorithm 1 as printed compares the *timestamp counter* against
``len_access_shot`` while the prose defines ``len_access_shot`` as a
number of *traces*; the two readings differ.  Both are implemented:
``mode="algorithm"`` follows the pseudocode literally (timestamp wraps
when the counter reaches ``len_access_shot``), ``mode="prose"`` follows
the text (timestamp wraps every ``len_access_shot`` *requests*).

The default is ``"prose"``: it makes the transformed timestamp
*periodic* (one period per access shot), so a GMM trained on any
portion of a trace generalises to the rest -- under the literal
pseudocode with the paper's constants the timestamp is effectively a
monotone ramp, and every future request falls outside the trained
density's support.  The periodic reading is also what gives the shot
construct its stated purpose ("help GMM capture memory access
locality", Sec. 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.traces.record import PAGE_SHIFT, MemoryTrace

#: Paper defaults (Sec. 3.1, "empirically chosen for optimal GMM
#: training performance").
DEFAULT_LEN_WINDOW = 32
DEFAULT_LEN_ACCESS_SHOT = 10_000


def trim_warmup(
    trace: MemoryTrace,
    head_fraction: float = 0.2,
    tail_fraction: float = 0.1,
) -> MemoryTrace:
    """Drop the warm-up head and tear-down tail of a trace.

    Defaults follow Sec. 3.1: the first 20% and the final 10% of the
    records are discarded.
    """
    if not 0.0 <= head_fraction < 1.0:
        raise ValueError("head_fraction must be in [0, 1)")
    if not 0.0 <= tail_fraction < 1.0:
        raise ValueError("tail_fraction must be in [0, 1)")
    if head_fraction + tail_fraction >= 1.0:
        raise ValueError(
            "head_fraction + tail_fraction must leave a non-empty middle"
        )
    n = len(trace)
    start = int(np.floor(n * head_fraction))
    stop = n - int(np.floor(n * tail_fraction))
    return trace[start:stop]


def transform_timestamps(
    n_accesses: int,
    len_window: int = DEFAULT_LEN_WINDOW,
    len_access_shot: int = DEFAULT_LEN_ACCESS_SHOT,
    mode: str = "algorithm",
) -> np.ndarray:
    """Algorithm 1: window-and-shot timestamp per request.

    Parameters
    ----------
    n_accesses:
        Number of requests to stamp.
    len_window:
        Requests per time window; all requests in a window share a
        timestamp.
    len_access_shot:
        Shot length -- in *timestamp units* for ``mode="algorithm"``
        (the pseudocode's literal comparison), in *requests* for
        ``mode="prose"`` (the text's definition).
    mode:
        ``"algorithm"`` or ``"prose"`` (see module docstring).

    Returns
    -------
    numpy.ndarray
        Integer timestamps, shape ``(n_accesses,)``.
    """
    if n_accesses < 0:
        raise ValueError("n_accesses must be >= 0")
    return transform_timestamps_at(
        np.arange(n_accesses, dtype=np.int64),
        len_window,
        len_access_shot,
        mode,
    )


def transform_timestamps_at(
    indices: np.ndarray,
    len_window: int = DEFAULT_LEN_WINDOW,
    len_access_shot: int = DEFAULT_LEN_ACCESS_SHOT,
    mode: str = "algorithm",
) -> np.ndarray:
    """Algorithm-1 timestamps at arbitrary absolute access indices.

    Both readings of Algorithm 1 are position-based formulas, so the
    timestamp of access ``i`` can be computed without materialising
    the whole prefix -- which is what lets the streaming service
    stamp each chunk from its global cursor and agree exactly with
    :func:`transform_timestamps` over the full stream (asserted by
    the test suite).
    """
    if len_window < 1:
        raise ValueError("len_window must be >= 1")
    if len_access_shot < 1:
        raise ValueError("len_access_shot must be >= 1")
    indices = np.asarray(indices, dtype=np.int64)
    if np.any(indices < 0):
        raise ValueError("access indices must be >= 0")
    if mode == "algorithm":
        return (indices // len_window) % len_access_shot
    if mode == "prose":
        return (indices % len_access_shot) // len_window
    raise ValueError(f"unknown mode {mode!r}")


def transform_timestamps_reference(
    n_accesses: int,
    len_window: int = DEFAULT_LEN_WINDOW,
    len_access_shot: int = DEFAULT_LEN_ACCESS_SHOT,
) -> np.ndarray:
    """Line-by-line transcription of the paper's Algorithm 1.

    Kept as the executable specification; the vectorised
    :func:`transform_timestamps` with ``mode="algorithm"`` must agree
    with it (asserted by the test suite).
    """
    timestamp = 0
    index = 0
    out = np.empty(n_accesses, dtype=np.int64)
    for i in range(n_accesses):
        if index >= len_window:
            timestamp += 1
            index = 0
        if timestamp >= len_access_shot:
            timestamp = 0
        out[i] = timestamp
        index += 1
    return out


@dataclass(frozen=True)
class ProcessedTrace:
    """A trace after Sec. 3.1 preprocessing.

    Attributes
    ----------
    trace:
        The trimmed trace (original record order preserved).
    page_indices:
        4 KB page index per surviving request.
    timestamps:
        Algorithm-1 transformed timestamp per surviving request.
    """

    trace: MemoryTrace
    page_indices: np.ndarray
    timestamps: np.ndarray

    def __len__(self) -> int:
        return len(self.trace)

    @property
    def features(self) -> np.ndarray:
        """GMM input matrix ``x = [P, T]`` of shape ``(N, 2)`` (Eq. 2)."""
        return np.column_stack(
            [
                self.page_indices.astype(np.float64),
                self.timestamps.astype(np.float64),
            ]
        )


@dataclass(frozen=True)
class TracePreprocessor:
    """Bundled Sec. 3.1 pipeline with the paper's defaults.

    Instances are immutable so one preprocessor can be shared across
    experiments; call :meth:`process` per trace.
    """

    head_fraction: float = 0.2
    tail_fraction: float = 0.1
    len_window: int = DEFAULT_LEN_WINDOW
    len_access_shot: int = DEFAULT_LEN_ACCESS_SHOT
    timestamp_mode: str = field(default="prose")

    def process(self, trace: MemoryTrace) -> ProcessedTrace:
        """Trim, consolidate to pages and stamp a raw trace."""
        trimmed = trim_warmup(
            trace, self.head_fraction, self.tail_fraction
        )
        page_indices = trimmed.addresses >> PAGE_SHIFT
        timestamps = transform_timestamps(
            len(trimmed),
            self.len_window,
            self.len_access_shot,
            self.timestamp_mode,
        )
        return ProcessedTrace(
            trace=trimmed,
            page_indices=page_indices,
            timestamps=timestamps,
        )

"""Trace combination utilities: multi-tenant request streams.

A CXL memory-expansion device is naturally shared: several VMs or
containers hit the same DRAM cache with disjoint address ranges.
These helpers build such mixed traces from the single-workload
generators -- interleaving by weight while relocating each tenant into
its own address partition -- so the cache study extends to
consolidation scenarios the paper's single-tenant evaluation leaves
open.
"""

from __future__ import annotations

import numpy as np

from repro.traces.record import PAGE_SHIFT, MemoryTrace


def relocate(trace: MemoryTrace, base_page: int) -> MemoryTrace:
    """Shift a trace's pages so its footprint starts at ``base_page``.

    The trace's internal layout (relative distances between regions)
    is preserved; only the origin moves.
    """
    if base_page < 0:
        raise ValueError("base_page must be >= 0")
    if len(trace) == 0:
        return trace
    pages = trace.page_indices()
    offset = int(base_page - pages.min())
    addresses = trace.addresses + (offset << PAGE_SHIFT)
    return MemoryTrace(addresses, trace.is_write.copy(), trace.times)


def interleave(
    traces: list[MemoryTrace],
    weights: list[float],
    n_accesses: int,
    rng: np.random.Generator,
) -> MemoryTrace:
    """Weighted per-request interleave of tenant traces.

    Each output request draws its source trace with the given weight
    and consumes that trace's *next* request, preserving every
    tenant's internal order (like cores sharing one memory
    controller).  Tenants that run out of requests wrap around.
    """
    if not traces:
        raise ValueError("traces must not be empty")
    if len(weights) != len(traces):
        raise ValueError("weights must align with traces")
    weights_arr = np.asarray(weights, dtype=np.float64)
    if np.any(weights_arr < 0) or weights_arr.sum() <= 0:
        raise ValueError("weights must be non-negative, not all zero")
    if any(len(t) == 0 for t in traces):
        raise ValueError("every trace must be non-empty")
    weights_arr = weights_arr / weights_arr.sum()
    choices = rng.choice(len(traces), size=n_accesses, p=weights_arr)
    addresses = np.empty(n_accesses, dtype=np.int64)
    writes = np.empty(n_accesses, dtype=bool)
    for index, trace in enumerate(traces):
        mask = choices == index
        count = int(mask.sum())
        if count == 0:
            continue
        positions = np.arange(count) % len(trace)
        addresses[mask] = trace.addresses[positions]
        writes[mask] = trace.is_write[positions]
    return MemoryTrace(addresses, writes)


def multi_tenant_trace(
    generators: list,
    weights: list[float],
    n_accesses: int,
    rng: np.random.Generator,
    partition_pages: int = 1 << 20,
) -> MemoryTrace:
    """Build a consolidated trace from workload generators.

    Each generator produces its own stream (sized by its weight),
    which is relocated into a private ``partition_pages``-sized
    address partition and interleaved per request.

    Parameters
    ----------
    generators:
        Workload generator instances (``TraceGenerator`` API).
    weights:
        Relative request rates per tenant.
    n_accesses:
        Length of the combined trace.
    partition_pages:
        Page stride between tenant partitions; must exceed every
        tenant footprint.
    """
    if len(generators) != len(weights):
        raise ValueError("weights must align with generators")
    if partition_pages < 1:
        raise ValueError("partition_pages must be >= 1")
    weights_arr = np.asarray(weights, dtype=np.float64)
    weights_arr = weights_arr / weights_arr.sum()
    tenant_traces = []
    for index, (generator, weight) in enumerate(
        zip(generators, weights_arr)
    ):
        length = max(1, int(round(n_accesses * weight)))
        raw = generator.generate(length, rng)
        tenant_traces.append(
            relocate(raw, base_page=index * partition_pages)
        )
    return interleave(
        tenant_traces, list(weights_arr), n_accesses, rng
    )

"""Average memory access time model (Table 1).

Sec. 5.3's measured constants:

* DRAM cache hit: 1 us.
* GMM inference: 3 us, fully overlapped with the SSD access by the
  dataflow architecture, so it adds nothing to the miss path.
* Cache miss: the SSD read (75 us for the TLC target); when the victim
  block is dirty the write-back raises the total penalty to 975 us.

Additional cases implied by the smart-caching flow of Sec. 3.2:

* A bypassed read miss still pays the SSD read (the data is sent
  SSD -> host directly).
* A bypassed write miss pays the SSD *write* latency (the store goes
  straight to flash instead of landing in the DRAM cache).
* An admitted write miss performs a write-allocate: the 4 KB page is
  read from the SSD (host stores are 64 B, the block is 4 KB), dirtied
  in DRAM, and written back only on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.hardware.ssd import SSD_CATALOG, SsdSpec


@dataclass(frozen=True)
class LatencyModel:
    """End-to-end average SSD access-time model.

    Parameters
    ----------
    ssd:
        Device latency profile (default: the paper's TLC target).
    hit_latency_us:
        DRAM cache hit service time (measured 1 us on the prototype).
    policy_latency_us:
        Cache policy engine inference latency (3 us for the GMM).
    overlapped:
        Whether the dataflow architecture hides the policy latency
        under the SSD access (Sec. 4.3).  With ``False`` every miss
        additionally pays ``policy_latency_us`` -- the configuration
        the overlap ablation measures.
    """

    ssd: SsdSpec = SSD_CATALOG["tlc"]
    hit_latency_us: float = 1.0
    policy_latency_us: float = 3.0
    overlapped: bool = True

    def total_time_us(self, stats: CacheStats) -> float:
        """Total service time of the measured requests, in us."""
        read_us = self.ssd.read_latency_us
        write_us = self.ssd.write_latency_us
        # Misses that allocated (or would have been served by) a read.
        bypassed_reads = stats.bypasses - stats.bypassed_writes
        admitted_misses = stats.misses - stats.bypasses
        total = stats.hits * self.hit_latency_us
        # Every admitted miss reads the page from the SSD.
        total += admitted_misses * read_us
        # Dirty victims are written back to the SSD.
        total += stats.dirty_evictions * write_us
        # Bypassed traffic goes to the SSD directly.
        total += bypassed_reads * read_us
        total += stats.bypassed_writes * write_us
        if not self.overlapped:
            total += stats.misses * self.policy_latency_us
        return total

    def average_access_time_us(self, stats: CacheStats) -> float:
        """Average access time over the measured requests (Table 1)."""
        if stats.accesses == 0:
            return 0.0
        return self.total_time_us(stats) / stats.accesses

    def breakdown_us(self, stats: CacheStats) -> dict[str, float]:
        """Per-component average-time contributions (sums to AMAT)."""
        if stats.accesses == 0:
            return {}
        n = stats.accesses
        bypassed_reads = stats.bypasses - stats.bypassed_writes
        admitted_misses = stats.misses - stats.bypasses
        parts = {
            "hit": stats.hits * self.hit_latency_us / n,
            "miss_read": (
                (admitted_misses + bypassed_reads)
                * self.ssd.read_latency_us
                / n
            ),
            "writeback": (
                stats.dirty_evictions * self.ssd.write_latency_us / n
            ),
            "bypassed_write": (
                stats.bypassed_writes * self.ssd.write_latency_us / n
            ),
        }
        if not self.overlapped:
            parts["policy"] = stats.misses * self.policy_latency_us / n
        return parts


@dataclass(frozen=True)
class DevicePathLatencyModel:
    """End-to-end pricing of the CXL device path (link + device).

    Prices a device's replayed :class:`CacheStats` into the exact
    total the per-access reference
    (:class:`repro.cxl.device.CxlMemoryDevice` behind
    :class:`repro.cxl.router.CxlSystem`) accumulates request by
    request: every routed request crosses the link once, a hit is
    served by device DRAM, every miss reads the SSD page, and
    bypassed writes / dirty evictions program flash.  Because each
    per-access latency is a pure function of its outcome class, the
    totals need only the outcome *counts* -- which is what lets the
    vectorized fabric price whole sub-streams from one
    :class:`CacheStats` instead of walking accesses.

    Parameters
    ----------
    ssd:
        Backing device latency profile.
    hit_latency_ns:
        Device-DRAM service time on a cache hit (Sec. 5.3: 1 us).
    link_request_ns:
        Per-request CXL link round trip (one cache line moves per
        host request); 0 prices the bare device.
    """

    ssd: SsdSpec = SSD_CATALOG["tlc"]
    hit_latency_ns: int = 1_000
    link_request_ns: int = 0

    def __post_init__(self) -> None:
        if self.hit_latency_ns <= 0:
            raise ValueError("hit_latency_ns must be positive")
        if self.link_request_ns < 0:
            raise ValueError("link_request_ns must be >= 0")

    def total_time_ns(self, stats: CacheStats) -> int:
        """Total device-path service time of the counted requests."""
        total = stats.accesses * self.link_request_ns
        total += stats.hits * self.hit_latency_ns
        total += stats.misses * self.ssd.read_latency_ns
        total += (
            stats.bypassed_writes + stats.dirty_evictions
        ) * self.ssd.write_latency_ns
        return total

    def average_latency_us(self, stats: CacheStats) -> float:
        """Mean end-to-end latency per request, in microseconds."""
        if stats.accesses == 0:
            return 0.0
        return self.total_time_ns(stats) / stats.accesses / 1_000.0

    def failslow_premium_ns(
        self, stats: CacheStats, factor: float
    ) -> int:
        """Extra service time of a fail-slow device at ``factor``.

        A fail-slow device (media wear, thermal throttling, a sick
        controller) slows the *whole* device path -- link, DRAM hit,
        and backing-store service alike -- unlike a link-degradation
        window, which scales only the link component.  The premium is
        the difference between the path priced at ``factor`` and
        healthy pricing; cache behaviour (the counters themselves) is
        unaffected.
        """
        if factor <= 1.0:
            return 0
        return int(round(self.total_time_ns(stats) * (factor - 1.0)))


def reduction_percent(baseline_us: float, improved_us: float) -> float:
    """Relative reduction in percent, as Table 1 reports it."""
    if baseline_us <= 0:
        raise ValueError("baseline_us must be positive")
    return 100.0 * (baseline_us - improved_us) / baseline_us

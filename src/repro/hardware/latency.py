"""Average memory access time model (Table 1).

Sec. 5.3's measured constants:

* DRAM cache hit: 1 us.
* GMM inference: 3 us, fully overlapped with the SSD access by the
  dataflow architecture, so it adds nothing to the miss path.
* Cache miss: the SSD read (75 us for the TLC target); when the victim
  block is dirty the write-back raises the total penalty to 975 us.

Additional cases implied by the smart-caching flow of Sec. 3.2:

* A bypassed read miss still pays the SSD read (the data is sent
  SSD -> host directly).
* A bypassed write miss pays the SSD *write* latency (the store goes
  straight to flash instead of landing in the DRAM cache).
* An admitted write miss performs a write-allocate: the 4 KB page is
  read from the SSD (host stores are 64 B, the block is 4 KB), dirtied
  in DRAM, and written back only on eviction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.stats import CacheStats
from repro.hardware.ssd import SSD_CATALOG, SsdSpec


@dataclass(frozen=True)
class LatencyModel:
    """End-to-end average SSD access-time model.

    Parameters
    ----------
    ssd:
        Device latency profile (default: the paper's TLC target).
    hit_latency_us:
        DRAM cache hit service time (measured 1 us on the prototype).
    policy_latency_us:
        Cache policy engine inference latency (3 us for the GMM).
    overlapped:
        Whether the dataflow architecture hides the policy latency
        under the SSD access (Sec. 4.3).  With ``False`` every miss
        additionally pays ``policy_latency_us`` -- the configuration
        the overlap ablation measures.
    """

    ssd: SsdSpec = SSD_CATALOG["tlc"]
    hit_latency_us: float = 1.0
    policy_latency_us: float = 3.0
    overlapped: bool = True

    def total_time_us(self, stats: CacheStats) -> float:
        """Total service time of the measured requests, in us."""
        read_us = self.ssd.read_latency_us
        write_us = self.ssd.write_latency_us
        # Misses that allocated (or would have been served by) a read.
        bypassed_reads = stats.bypasses - stats.bypassed_writes
        admitted_misses = stats.misses - stats.bypasses
        total = stats.hits * self.hit_latency_us
        # Every admitted miss reads the page from the SSD.
        total += admitted_misses * read_us
        # Dirty victims are written back to the SSD.
        total += stats.dirty_evictions * write_us
        # Bypassed traffic goes to the SSD directly.
        total += bypassed_reads * read_us
        total += stats.bypassed_writes * write_us
        if not self.overlapped:
            total += stats.misses * self.policy_latency_us
        return total

    def average_access_time_us(self, stats: CacheStats) -> float:
        """Average access time over the measured requests (Table 1)."""
        if stats.accesses == 0:
            return 0.0
        return self.total_time_us(stats) / stats.accesses

    def breakdown_us(self, stats: CacheStats) -> dict[str, float]:
        """Per-component average-time contributions (sums to AMAT)."""
        if stats.accesses == 0:
            return {}
        n = stats.accesses
        bypassed_reads = stats.bypasses - stats.bypassed_writes
        admitted_misses = stats.misses - stats.bypasses
        parts = {
            "hit": stats.hits * self.hit_latency_us / n,
            "miss_read": (
                (admitted_misses + bypassed_reads)
                * self.ssd.read_latency_us
                / n
            ),
            "writeback": (
                stats.dirty_evictions * self.ssd.write_latency_us / n
            ),
            "bypassed_write": (
                stats.bypassed_writes * self.ssd.write_latency_us / n
            ),
        }
        if not self.overlapped:
            parts["policy"] = stats.misses * self.policy_latency_us / n
        return parts


def reduction_percent(baseline_us: float, improved_us: float) -> float:
    """Relative reduction in percent, as Table 1 reports it."""
    if baseline_us <= 0:
        raise ValueError("baseline_us must be positive")
    return 100.0 * (baseline_us - improved_us) / baseline_us

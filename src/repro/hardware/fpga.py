"""FPGA platform and engine timing models.

The prototype runs on a Xilinx Alveo U50 at 233 MHz (Sec. 5.1).  The
timing models here convert engine architecture parameters into
per-inference latency; their calibration constants are chosen so the
paper's two measured engines land on the reported numbers (GMM: 3 us;
LSTM: 46.3 ms -- Table 2), and they extrapolate for the ablation
sweeps (K, hidden size, clock).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class FpgaSpec:
    """Capacity of an FPGA card.

    Defaults describe the Alveo U50: 872 K LUTs, 1,743 K flip-flops,
    1,344 BRAM36 blocks, 5,952 DSP slices.  The paper's utilisation
    percentages (190 BRAM = 14%, 117 DSP = 2%) are consistent with
    these totals.
    """

    name: str = "Alveo U50"
    clock_mhz: float = 233.0
    lut: int = 872_000
    ff: int = 1_743_000
    bram: int = 1_344
    dsp: int = 5_952

    def __post_init__(self) -> None:
        if self.clock_mhz <= 0:
            raise ValueError("clock_mhz must be positive")

    @property
    def cycle_ns(self) -> float:
        """Clock period in nanoseconds."""
        return 1_000.0 / self.clock_mhz


@dataclass(frozen=True)
class GmmEngineTiming:
    """Latency model of the pipelined GMM score engine (Sec. 4.1).

    The engine streams one Gaussian evaluation group per ``ii`` cycles
    through a deep arithmetic pipeline (subtract, quadratic form, exp
    lookup, weighted accumulate via the shift register).

    ``pipeline_depth`` and ``ii`` are calibrated so the paper's K=256
    engine measures 3 us at 233 MHz: 187 + 256 x 2 = 699 cycles =
    3.0 us.
    """

    n_components: int = 256
    pipeline_depth: int = 187
    ii: int = 2

    def __post_init__(self) -> None:
        if self.n_components < 1:
            raise ValueError("n_components must be >= 1")
        if self.pipeline_depth < 1 or self.ii < 1:
            raise ValueError("pipeline_depth and ii must be >= 1")

    @property
    def cycles(self) -> int:
        """Cycles per inference."""
        return self.pipeline_depth + self.n_components * self.ii

    def latency_us(self, fpga: FpgaSpec) -> float:
        """Per-inference latency on ``fpga``, in microseconds."""
        return self.cycles * fpga.cycle_ns / 1_000.0


@dataclass(frozen=True)
class LstmEngineTiming:
    """Latency model of the LSTM baseline engine (Sec. 5.3).

    The recurrent dependency chain (each timestep needs the previous
    hidden state) plus single-port weight BRAMs serialise the
    matrix-vector work to about one effective multiply-accumulate per
    cycle, regardless of the DSP budget -- which is exactly why the
    paper measures 46.3 ms despite 145 DSPs being available.
    ``effective_macs_per_cycle`` is calibrated to that measurement
    (10.52 M MACs / 46.3 ms at 233 MHz = 0.975).
    """

    input_size: int = 2
    hidden_size: int = 128
    n_layers: int = 3
    sequence_length: int = 32
    effective_macs_per_cycle: float = 0.975

    def __post_init__(self) -> None:
        if min(
            self.input_size,
            self.hidden_size,
            self.n_layers,
            self.sequence_length,
        ) < 1:
            raise ValueError("all dimensions must be >= 1")
        if self.effective_macs_per_cycle <= 0:
            raise ValueError("effective_macs_per_cycle must be positive")

    @property
    def macs_per_inference(self) -> int:
        """Multiply-accumulates per scoring decision."""
        first = 4 * self.hidden_size * (self.input_size + self.hidden_size)
        rest = (self.n_layers - 1) * (
            4 * self.hidden_size * (2 * self.hidden_size)
        )
        return self.sequence_length * (first + rest) + self.hidden_size

    @property
    def cycles(self) -> int:
        """Cycles per inference."""
        return int(
            round(self.macs_per_inference / self.effective_macs_per_cycle)
        )

    def latency_us(self, fpga: FpgaSpec) -> float:
        """Per-inference latency on ``fpga``, in microseconds."""
        return self.cycles * fpga.cycle_ns / 1_000.0


def engine_speedup(
    lstm: LstmEngineTiming,
    gmm: GmmEngineTiming,
    fpga: FpgaSpec | None = None,
) -> float:
    """LSTM-to-GMM latency ratio (Table 2 reports >10,000x)."""
    if fpga is None:
        fpga = FpgaSpec()
    return lstm.latency_us(fpga) / gmm.latency_us(fpga)

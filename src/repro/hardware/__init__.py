"""Hardware cost and latency substrate.

Software models of everything the paper measures on the FPGA:
SSD latency emulation (:mod:`repro.hardware.ssd`), the average
access-time model behind Table 1 (:mod:`repro.hardware.latency`),
engine timing at 233 MHz (:mod:`repro.hardware.fpga`) and the
resource estimators behind Table 2 (:mod:`repro.hardware.resources`).
"""

from repro.hardware.fpga import (
    FpgaSpec,
    GmmEngineTiming,
    LstmEngineTiming,
    engine_speedup,
)
from repro.hardware.latency import (
    DevicePathLatencyModel,
    LatencyModel,
    reduction_percent,
)
from repro.hardware.resources import (
    ResourceEstimate,
    estimate_cache_controller,
    estimate_gmm_engine,
    estimate_icgmm_system,
    estimate_lstm_engine,
    estimate_signal_controller,
    lstm_parameter_count,
)
from repro.hardware.ssd import (
    SSD_CATALOG,
    SsdLatencyEmulator,
    SsdSpec,
    get_ssd_spec,
)

__all__ = [
    "DevicePathLatencyModel",
    "FpgaSpec",
    "GmmEngineTiming",
    "LatencyModel",
    "LstmEngineTiming",
    "ResourceEstimate",
    "SSD_CATALOG",
    "SsdLatencyEmulator",
    "SsdSpec",
    "engine_speedup",
    "estimate_cache_controller",
    "estimate_gmm_engine",
    "estimate_icgmm_system",
    "estimate_lstm_engine",
    "estimate_signal_controller",
    "get_ssd_spec",
    "lstm_parameter_count",
    "reduction_percent",
]

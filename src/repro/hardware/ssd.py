"""SSD access-latency emulation.

The paper's cache control engine embeds an "SSD access latency
emulator" (Sec. 4.2) that pauses the dataflow for the device's response
time on a miss; the evaluation targets a TLC device with 75 us average
read and 900 us write latency (Sec. 5.1, citing OSTEP).  This module is
the software version: a catalogue of device profiles and an emulator
with optional latency jitter.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Nanoseconds per microsecond; all internal times are integer ns.
US = 1_000


@dataclass(frozen=True)
class SsdSpec:
    """Average access latencies of a storage device.

    Attributes
    ----------
    name:
        Device family label.
    read_latency_us / write_latency_us:
        Average page read/program latency in microseconds.
    """

    name: str
    read_latency_us: float
    write_latency_us: float

    def __post_init__(self) -> None:
        if self.read_latency_us <= 0 or self.write_latency_us <= 0:
            raise ValueError("latencies must be positive")

    @property
    def read_latency_ns(self) -> int:
        """Read latency in nanoseconds."""
        return int(round(self.read_latency_us * US))

    @property
    def write_latency_ns(self) -> int:
        """Write (program) latency in nanoseconds."""
        return int(round(self.write_latency_us * US))


#: Device profiles; ``tlc`` is the paper's evaluation target, the others
#: bracket it for the device-sensitivity ablation (per-device averages
#: in the ranges tabulated by OSTEP and vendor datasheets).
SSD_CATALOG = {
    "tlc": SsdSpec("tlc", read_latency_us=75.0, write_latency_us=900.0),
    "slc": SsdSpec("slc", read_latency_us=25.0, write_latency_us=300.0),
    "mlc": SsdSpec("mlc", read_latency_us=50.0, write_latency_us=600.0),
    "qlc": SsdSpec("qlc", read_latency_us=140.0, write_latency_us=2200.0),
    "optane": SsdSpec("optane", read_latency_us=10.0, write_latency_us=10.0),
}


def get_ssd_spec(name: str) -> SsdSpec:
    """Look up a device profile by name."""
    try:
        return SSD_CATALOG[name]
    except KeyError:
        raise ValueError(
            f"unknown SSD profile {name!r}; choose from"
            f" {sorted(SSD_CATALOG)}"
        ) from None


class SsdLatencyEmulator:
    """Per-request SSD latency source.

    Parameters
    ----------
    spec:
        Device profile (defaults to the paper's TLC target).
    jitter:
        Coefficient of variation of a lognormal multiplier applied per
        request; 0 (default) reproduces the paper's fixed-duration
        pause.
    rng:
        Required when ``jitter > 0``.
    """

    def __init__(
        self,
        spec: SsdSpec | None = None,
        jitter: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if jitter < 0:
            raise ValueError("jitter must be >= 0")
        if jitter > 0 and rng is None:
            raise ValueError("jitter requires an rng")
        self.spec = spec if spec is not None else SSD_CATALOG["tlc"]
        self.jitter = float(jitter)
        self._rng = rng
        if jitter > 0:
            # Lognormal with unit mean and the requested CV.
            self._sigma = np.sqrt(np.log(1.0 + jitter**2))
            self._mu = -0.5 * self._sigma**2

    def _scale(self) -> float:
        if self.jitter == 0:
            return 1.0
        return float(
            np.exp(self._mu + self._sigma * self._rng.standard_normal())
        )

    def read_latency_ns(self) -> int:
        """Latency of one 4 KB page read."""
        return max(1, int(self.spec.read_latency_ns * self._scale()))

    def write_latency_ns(self) -> int:
        """Latency of one 4 KB page program."""
        return max(1, int(self.spec.write_latency_ns * self._scale()))

    def access_latency_ns(self, is_write: bool) -> int:
        """Latency of a read or write, by flag."""
        if is_write:
            return self.write_latency_ns()
        return self.read_latency_ns()

"""FPGA resource estimation for the two policy engines (Table 2).

The estimators combine first-principles storage arithmetic (parameter
bits over BRAM36 capacity, datapath multipliers over unroll factors)
with per-engine calibration constants fitted to the paper's reported
implementation, so that:

* the GMM engine at its paper configuration (K = 256, 32-bit words,
  unroll 16) reproduces Table 2's row exactly:
  8 BRAM / 113 DSP / 58,353 LUT / 152,583 FF;
* the LSTM engine (3 x 128 hidden, sequence 32, 145-DSP budget)
  reproduces 339 BRAM / 145 DSP / 85,029 LUT / 103,561 FF;
* the full ICGMM system (engine + cache controller + signal
  controller) reproduces Sec. 5.1's 190 BRAM / 117 DSP;

and all formulas scale monotonically with their architecture
parameters for the ablation sweeps.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hardware.fpga import FpgaSpec

#: Usable bits in one BRAM36 block.
BRAM_BITS = 36 * 1024


def _brams_for_bits(bits: int) -> int:
    """BRAM36 blocks needed to store ``bits``."""
    if bits <= 0:
        return 0
    return math.ceil(bits / BRAM_BITS)


@dataclass(frozen=True)
class ResourceEstimate:
    """BRAM/DSP/LUT/FF consumption of a hardware module."""

    bram: int
    dsp: int
    lut: int
    ff: int

    def __add__(self, other: "ResourceEstimate") -> "ResourceEstimate":
        return ResourceEstimate(
            bram=self.bram + other.bram,
            dsp=self.dsp + other.dsp,
            lut=self.lut + other.lut,
            ff=self.ff + other.ff,
        )

    def utilization(self, fpga: FpgaSpec) -> dict[str, float]:
        """Fraction of each resource used on ``fpga``."""
        return {
            "bram": self.bram / fpga.bram,
            "dsp": self.dsp / fpga.dsp,
            "lut": self.lut / fpga.lut,
            "ff": self.ff / fpga.ff,
        }

    def fits(self, fpga: FpgaSpec) -> bool:
        """Whether the module fits on ``fpga``."""
        return all(v <= 1.0 for v in self.utilization(fpga).values())


# Calibration constants (fitted to the paper's implementations).
_GMM_FIFO_BRAMS = 2
_GMM_LUT_BASE = 21_553
_GMM_LUT_PER_UNROLL = 2_300
_GMM_FF_BASE = 24_183
_GMM_FF_PER_UNROLL = 8_025

_LSTM_CONTROL_BRAMS = 30
_LSTM_LUT_BASE = 39_209
_LSTM_LUT_PER_DSP = 316
_LSTM_FF_BASE = 31_061
_LSTM_FF_PER_DSP = 500


def estimate_gmm_engine(
    n_components: int = 256,
    word_bits: int = 32,
    unroll: int = 16,
    exp_table_entries: int = 4096,
) -> ResourceEstimate:
    """Resource model of the GMM policy engine (Sec. 4.1).

    Storage: six words per component in the weight buffer (means,
    three inverse-covariance terms, folded log-normalisation), the exp
    lookup table, and two stream FIFOs.  Datapath: seven multipliers
    per unrolled component lane plus one for the accumulate stage.
    """
    if min(n_components, word_bits, unroll, exp_table_entries) < 1:
        raise ValueError("all parameters must be >= 1")
    weight_brams = _brams_for_bits(n_components * 6 * word_bits)
    exp_brams = _brams_for_bits(exp_table_entries * word_bits)
    bram = weight_brams + exp_brams + _GMM_FIFO_BRAMS
    dsp = unroll * 7 + 1
    lut = _GMM_LUT_BASE + unroll * _GMM_LUT_PER_UNROLL
    ff = _GMM_FF_BASE + unroll * _GMM_FF_PER_UNROLL
    return ResourceEstimate(bram=bram, dsp=dsp, lut=lut, ff=ff)


def lstm_parameter_count(
    input_size: int = 2,
    hidden_size: int = 128,
    n_layers: int = 3,
) -> int:
    """Scalar parameters of the stacked-LSTM baseline (with head)."""
    first = 4 * hidden_size * (input_size + hidden_size) + 4 * hidden_size
    rest = (n_layers - 1) * (
        4 * hidden_size * (2 * hidden_size) + 4 * hidden_size
    )
    head = hidden_size + 1
    return first + rest + head


def estimate_lstm_engine(
    input_size: int = 2,
    hidden_size: int = 128,
    n_layers: int = 3,
    sequence_length: int = 32,
    word_bits: int = 32,
    dsp_budget: int = 145,
) -> ResourceEstimate:
    """Resource model of the LSTM baseline engine (Sec. 5.3).

    Storage: all weights on-chip (the engine cannot afford HBM weight
    streaming at per-request latency), double-buffered activations and
    control/FIFO overhead.  The DSP budget is a given of the
    experiment ("similar DSPs utilization to ensure comparison
    fairness").
    """
    if min(
        input_size, hidden_size, n_layers, sequence_length, word_bits
    ) < 1:
        raise ValueError("all dimensions must be >= 1")
    if dsp_budget < 1:
        raise ValueError("dsp_budget must be >= 1")
    params = lstm_parameter_count(input_size, hidden_size, n_layers)
    weight_brams = _brams_for_bits(params * word_bits)
    activation_brams = _brams_for_bits(
        2 * sequence_length * hidden_size * n_layers * word_bits
    )
    bram = weight_brams + activation_brams + _LSTM_CONTROL_BRAMS
    lut = _LSTM_LUT_BASE + dsp_budget * _LSTM_LUT_PER_DSP
    ff = _LSTM_FF_BASE + dsp_budget * _LSTM_FF_PER_DSP
    return ResourceEstimate(bram=bram, dsp=dsp_budget, lut=lut, ff=ff)


def estimate_cache_controller(
    n_blocks: int = 16_384,
    tag_bits: int = 20,
    score_bits: int = 32,
) -> ResourceEstimate:
    """Resource model of the cache control engine (Sec. 4.2).

    The dominant storage is the cache tag + GMM score table (kept
    on-chip and partitioned for parallel tag compare) plus staging
    buffers between HBM and the comparison logic; the 154-BRAM buffer
    overhead and logic sizes are calibrated to the system totals of
    Sec. 5.1.
    """
    if n_blocks < 1:
        raise ValueError("n_blocks must be >= 1")
    table_brams = _brams_for_bits(n_blocks * (tag_bits + score_bits))
    return ResourceEstimate(
        bram=table_brams + 154,
        dsp=4,  # address arithmetic
        lut=38_500,
        ff=61_200,
    )


def estimate_signal_controller() -> ResourceEstimate:
    """Resource model of the signal controller (Fig. 5, module 3)."""
    return ResourceEstimate(bram=4, dsp=0, lut=6_200, ff=9_800)


def estimate_icgmm_system(
    n_components: int = 256,
    n_blocks: int = 16_384,
) -> ResourceEstimate:
    """Whole-system estimate (Sec. 5.1: 190 BRAM / 117 DSP on U50)."""
    return (
        estimate_gmm_engine(n_components=n_components)
        + estimate_cache_controller(n_blocks=n_blocks)
        + estimate_signal_controller()
    )

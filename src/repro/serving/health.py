"""Fleet health monitoring: detect and quarantine sick devices.

The chaos harness (PR 6) *tolerates* faults the injector announces --
``device_down`` hands the fabric an explicit outage window and
failover does the rest.  Fail-slow devices break that model: the
device keeps answering, its cache counters look healthy, and only its
*latency* drifts away from the fleet.  The
:class:`FleetHealthMonitor` is the response layer for exactly that
blind spot: it watches per-device latency/miss EWMAs (maintained by
:class:`repro.serving.metrics.RollingMetrics`) against the fleet
median and walks each device through a four-state machine::

    healthy --breach--> suspect --N consecutive--> quarantined
       ^                   |                           |
       |                (clean)                 (cool-down over)
       |                   v                           v
       +--clean probes-- probation <-------------------+
                           |
                        (breach)
                           v
                      quarantined

A quarantined device is removed from placement -- the fabric re-homes
its traffic onto healthy devices under the same score-aware failover
mechanism outage windows use -- then held in probation where live
probe traffic must stay clean for a configured number of chunks
before reinstatement.  Every transition is recorded as a
:class:`~repro.serving.metrics.FailureEvent` and appended to a
decision log whose digest the recovery bench compares across worker
counts: decisions are pure functions of per-chunk counters and the
chunk index, never wall-clock time.
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

import numpy as np

from repro.cache.stats import CacheStats
from repro.core.config import FleetHealthConfig
from repro.serving.metrics import RollingMetrics

#: Monitor states (``suspect`` is derived: healthy with a nonzero
#: breach streak).
STATE_HEALTHY = "healthy"
STATE_SUSPECT = "suspect"
STATE_QUARANTINED = "quarantined"
STATE_PROBATION = "probation"

#: Transition kinds recorded on the metrics timeline.
EVENT_SUSPECT = "device-suspect"
EVENT_CLEARED = "device-cleared"
EVENT_QUARANTINED = "device-quarantined"
EVENT_PROBATION = "device-probation"
EVENT_REINSTATED = "device-reinstated"

#: A breaching device whose *instantaneous* severity dropped below
#: this fraction of its previous chunk's is *recovering* (cold cache
#: re-warming after an outage, backlog draining) and does not advance
#: its breach streak: quarantine is for devices getting worse or
#: stuck, not for ones visibly healing.  The trend is judged on raw
#: per-chunk values rather than the EWMA because the EWMA keeps
#: rising for several chunks after a one-off spike even while the
#: device heals; a fail-slow ramp rises chunk over chunk in the raw
#: values too, so it is never exempted.
IMPROVEMENT_TOLERANCE = 0.95


class FleetHealthMonitor:
    """Median-relative EWMA watchdog over a device fleet.

    Parameters
    ----------
    config:
        Thresholds and state-machine clocks
        (:class:`~repro.core.config.FleetHealthConfig`).
    n_devices:
        Fleet size; device ids are ``0..n_devices-1``.
    metrics:
        Optional :class:`RollingMetrics` to observe into; by default
        the monitor owns a private instance (keyed ``device:<id>``)
        so its per-chunk records never double-count into a fabric's
        own degraded-lens bookkeeping.

    The driving layer calls :meth:`observe` once per (device, chunk)
    with the chunk's counters and *priced* service time (premiums
    included), then :meth:`step` once per chunk; decisions returned
    by ``step`` take effect at the next chunk via
    :meth:`blocked_devices`.
    """

    def __init__(
        self,
        config: FleetHealthConfig,
        n_devices: int,
        metrics: RollingMetrics | None = None,
    ) -> None:
        self.config = config
        self.n_devices = int(n_devices)
        self.metrics = (
            metrics
            if metrics is not None
            else RollingMetrics(ewma_alpha=config.ewma_alpha)
        )
        self._state = [STATE_HEALTHY] * self.n_devices
        self._breaches = [0] * self.n_devices
        self._clean = [0] * self.n_devices
        self._quarantined_at = [-1] * self.n_devices
        self._severity: list[float | None] = [None] * self.n_devices
        self._pending: dict[int, tuple[CacheStats, int]] = {}
        self.decisions: list[dict] = []
        self.quarantines = 0
        self.reinstatements = 0
        self.suspects = 0

    @classmethod
    def from_config(
        cls,
        config: Optional[FleetHealthConfig],
        n_devices: int,
        metrics: RollingMetrics | None = None,
    ) -> Optional["FleetHealthMonitor"]:
        """Build a monitor, or ``None`` when monitoring is disabled.

        ``None`` (not a no-op monitor) is the disabled form so the
        fabric can gate on ``if monitor is not None`` and run its
        exact pre-monitor code path otherwise.  A single-device fleet
        also gets ``None``: there is no fleet median to compare
        against (and nowhere to re-home traffic).
        """
        if config is None or not config.enabled or n_devices < 2:
            return None
        return cls(config, n_devices, metrics=metrics)

    # ------------------------------------------------------------------
    # Per-chunk protocol
    # ------------------------------------------------------------------
    def _key(self, device: int) -> str:
        return f"device:{device}"

    def observe(
        self, device: int, stats: CacheStats, time_ns: int
    ) -> None:
        """Feed one device's chunk counters and priced service time."""
        if stats.accesses == 0:
            return
        self.metrics.record_timed(self._key(device), stats, time_ns)
        self._pending[device] = (stats, int(time_ns))

    def state(self, device: int) -> str:
        """Current state name (``suspect`` when a breach streak is
        open on a healthy device)."""
        state = self._state[device]
        if state == STATE_HEALTHY and self._breaches[device] > 0:
            return STATE_SUSPECT
        return state

    def blocked_devices(self) -> tuple[int, ...]:
        """Devices currently held out of placement (quarantined)."""
        return tuple(
            d
            for d in range(self.n_devices)
            if self._state[d] == STATE_QUARANTINED
        )

    def step(self, chunk_index: int) -> list[tuple[str, int, dict]]:
        """Advance the state machine one chunk.

        Consumes the observations fed since the previous step and
        returns the transitions fired this chunk as
        ``(event_kind, device, info)`` tuples -- already appended to
        the decision log; the caller records them on its own metrics
        timeline.  Deterministic: devices are judged in ascending id
        order and every input is a per-chunk counter.
        """
        cfg = self.config
        observed = self._pending
        self._pending = {}
        transitions: list[tuple[str, int, dict]] = []

        def fire(kind: str, device: int, **info) -> None:
            transitions.append((kind, device, info))
            self.decisions.append(
                {
                    "chunk": int(chunk_index),
                    "device": int(device),
                    "transition": kind,
                }
            )

        # Quarantine cool-down over -> probation: traffic resumes
        # next chunk as live probes, judged on a fresh EWMA (the
        # frozen sick estimate would re-breach instantly).
        for device in range(self.n_devices):
            if (
                self._state[device] == STATE_QUARANTINED
                and chunk_index
                >= self._quarantined_at[device] + cfg.quarantine_chunks
            ):
                self._state[device] = STATE_PROBATION
                self._clean[device] = 0
                self._severity[device] = None
                self.metrics.reset_ewma(self._key(device))
                fire(EVENT_PROBATION, device)

        serving = [
            d
            for d in range(self.n_devices)
            if self._state[d] != STATE_QUARANTINED
        ]
        # Only devices observed *this chunk* vote in the fleet
        # median: a device sitting out an outage window carries a
        # stale EWMA frozen at whatever the workload looked like
        # before it went down, and letting it vote drags the median
        # away from what the serving fleet is actually experiencing
        # (e.g. a tenant phase shift during the outage would read as
        # half the fleet "breaching" against pre-shift latencies).
        voting = [d for d in serving if d in observed]
        latency_samples = [
            ewma
            for d in voting
            if (ewma := self.metrics.ewma_latency_ns(self._key(d)))
            is not None
        ]
        miss_samples = [
            ewma
            for d in voting
            if (ewma := self.metrics.ewma_miss_rate(self._key(d)))
            is not None
        ]
        if len(latency_samples) < 2:
            return transitions
        median_latency = float(np.median(latency_samples))
        median_miss = float(np.median(miss_samples))
        # Never judge the fleet below the survivable floor: each
        # quarantine this step shrinks the serving set, and the guard
        # is re-checked per device (ascending id order, so which
        # device wins a race to the last slot is deterministic).
        active = len(serving)

        for device in serving:
            pending = observed.get(device)
            if (
                pending is None
                or pending[0].accesses < cfg.min_chunk_accesses
            ):
                continue
            key = self._key(device)
            ewma_latency = self.metrics.ewma_latency_ns(key)
            ewma_miss = self.metrics.ewma_miss_rate(key)
            if ewma_latency is None:
                continue
            # Severity folds both channels onto a shared "times the
            # breach threshold" scale; > 1.0 on the smoothed (EWMA)
            # values is a breach.  The chunk-over-chunk trend that
            # separates a device getting worse (fail-slow ramp) from
            # one visibly healing (cold cache after an outage) is
            # judged on the *instantaneous* chunk values, which react
            # a full EWMA time-constant earlier.
            miss_bound = (
                cfg.miss_threshold * median_miss + cfg.miss_floor
            )

            def fold(latency_ns: float, miss_rate: float) -> float:
                sev = 0.0
                if median_latency > 0.0:
                    sev = latency_ns / (
                        cfg.latency_threshold * median_latency
                    )
                if miss_bound > 0.0:
                    sev = max(sev, miss_rate / miss_bound)
                return sev

            severity = fold(ewma_latency, ewma_miss)
            breach = severity > 1.0
            chunk_stats, chunk_time_ns = pending
            instant = fold(
                chunk_time_ns / chunk_stats.accesses,
                chunk_stats.misses / chunk_stats.accesses,
            )
            previous = self._severity[device]
            self._severity[device] = instant
            improving = (
                previous is not None
                and instant < IMPROVEMENT_TOLERANCE * previous
            )
            info = {
                "ewma_latency_us": round(ewma_latency / 1_000.0, 3),
                "median_latency_us": round(
                    median_latency / 1_000.0, 3
                ),
                "severity": round(severity, 3),
            }
            state = self._state[device]
            if state == STATE_HEALTHY:
                if breach and not improving:
                    self._breaches[device] += 1
                    if self._breaches[device] == 1:
                        self.suspects += 1
                        fire(EVENT_SUSPECT, device, **info)
                    if (
                        self._breaches[device] >= cfg.breach_chunks
                        and active > cfg.min_active_devices
                    ):
                        self._state[device] = STATE_QUARANTINED
                        self._quarantined_at[device] = int(
                            chunk_index
                        )
                        self._breaches[device] = 0
                        self.quarantines += 1
                        active -= 1
                        fire(EVENT_QUARANTINED, device, **info)
                elif not breach and self._breaches[device] > 0:
                    self._breaches[device] = 0
                    fire(EVENT_CLEARED, device, **info)
                # breach + improving: hold the streak open without
                # advancing it -- the next non-breach chunk clears.
            elif state == STATE_PROBATION:
                if breach and previous is None:
                    # First probe after the EWMA reset only seeds the
                    # severity trend; judgement starts next chunk.
                    pass
                elif breach and not improving:
                    if active > cfg.min_active_devices:
                        self._state[device] = STATE_QUARANTINED
                        self._quarantined_at[device] = int(
                            chunk_index
                        )
                        self._clean[device] = 0
                        self.quarantines += 1
                        active -= 1
                        fire(
                            EVENT_QUARANTINED,
                            device,
                            probation_failed=True,
                            **info,
                        )
                elif not breach:
                    self._clean[device] += 1
                    if self._clean[device] >= cfg.probation_chunks:
                        self._state[device] = STATE_HEALTHY
                        self._clean[device] = 0
                        self.reinstatements += 1
                        fire(EVENT_REINSTATED, device, **info)
        return transitions

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def decision_digest(self) -> str:
        """Canonical SHA-256 of the decision log.

        The recovery bench asserts this digest is bit-identical
        across worker counts: monitor decisions depend only on
        logical clocks and merged per-chunk counters.
        """
        payload = json.dumps(
            self.decisions, sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def summary(self) -> dict:
        """Counters + per-device states (for benches and the CLI)."""
        return {
            "quarantines": self.quarantines,
            "reinstatements": self.reinstatements,
            "suspects": self.suspects,
            "states": [
                self.state(d) for d in range(self.n_devices)
            ],
            "decisions": list(self.decisions),
            "decision_digest": self.decision_digest(),
        }

    def __repr__(self) -> str:
        return (
            f"FleetHealthMonitor(n_devices={self.n_devices},"
            f" quarantined={len(self.blocked_devices())})"
        )

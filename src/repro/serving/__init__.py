"""Online serving subsystem: the streaming ICGMM cache service.

The paper evaluates a frozen, single-tenant pipeline offline; this
package runs the same loop continuously against live multi-tenant
traffic -- chunked scoring, sharded resumable simulation, score-drift
detection, and stepwise-EM model refresh with atomic engine swaps
(the software analogue of the FPGA weight-buffer reload).  See
``docs/serving.md`` for the architecture and ``docs/robustness.md``
for how the loop degrades and recovers under injected faults.
"""

from repro.serving.drift import DriftDetector, DriftReport, ks_statistic
from repro.serving.frontend import (
    ChunkProducer,
    FrontendReport,
    IngestQueue,
    ServingFrontend,
)
from repro.serving.health import FleetHealthMonitor
from repro.serving.metrics import FailureEvent, RollingMetrics
from repro.serving.refresh import (
    EngineSlot,
    ModelRefresher,
    StaleSwapError,
    validate_engine,
)
from repro.serving.service import (
    ChunkReport,
    IcgmmCacheService,
    SwapEvent,
)
from repro.serving.sharding import ShardedCachePlanes

__all__ = [
    "ChunkProducer",
    "ChunkReport",
    "DriftDetector",
    "DriftReport",
    "EngineSlot",
    "FailureEvent",
    "FleetHealthMonitor",
    "FrontendReport",
    "IcgmmCacheService",
    "IngestQueue",
    "ModelRefresher",
    "RollingMetrics",
    "ServingFrontend",
    "ShardedCachePlanes",
    "StaleSwapError",
    "SwapEvent",
    "ks_statistic",
    "validate_engine",
]

"""Score-distribution drift detection for the serving loop.

The GMM's score for a request is a density under the *trained*
access distribution, so workload drift shows up directly as a shift
of the score distribution -- long before miss rates fully degrade.
The detector watches two windowed signals per chunk:

* a two-sample **Kolmogorov-Smirnov** statistic between the chunk's
  scores and a reference sample captured just after the engine was
  (re)loaded, and
* the **threshold-quantile shift**: the engine's admission threshold
  was chosen so a known quantile ``q`` of training scores falls below
  it; under drift a frozen engine suddenly scores most of the live
  traffic below its own cut, so ``|observed_below - q|`` is a cheap,
  interpretable alarm wired to the exact knob the policy acts on.

Either signal sustained for ``patience`` consecutive chunks reports
drift; the service then schedules a model refresh and, after the
swap, :meth:`DriftDetector.rebase` re-anchors the reference under
the new engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Reference-sample cap; KS precision saturates well below this.
_MAX_REFERENCE = 8192


def ks_statistic(
    sample_a: np.ndarray,
    sample_b: np.ndarray,
    assume_sorted: bool = False,
) -> float:
    """Two-sample KS statistic ``sup |F_a - F_b|`` (vectorized).

    Evaluated over the union of both samples via sorted
    ``searchsorted`` -- no SciPy dependency.  ``assume_sorted``
    skips the input sorts (the detector's reference sample is stored
    pre-sorted and compared on every chunk).
    """
    sample_a = np.asarray(sample_a, dtype=np.float64)
    sample_b = np.asarray(sample_b, dtype=np.float64)
    if not assume_sorted:
        sample_a = np.sort(sample_a)
        sample_b = np.sort(sample_b)
    if sample_a.size == 0 or sample_b.size == 0:
        raise ValueError("both samples must be non-empty")
    grid = np.concatenate([sample_a, sample_b])
    cdf_a = np.searchsorted(sample_a, grid, side="right") / sample_a.size
    cdf_b = np.searchsorted(sample_b, grid, side="right") / sample_b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclass(frozen=True)
class DriftReport:
    """Per-chunk drift observation.

    ``drifted`` is the debounced decision (patience satisfied);
    ``signal`` is the instantaneous one.  ``ks`` is ``nan`` while the
    detector is still accumulating its baseline.
    """

    ks: float
    below_threshold_fraction: float
    signal: bool
    drifted: bool
    baselining: bool


class DriftDetector:
    """Windowed drift monitor over per-chunk score batches.

    Parameters
    ----------
    threshold:
        The engine's current admission threshold.
    quantile:
        Training-score quantile the threshold was derived at.
    ks_threshold / quantile_tolerance / patience:
        Decision knobs (see module docstring).
    baseline_chunks:
        Chunks of scores accumulated as the reference sample after
        every (re)base before monitoring starts.
    """

    def __init__(
        self,
        threshold: float,
        quantile: float,
        ks_threshold: float = 0.25,
        quantile_tolerance: float = 0.25,
        patience: int = 2,
        baseline_chunks: int = 2,
    ) -> None:
        if not 0.0 < ks_threshold <= 1.0:
            raise ValueError("ks_threshold must be in (0, 1]")
        if quantile_tolerance <= 0.0:
            raise ValueError("quantile_tolerance must be > 0")
        if patience < 1:
            raise ValueError("patience must be >= 1")
        if baseline_chunks < 1:
            raise ValueError("baseline_chunks must be >= 1")
        self.ks_threshold = float(ks_threshold)
        self.quantile_tolerance = float(quantile_tolerance)
        self.patience = int(patience)
        self.baseline_chunks = int(baseline_chunks)
        self.rebase(threshold, quantile)

    def rebase(self, threshold: float, quantile: float) -> None:
        """Reset the reference distribution (after an engine swap)."""
        self.threshold = float(threshold)
        self.quantile = float(quantile)
        self._baseline_parts: list[np.ndarray] = []
        self._reference: np.ndarray | None = None
        self._streak = 0

    @property
    def ready(self) -> bool:
        """Whether the baseline is complete and monitoring is live."""
        return self._reference is not None

    def observe(self, scores: np.ndarray) -> DriftReport:
        """Fold in one chunk of scores; returns the drift report."""
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size == 0:
            raise ValueError("scores must be non-empty")
        below = float(np.mean(scores < self.threshold))
        if self._reference is None:
            self._baseline_parts.append(scores.copy())
            if len(self._baseline_parts) >= self.baseline_chunks:
                reference = np.concatenate(self._baseline_parts)
                if reference.size > _MAX_REFERENCE:
                    stride = reference.size / _MAX_REFERENCE
                    take = (
                        np.arange(_MAX_REFERENCE) * stride
                    ).astype(np.int64)
                    reference = reference[take]
                self._reference = np.sort(reference)
                self._baseline_parts = []
            return DriftReport(
                ks=float("nan"),
                below_threshold_fraction=below,
                signal=False,
                drifted=False,
                baselining=True,
            )
        ks = ks_statistic(
            self._reference, np.sort(scores), assume_sorted=True
        )
        quantile_shift = abs(below - self.quantile)
        signal = (
            ks > self.ks_threshold
            or quantile_shift > self.quantile_tolerance
        )
        self._streak = self._streak + 1 if signal else 0
        return DriftReport(
            ks=ks,
            below_threshold_fraction=below,
            signal=signal,
            drifted=self._streak >= self.patience,
            baselining=False,
        )

"""The streaming ICGMM cache service.

:class:`IcgmmCacheService` runs the paper's whole loop *continuously*
on an access stream consumed in chunks:

1. stamp the chunk with Algorithm-1 timestamps from the global
   stream cursor and score it under the currently-loaded engine
   (Sec. 3.3 inference),
2. watch the score distribution for drift
   (:mod:`repro.serving.drift`),
3. simulate the chunk against the live sharded cache planes with
   resumable, bit-exact calls into the shared pipeline's Simulate
   stage (:meth:`repro.core.pipeline.StagedPipeline.simulate` --
   the same code path the offline system and the CXL fabric run);
   shards are fully independent, so the calls are dispatched
   concurrently through
   :class:`~repro.core.parallel.ParallelExecutor`
   (:attr:`~repro.core.config.ServingConfig.parallel`) and merged
   in shard order -- any worker count is bit-identical to
   sequential replay,
4. account per-shard and per-tenant rolling miss rate and Table 1
   latency from the recorded per-access outcomes, and
5. when drift is confirmed, fold the recent traffic into an
   :class:`~repro.gmm.OnlineGmm` and atomically swap the refreshed
   engine in (:mod:`repro.serving.refresh` -- the software analogue
   of the FPGA weight-buffer reload).

Exactness contract: with ``hash`` sharding and refresh disabled, the
service's totals are *bit-identical* to a single-shot
:meth:`repro.core.system.IcgmmSystem.run_strategy` over the same
stream -- chunking, sharding and resumption are pure implementation
details, not approximations.  The equivalence test in
``tests/serving`` and the acceptance check in
``benchmarks/bench_serving_drift.py`` both assert it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cache.stats import (
    OUTCOME_BYPASS,
    CacheStats,
    stats_from_outcomes,
)
from repro.chaos import FaultInjector, InjectedFaultError
from repro.core.config import ChaosConfig, IcgmmConfig, ServingConfig
from repro.core.engine import GmmPolicyEngine
from repro.core.parallel import ParallelExecutor, ReplayTask
from repro.core.pipeline import StagedPipeline, StageProfiler
from repro.core.policy import (
    CombinedIcgmmPolicy,
    build_policy,
    strategy_score_view,
)
from repro.hardware.latency import LatencyModel
from repro.serving.drift import DriftDetector, DriftReport
from repro.serving.metrics import RollingMetrics
from repro.serving.refresh import (
    EngineSlot,
    ModelRefresher,
    StaleSwapError,
    validate_engine,
)
from repro.serving.sharding import ShardedCachePlanes


def _timed_refresh_build(
    refresher: ModelRefresher,
    features: np.ndarray | None,
    current: GmmPolicyEngine,
) -> tuple[GmmPolicyEngine | None, Exception | None, float]:
    """Worker body of an off-critical-path refresh build.

    Runs on the refresh executor's thread; the feature snapshot was
    taken by the consumer at submit time, so the build never touches
    the live ingest buffer.  Always returns ``(engine, error,
    seconds)`` -- the harvest side needs the off-path wall time even
    when the fold fails.
    """
    started = time.perf_counter()
    try:
        engine = refresher.build_from(features, current)
        error = None
    except Exception as exc:  # noqa: BLE001 - harvested parent-side
        engine, error = None, exc
    return engine, error, time.perf_counter() - started


class _PageScoreCache:
    """Lazily-extended map of page -> time-marginalised score.

    One instance per engine generation: the marginal is a pure
    function of the page under a fixed mixture, so values are
    computed once per *new* page and reused for every later chunk --
    the working analogue of the on-board score table.  Vectorized
    per-access lookups go through sorted key/value arrays; the
    combined policy's shard-local dicts are fed from the new
    (pages, scores) pairs :meth:`ensure` returns.
    """

    def __init__(self, engine: GmmPolicyEngine) -> None:
        self._engine = engine
        self._keys = np.empty(0, dtype=np.int64)
        self._values = np.empty(0, dtype=np.float64)

    def ensure(
        self, pages: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Score pages not yet cached; returns the new (pages, scores)."""
        unique = np.unique(np.asarray(pages, dtype=np.int64))
        if self._keys.size:
            pos = np.searchsorted(self._keys, unique)
            pos_clipped = np.minimum(pos, self._keys.size - 1)
            new = unique[self._keys[pos_clipped] != unique]
        else:
            new = unique
        if new.size == 0:
            return new, np.empty(0, dtype=np.float64)
        marginals = self._engine.page_scores(new)
        # Both arrays are sorted already: an O(U + k) positional
        # insert replaces a full re-sort of the merged keys.
        insert_at = np.searchsorted(self._keys, new)
        self._keys = np.insert(self._keys, insert_at, new)
        self._values = np.insert(self._values, insert_at, marginals)
        return new, marginals

    def lookup(self, pages: np.ndarray) -> np.ndarray:
        """Marginal score per access (pages must be ensured)."""
        pos = np.searchsorted(
            self._keys, np.asarray(pages, dtype=np.int64)
        )
        return self._values[pos]


@dataclass(frozen=True)
class ChunkReport:
    """What one service step did (returned per chunk)."""

    chunk_index: int
    accesses: int
    stats: CacheStats
    drift: DriftReport | None
    swapped: bool
    generation: int


@dataclass(frozen=True)
class SwapEvent:
    """One engine swap in the service's history."""

    chunk_index: int
    generation: int
    access_cursor: int
    threshold: float


class IcgmmCacheService:
    """Long-running sharded ICGMM cache service (module docstring).

    Parameters
    ----------
    engine:
        The initially-deployed scoring engine (offline-trained, as
        the paper ships it).
    config:
        System profile: cache geometry and the Algorithm-1
        preprocessing constants the stream is stamped with.
    serving:
        Serving-loop knobs (:class:`~repro.core.config.ServingConfig`).
    latency_model:
        Table 1 pricing for the metrics view.
    measure_from:
        Absolute access index at which counters start (the stream
        before it warms the cache unmeasured -- the serving analogue
        of ``warmup_fraction``).
    """

    def __init__(
        self,
        engine: GmmPolicyEngine,
        config: IcgmmConfig | None = None,
        serving: ServingConfig | None = None,
        latency_model: LatencyModel | None = None,
        measure_from: int = 0,
        chaos: ChaosConfig | None = None,
        telemetry=None,
    ) -> None:
        if measure_from < 0:
            raise ValueError("measure_from must be >= 0")
        self.pipeline = StagedPipeline(config, latency_model)
        self.config = self.pipeline.config
        self.serving = serving if serving is not None else ServingConfig()
        self.measure_from = int(measure_from)
        self.slot = EngineSlot(engine)
        self._executor = ParallelExecutor.from_config(
            self.serving.parallel
        )
        # Chaos wiring: None when disabled, so every hot-path gate is
        # an ``is not None`` check and the fault-free run executes the
        # exact pre-chaos code path (asserted by tests/chaos parity).
        self.injector = FaultInjector.from_config(
            chaos,
            n_shards=self.serving.n_shards,
            task_lanes=self.serving.n_shards,
        )
        if self.injector is not None:
            self._executor.fault_hook = (
                self.injector.worker_crash_attempts
            )
        self.planes = ShardedCachePlanes(
            self.config.geometry,
            self.serving.n_shards,
            mode=self.serving.sharding,
            partition_pages=self.serving.partition_pages,
            executor=self._executor,
        )
        # None inherits the quantile the deployed engine's threshold
        # was trained at, so the drift detector's expected
        # below-threshold fraction matches reality at generation 0.
        self.threshold_quantile = (
            self.serving.threshold_quantile
            if self.serving.threshold_quantile is not None
            else self.config.gmm.threshold_quantile
        )
        self.detector = DriftDetector(
            threshold=engine.admission_threshold,
            quantile=self.threshold_quantile,
            ks_threshold=self.serving.ks_threshold,
            quantile_tolerance=self.serving.quantile_drift_tolerance,
            patience=self.serving.drift_patience,
            baseline_chunks=self.serving.drift_baseline_chunks,
        )
        self.refresher = ModelRefresher(
            buffer_chunks=self.serving.refresh_buffer_chunks,
            batch_size=self.serving.refresh_batch_size,
            step_exponent=self.serving.refresh_step_exponent,
            threshold_quantile=self.threshold_quantile,
            mode=self.serving.refresh_mode,
            warm_max_iter=self.serving.refresh_max_iter,
            reg_covar=self.config.gmm.reg_covar,
        )
        self.shard_metrics = RollingMetrics(
            latency_model, self.serving.metrics_window_chunks
        )
        self.tenant_metrics = RollingMetrics(
            latency_model, self.serving.metrics_window_chunks
        )
        self.totals = CacheStats()
        self.swaps: list[SwapEvent] = []
        self._score_view = strategy_score_view(self.serving.strategy)
        self._cursor = 0
        self._chunk_index = 0
        self._shard_cursors = [0] * self.serving.n_shards
        self._last_swap_chunk = -(10**9)
        # Refresh-resilience state: consecutive failed builds drive
        # exponential backoff; the breaker quarantines the drift
        # detector after repeated refusals.
        self._refresh_attempts = 0
        self._refresh_failures = 0
        self._refresh_block_until = -(10**9)
        self._quarantine_until = -(10**9)
        self._quarantined = False
        self._stall_retries = 0
        # Off-critical-path refresh (ServingConfig.refresh_async):
        # builds run on a dedicated single-worker thread executor and
        # commit through the CAS swap; the serving loop keeps
        # answering on the old engine meanwhile.  All state is None /
        # zero when disabled, so the synchronous path is untouched.
        self._refresh_executor: ParallelExecutor | None = None
        self._pending_refresh: dict | None = None
        self._refresh_overlap_chunks = 0
        self._refresh_discarded = 0
        if self.serving.refresh_async:
            self._refresh_executor = ParallelExecutor(
                workers=1, backend="thread"
            )
        # Telemetry wiring mirrors chaos: None when disabled, so every
        # hot-path gate is an ``is not None`` check and the untraced
        # run executes the exact pre-telemetry code path.
        self.telemetry = telemetry
        if telemetry is not None:
            self.pipeline.telemetry = telemetry
            self._bind_telemetry()
        self._load_generation()

    def _bind_telemetry(self) -> None:
        """Install push instruments and pull collectors (ctor-only).

        Per-chunk pushes are the only hot-path cost; everything else
        is read from existing accumulators at collection time by the
        :mod:`repro.obs.bridge` adapters.
        """
        from repro.obs import bridge
        from repro.obs.registry import RATIO_EDGES

        telemetry = self.telemetry
        registry = telemetry.registry
        self._m_chunks = registry.counter(
            "serving_chunks_total",
            help="Chunks processed by the service.",
        )
        self._m_accesses = registry.counter(
            "serving_accesses_total",
            help="Accesses ingested (measured or not).",
        )
        self._m_hits = registry.counter(
            "serving_hits_total",
            help="Measured DRAM-cache hits.",
        )
        self._m_misses = registry.counter(
            "serving_misses_total",
            help="Measured misses (includes bypasses).",
        )
        self._m_swaps = registry.counter(
            "serving_engine_swaps_total",
            help="Refreshed engines atomically swapped in.",
        )
        self._m_builds = registry.counter(
            "serving_refresh_builds_total",
            help="Refresh build attempts by outcome.",
            labels=("outcome",),
        )
        self._m_chunk_miss = registry.histogram(
            "serving_chunk_miss_ratio",
            help="Per-chunk measured miss ratio.",
            edges=RATIO_EDGES,
        )

        stalls = registry.counter(
            "serving_stall_retries_total",
            help="Shard-stall attempts absorbed by the retry budget.",
        )
        generation = registry.gauge(
            "serving_engine_generation_count",
            help="Engine generation currently serving.",
        )

        def collect() -> None:
            stalls.set(self._stall_retries)
            generation.set(self.slot.generation)

        registry.register_collector(collect)
        if self.serving.refresh_async:
            # Registered only for async deployments so synchronous
            # runs keep their pre-async family set byte-identical;
            # overlap depends on build wall time, hence
            # non-deterministic.
            overlap = registry.counter(
                "serving_refresh_overlap_chunks_total",
                help="Chunks served while a refresh built off-path.",
                deterministic=False,
            )
            discarded = registry.counter(
                "serving_refresh_discarded_total",
                help="Background builds dropped (stale or at close).",
                deterministic=False,
            )

            def collect_async() -> None:
                overlap.set(self._refresh_overlap_chunks)
                discarded.set(self._refresh_discarded)

            registry.register_collector(collect_async)
        # Telemetry implies stage accounting: attach a profiler when
        # --profile did not already hang one on the pipeline.
        if self.pipeline.profiler is None:
            self.pipeline.profiler = StageProfiler()
        bridge.register_stage_profiler(
            registry, self.pipeline.profiler
        )
        bridge.register_rolling(
            registry, self.shard_metrics, scope="shard"
        )
        bridge.register_rolling(
            registry, self.tenant_metrics, scope="tenant"
        )
        bridge.register_executor(
            registry, self._executor, component="serving"
        )
        bridge.register_refresher(registry, self.refresher)
        if self.injector is not None:
            bridge.register_injector(registry, self.injector)
        telemetry.add_event_source(
            bridge.rolling_event_source(
                self.shard_metrics, scope="shard"
            )
        )

    # ------------------------------------------------------------------
    # Engine (re)load
    # ------------------------------------------------------------------
    def _load_generation(self) -> None:
        """Rebuild generation-scoped state from the slot's engine."""
        engine = self.slot.engine
        self._page_cache = _PageScoreCache(engine)
        combined = self.serving.strategy == "gmm-caching-eviction"
        # The combined policy looks its eviction metadata up by the
        # page value the *simulator* sees, which after routing is the
        # shard-local page -- so each shard's policy gets its own
        # local-keyed mapping, filled as new pages are scored.  The
        # page-view strategy ("gmm-eviction") needs only the global
        # lookup arrays in the page cache, not these dicts.
        self._shard_page_maps: list[dict[int, float]] = [
            {} for _ in range(self.serving.n_shards)
        ]
        self._policies = [
            build_policy(
                self.serving.strategy,
                engine.admission_threshold,
                page_scores=(
                    self._shard_page_maps[shard] if combined else None
                ),
            )
            for shard in range(self.serving.n_shards)
        ]
        self._combined = combined
        self._needs_page_cache = combined or self._score_view == "page"

    @property
    def generation(self) -> int:
        """Engine generation currently serving."""
        return self.slot.generation

    @property
    def access_cursor(self) -> int:
        """Absolute index of the next access to be ingested."""
        return self._cursor

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest(
        self, pages: np.ndarray, is_write: np.ndarray
    ) -> list[ChunkReport]:
        """Stream a span of accesses through the service.

        The span is cut into :attr:`ServingConfig.chunk_requests`
        chunks processed in order; returns one report per chunk.
        """
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if pages.shape != is_write.shape or pages.ndim != 1:
            raise ValueError(
                "pages and is_write must be 1-D arrays of equal length"
            )
        reports = []
        step = self.serving.chunk_requests
        for start in range(0, pages.shape[0], step):
            reports.append(
                self._process_chunk(
                    pages[start : start + step],
                    is_write[start : start + step],
                )
            )
        return reports

    def _process_chunk(
        self, pages: np.ndarray, is_write: np.ndarray
    ) -> ChunkReport:
        n = pages.shape[0]
        engine, generation = self.slot.read()
        span = None
        if self.telemetry is not None:
            span = self.telemetry.tracer.begin(
                "serving", "chunk", index=self._chunk_index
            )
        abs_idx = np.arange(self._cursor, self._cursor + n)

        # --- scoring (Sec. 3.3 inference) -------------------------------
        # The 2-D request scores feed admission ("request" view) and
        # the drift detector; a frozen page-view or LRU deployment
        # needs neither, so it skips the dominant per-access cost --
        # including the Algorithm-1 feature stamping, whose only
        # consumers are the engine and the refresh buffer.  The whole
        # block is one Score-stage section, so ``--profile`` shows
        # the serving loop's real Score/Simulate split.
        need_scores = (
            self._score_view == "request"
            or self.serving.refresh_enabled
        )
        with self.pipeline.stage_scope("score"):
            features = (
                self.pipeline.chunk_features(pages, self._cursor)
                if need_scores
                else None
            )
            scores = engine.score(features) if need_scores else None
            if self._needs_page_cache:
                new_pages, new_marginals = self._page_cache.ensure(
                    pages
                )
                if self._combined and new_pages.size:
                    new_shards, new_local = self.planes.route(
                        new_pages
                    )
                    for shard in np.unique(new_shards).tolist():
                        mask = new_shards == shard
                        self._shard_page_maps[shard].update(
                            zip(
                                new_local[mask].tolist(),
                                new_marginals[mask].tolist(),
                                strict=True,
                            )
                        )
            if self._score_view == "request":
                sim_scores = scores
            elif self._score_view == "page":
                sim_scores = self._page_cache.lookup(pages)
            else:
                sim_scores = None

        # --- sharded simulation (resumable, exact, parallel) ------------
        # Each shard's slice goes through the shared pipeline's
        # Simulate stage, resuming at that shard's cursor; shards are
        # independent, so the round fans out through the executor and
        # merges in shard order (bit-identical to sequential).
        #
        # Drift observation and refresh buffering used to sit before
        # this block; they consume only (scores, features) computed
        # above, so they now run after simulation + accounting.  That
        # keeps every mutation of service state *behind* the fallible
        # stages: an exception up to this point leaves cursors,
        # detector and refresher untouched, and a retried ingest of
        # the same chunk is bit-identical to an uninterrupted run.
        shard_ids, local_pages = self.planes.route(pages)
        outcome = np.empty(n, dtype=np.uint8)
        shard_positions = self.planes.partition(shard_ids)
        shards: list[int] = []
        tasks: list[ReplayTask] = []
        degraded_shards: set[int] = set()
        for shard, positions in enumerate(shard_positions):
            if positions.size == 0:
                continue
            if self.injector is not None:
                attempts = self.injector.shard_stall_attempts(
                    self._chunk_index, shard
                )
                if attempts > self.serving.shard_retry_limit:
                    # Retry budget exhausted: degrade this shard's
                    # slice to SSD-direct service for the chunk.  No
                    # task is dispatched and the shard cursor does
                    # not advance -- the cache simply never saw these
                    # accesses, which is exactly what a stalled plane
                    # looks like from the data's point of view.
                    outcome[positions] = OUTCOME_BYPASS
                    degraded_shards.add(shard)
                    self.shard_metrics.record_event(
                        f"shard:{shard}",
                        "stall-degraded",
                        self._chunk_index,
                        attempts=attempts,
                    )
                    continue
                if attempts:
                    # Stall cleared within the retry budget: dispatch
                    # normally (bit-identical to no stall at all).
                    self._stall_retries += attempts
                    self.shard_metrics.record_event(
                        f"shard:{shard}",
                        "stall-recovered",
                        self._chunk_index,
                        attempts=attempts,
                    )
            shards.append(shard)
            tasks.append(
                ReplayTask(
                    cache=self.planes.caches[shard],
                    policy=self._policies[shard],
                    pages=local_pages[positions],
                    is_write=is_write[positions],
                    scores=(
                        sim_scores[positions]
                        if sim_scores is not None
                        else None
                    ),
                    index_offset=self._shard_cursors[shard],
                    record_outcome=True,
                    shared=self.planes.shared[shard],
                )
            )
        results = self._executor.replay(
            tasks,
            simulator=self.config.simulator,
            profiler=self.pipeline.profiler,
        )
        for shard, result in zip(shards, results, strict=True):
            positions = shard_positions[shard]
            outcome[positions] = result.outcome
            self._shard_cursors[shard] += int(positions.size)
            if self.telemetry is not None:
                self.telemetry.tracer.instant(
                    "serving",
                    "shard_round",
                    shard=shard,
                    accesses=int(positions.size),
                )
            # Adopt the post-run policy (a pickle round-trip under
            # the process backend) and re-alias the combined
            # strategy's shard-local score map to it.
            policy = result.policy
            self._policies[shard] = policy
            if isinstance(policy, CombinedIcgmmPolicy):
                self._shard_page_maps[shard] = policy._page_scores

        # --- accounting -------------------------------------------------
        measured = abs_idx >= self.measure_from
        chunk_stats = stats_from_outcomes(outcome, is_write, measured)
        self.totals = self.totals.merge(chunk_stats)
        for shard, positions in enumerate(shard_positions):
            if positions.size == 0:
                continue
            self.shard_metrics.record(
                f"shard:{shard}",
                stats_from_outcomes(
                    outcome[positions],
                    is_write[positions],
                    measured[positions],
                ),
                degraded=shard in degraded_shards,
            )
        tenants = pages // self.serving.partition_pages
        for tenant in np.unique(tenants).tolist():
            mask = tenants == tenant
            self.tenant_metrics.record(
                f"tenant:{tenant}",
                stats_from_outcomes(
                    outcome[mask], is_write[mask], measured[mask]
                ),
            )

        # --- drift watch ------------------------------------------------
        drift: DriftReport | None = None
        if self.serving.refresh_enabled:
            self.refresher.ingest(features)
            if self._chunk_index < self._quarantine_until:
                # Circuit breaker open: the detector's drift verdicts
                # keep triggering builds that keep failing, so its
                # observations are suspended (the refresher still
                # buffers traffic for the eventual rebuild).
                pass
            else:
                if self._quarantined:
                    # Breaker half-opens: re-arm the detector against
                    # the engine actually serving and forgive the
                    # failure streak.
                    self._quarantined = False
                    self._refresh_failures = 0
                    self.detector.rebase(
                        engine.admission_threshold,
                        self.threshold_quantile,
                    )
                    self.shard_metrics.record_event(
                        "engine",
                        "breaker-close",
                        self._chunk_index,
                    )
                drift = self.detector.observe(scores)

        # --- refresh / swap (graceful on failure) -----------------------
        swapped = False
        refresh_due = (
            self.serving.refresh_enabled
            and drift is not None
            and drift.drifted
            and self._chunk_index - self._last_swap_chunk
            >= self.serving.refresh_cooldown_chunks
            and self._chunk_index >= self._refresh_block_until
        )
        if self._refresh_executor is not None:
            # Off-critical-path deployment: harvest a finished
            # background build first (it commits through the CAS
            # swap), then submit a new one if drift demands it and
            # none is in flight.  A pending build never blocks the
            # chunk -- that is the whole point.
            swapped = self._harvest_refresh(self._cursor + n)
            if (
                refresh_due
                and not swapped
                and self._pending_refresh is None
            ):
                self._submit_refresh(engine, generation)
        elif refresh_due:
            build_index = self._refresh_attempts
            self._refresh_attempts += 1
            fault = (
                self.injector.refresh_fault(build_index)
                if self.injector is not None
                else None
            )
            try:
                if fault == "fail":
                    raise InjectedFaultError(
                        f"injected refresh failure at build"
                        f" {build_index}"
                    )
                # The build blocks the request path here; its own
                # profiler section keeps `serve --profile` honest
                # about that on-path cost (and gives the async
                # deployment's overlap numbers their baseline).
                with self.pipeline.profile_stage("refresh"):
                    refreshed = self.refresher.build(engine)
                if fault == "corrupt":
                    # The build "succeeds" but hands back garbage;
                    # validation below must catch it.
                    refreshed = GmmPolicyEngine(
                        model=refreshed.model,
                        scaler=refreshed.scaler,
                        admission_threshold=float("nan"),
                    )
                validate_engine(refreshed)
            except Exception as exc:  # noqa: BLE001 - degrade, don't die
                self._record_refresh_failure(build_index, exc)
            else:
                self._commit_refresh(
                    refreshed, build_index, generation, self._cursor + n
                )
                swapped = True

        self._cursor += n
        if self.telemetry is not None:
            self._m_chunks.inc()
            self._m_accesses.inc(n)
            self._m_hits.inc(chunk_stats.hits)
            self._m_misses.inc(chunk_stats.misses)
            self._m_chunk_miss.observe(chunk_stats.miss_rate)
            self.telemetry.tracer.end(span, accesses=n)
        report = ChunkReport(
            chunk_index=self._chunk_index,
            accesses=n,
            stats=chunk_stats,
            drift=drift,
            swapped=swapped,
            generation=self.slot.generation,
        )
        self._chunk_index += 1
        return report

    # ------------------------------------------------------------------
    # Refresh bookkeeping (shared by the on-path and off-path flows)
    # ------------------------------------------------------------------
    def _record_refresh_failure(
        self, build_index: int, exc: Exception
    ) -> None:
        """Failed or corrupted build: the current generation keeps
        serving, and further attempts back off exponentially.  After
        enough consecutive refusals the breaker opens and quarantines
        the detector."""
        self._refresh_failures += 1
        backoff = self.serving.refresh_backoff_chunks * (
            2 ** (self._refresh_failures - 1)
        )
        self._refresh_block_until = self._chunk_index + backoff
        self.shard_metrics.record_event(
            "engine",
            "refresh-failed",
            self._chunk_index,
            build=build_index,
            backoff_chunks=backoff,
            reason=str(exc),
        )
        if self.telemetry is not None:
            self._m_builds.labels(outcome="failed").inc()
            self.telemetry.tracer.instant(
                "serving",
                "refresh_build",
                build=build_index,
                outcome="failed",
            )
        if (
            self._refresh_failures
            >= self.serving.refresh_breaker_threshold
        ):
            self._quarantine_until = (
                self._chunk_index + self.serving.quarantine_chunks
            )
            self._quarantined = True
            self.shard_metrics.record_event(
                "engine",
                "breaker-open",
                self._chunk_index,
                until=self._quarantine_until,
            )

    def _commit_refresh(
        self,
        refreshed: GmmPolicyEngine,
        build_index: int,
        expected_generation: int,
        access_cursor: int,
    ) -> None:
        """CAS-swap a validated build in and rebase every consumer."""
        self.slot.swap(
            refreshed, expected_generation=expected_generation
        )
        self._load_generation()
        self.detector.rebase(
            refreshed.admission_threshold,
            self.threshold_quantile,
        )
        self._last_swap_chunk = self._chunk_index
        self._refresh_failures = 0
        self.swaps.append(
            SwapEvent(
                chunk_index=self._chunk_index,
                generation=self.slot.generation,
                access_cursor=access_cursor,
                threshold=refreshed.admission_threshold,
            )
        )
        if self.injector is not None:
            self.shard_metrics.record_event(
                "engine",
                "refresh-swap",
                self._chunk_index,
                generation=self.slot.generation,
            )
        if self.telemetry is not None:
            self._m_swaps.inc()
            self._m_builds.labels(outcome="swapped").inc()
            self.telemetry.tracer.instant(
                "serving",
                "refresh_build",
                build=build_index,
                outcome="swapped",
            )

    def _submit_refresh(
        self, engine: GmmPolicyEngine, generation: int
    ) -> None:
        """Hand one build to the refresh executor (non-blocking).

        The feature snapshot is taken *here*, on the consumer thread,
        so the worker folds exactly the traffic the drift decision
        saw -- not whatever the buffer holds when the thread gets
        scheduled.  Injected ``"fail"`` faults resolve synchronously
        (the inline path raises before building, so the bookkeeping
        stays comparable); ``"corrupt"`` rides along to the harvest,
        where validation must catch it.
        """
        build_index = self._refresh_attempts
        self._refresh_attempts += 1
        fault = (
            self.injector.refresh_fault(build_index)
            if self.injector is not None
            else None
        )
        if fault == "fail":
            self._record_refresh_failure(
                build_index,
                InjectedFaultError(
                    f"injected refresh failure at build {build_index}"
                ),
            )
            return
        future = self._refresh_executor.submit(
            _timed_refresh_build,
            self.refresher,
            self.refresher.snapshot_features(),
            engine,
        )
        self._pending_refresh = {
            "future": future,
            "build": build_index,
            "generation": generation,
            "fault": fault,
            "chunk": self._chunk_index,
        }

    def _harvest_refresh(
        self, access_cursor: int, block: bool = False
    ) -> bool:
        """Land a finished background build; True if one swapped in.

        Non-blocking by default: a build still running just bumps the
        overlap counter (one per chunk served under it) and the chunk
        goes on.  The harvest-side cost -- result pickup, validation,
        CAS swap -- is the only refresh work left on the request path,
        recorded as the ``refresh.onpath`` profiler section against
        the worker's ``refresh.offpath`` build seconds.
        """
        pending = self._pending_refresh
        if pending is None:
            return False
        future = pending["future"]
        if not block and not future.done():
            self._refresh_overlap_chunks += 1
            return False
        self._pending_refresh = None
        profiler = self.pipeline.profiler
        started = time.perf_counter()
        swapped = False
        refreshed, error, build_seconds = future.result()
        if profiler is not None:
            profiler.add("refresh.offpath", build_seconds)
        try:
            if error is not None:
                raise error
            if pending["fault"] == "corrupt":
                refreshed = GmmPolicyEngine(
                    model=refreshed.model,
                    scaler=refreshed.scaler,
                    admission_threshold=float("nan"),
                )
            validate_engine(refreshed)
            self._commit_refresh(
                refreshed,
                pending["build"],
                pending["generation"],
                access_cursor,
            )
            swapped = True
        except StaleSwapError:
            # A newer engine landed between submit and harvest; the
            # build is simply obsolete, not a failure -- no backoff.
            self._refresh_discarded += 1
            self.shard_metrics.record_event(
                "engine",
                "refresh-stale",
                self._chunk_index,
                build=pending["build"],
            )
        except Exception as exc:  # noqa: BLE001 - degrade, don't die
            self._record_refresh_failure(pending["build"], exc)
        if profiler is not None:
            profiler.add(
                "refresh.onpath", time.perf_counter() - started
            )
        return swapped

    def drain_refresh(self) -> bool:
        """Block until an in-flight background build lands (if any).

        Called by the front-end when the stream ends, so a refresh
        that started near the tail still commits (and its off-path
        seconds are accounted) instead of being silently discarded by
        :meth:`close`.  True if an engine swapped in.
        """
        if self._pending_refresh is None:
            return False
        return self._harvest_refresh(self._cursor, block=True)

    @property
    def refresh_overlap_chunks(self) -> int:
        """Chunks served while a background refresh was building."""
        return self._refresh_overlap_chunks

    @property
    def refresh_discarded(self) -> int:
        """Background builds dropped (stale swap or service close)."""
        return self._refresh_discarded

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the worker pools and any shared-memory planes.

        Only needed for parallel/async deployments (inline execution
        holds no pool and no shared segments); safe to call
        repeatedly.  A background build still in flight is discarded,
        never committed -- callers wanting it should
        :meth:`drain_refresh` first.
        """
        if self._refresh_executor is not None:
            if self._pending_refresh is not None:
                self._pending_refresh = None
                self._refresh_discarded += 1
            self._refresh_executor.shutdown()
        self._executor.shutdown()
        self.planes.close()

    def __enter__(self) -> "IcgmmCacheService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def summary(self) -> dict:
        """Operator view: totals, rolling metrics, swap history.

        Under chaos (an injector is wired) a ``"chaos"`` section is
        appended: the observed fault timeline and its digest, the
        failure/recovery event log, and the retry/degradation
        counters.  Without chaos the summary is byte-identical to the
        pre-chaos format.
        """
        out = {
            "accesses": self.totals.accesses,
            "miss_rate": self.totals.miss_rate,
            "generation": self.slot.generation,
            "swaps": [
                {
                    "chunk_index": event.chunk_index,
                    "generation": event.generation,
                    "access_cursor": event.access_cursor,
                    "threshold": event.threshold,
                }
                for event in self.swaps
            ],
            "shards": self.shard_metrics.snapshot(),
            "tenants": self.tenant_metrics.snapshot(),
        }
        if self.serving.refresh_async:
            out["refresh_async"] = {
                "overlap_chunks": self._refresh_overlap_chunks,
                "discarded": self._refresh_discarded,
                "pending": self._pending_refresh is not None,
                "attempts": self._refresh_attempts,
            }
        if self.injector is not None:
            out["chaos"] = {
                "timeline": self.injector.timeline(),
                "timeline_digest": self.injector.timeline_digest(),
                "events": [
                    event.as_dict()
                    for event in self.shard_metrics.events()
                ],
                "stall_retries": self._stall_retries,
                "worker_retries": self._executor.retries_performed,
                "refresh_attempts": self._refresh_attempts,
                "refresh_failures": self._refresh_failures,
                "recovery_latency_chunks": (
                    self.shard_metrics.recovery_latencies(
                        "breaker-open", "breaker-close"
                    )
                ),
            }
        return out

    def __repr__(self) -> str:
        return (
            f"IcgmmCacheService(strategy={self.serving.strategy!r},"
            f" shards={self.serving.n_shards},"
            f" generation={self.slot.generation},"
            f" cursor={self._cursor})"
        )

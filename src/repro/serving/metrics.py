"""Rolling per-shard / per-tenant serving metrics.

The serving loop records one :class:`~repro.cache.stats.CacheStats`
delta per key (shard or tenant) per chunk, reconstructed exactly from
the simulator's per-access outcome codes.  This module keeps a
bounded window of those deltas per key and derives the two numbers an
operator watches: the rolling miss rate and the rolling average
access time under the Table 1 :class:`~repro.hardware.latency.LatencyModel`.

The chaos harness (``repro.chaos``) adds a second lens: deltas served
in *degraded mode* (failover, SSD-direct after stall-retry exhaustion,
link degradation) are recorded with ``degraded=True`` and aggregated
separately, and discrete failure/recovery events
(:class:`FailureEvent`) land on the same per-key timeline so
time-to-detect / time-to-recover fall straight out of the record.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass, field

from repro.cache.stats import CacheStats
from repro.hardware.latency import LatencyModel
from repro.obs.registry import LATENCY_EDGES_US


@dataclass(frozen=True)
class FailureEvent:
    """One failure/recovery transition on a key's timeline.

    ``kind`` names the transition (e.g. ``"device-down"``,
    ``"device-restored"``, ``"stall-degraded"``, ``"refresh-failed"``,
    ``"breaker-open"``); ``chunk_index`` is the logical-clock tick it
    was observed at.
    """

    key: str
    kind: str
    chunk_index: int
    info: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "key": self.key,
            "kind": self.kind,
            "chunk_index": int(self.chunk_index),
            **{k: v for k, v in sorted(self.info.items())},
        }


class RollingMetrics:
    """Windowed metric aggregation keyed by shard/tenant label.

    Parameters
    ----------
    latency_model:
        Table 1 pricing model used for the latency view.
    window_chunks:
        Chunk deltas retained per key.
    """

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        window_chunks: int = 8,
        ewma_alpha: float = 0.25,
        latency_edges_us: tuple[float, ...] | None = None,
    ) -> None:
        if window_chunks < 1:
            raise ValueError("window_chunks must be >= 1")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.window_chunks = int(window_chunks)
        self.ewma_alpha = float(ewma_alpha)
        self._windows: dict[str, deque[CacheStats]] = {}
        self._totals: dict[str, CacheStats] = {}
        self._degraded: dict[str, CacheStats] = {}
        self._events: list[FailureEvent] = []
        self._ewma_latency_ns: dict[str, float] = {}
        self._ewma_miss: dict[str, float] = {}
        # Per-access pricing lives comfortably inside the telemetry
        # layer's shared edges; callers observing *chunk* wall times
        # (the front-end) pass a wider fixed set.
        self.latency_edges_us: tuple[float, ...] = tuple(
            latency_edges_us
            if latency_edges_us is not None
            else LATENCY_EDGES_US
        )
        #: key -> per-bucket counts (len(edges) + 1; overflow last).
        self._latency_counts: dict[str, list[int]] = {}
        self._latency_sum_us: dict[str, float] = {}
        self._latency_total: dict[str, int] = {}
        self._latency_max_us: dict[str, float] = {}

    def record(
        self, key: str, stats: CacheStats, degraded: bool = False
    ) -> None:
        """Append one chunk's counter delta for ``key``.

        ``degraded=True`` marks the delta as served in degraded mode
        (failover target, SSD-direct after retry exhaustion, degraded
        link); it still lands in the rolling window and totals, and
        is *additionally* aggregated under the degraded lens.
        """
        window = self._windows.get(key)
        if window is None:
            window = deque(maxlen=self.window_chunks)
            self._windows[key] = window
            self._totals[key] = CacheStats()
        window.append(stats)
        self._totals[key] = self._totals[key].merge(stats)
        if degraded:
            self._degraded[key] = self._degraded.get(
                key, CacheStats()
            ).merge(stats)

    def record_timed(
        self,
        key: str,
        stats: CacheStats,
        time_ns: int,
        degraded: bool = False,
    ) -> None:
        """Record a chunk delta with its *priced* service time.

        On top of :meth:`record`, maintains exponentially-weighted
        moving averages of per-access latency and miss rate for
        ``key`` -- the signals
        :class:`repro.serving.health.FleetHealthMonitor` compares
        against the fleet median.  ``time_ns`` is the chunk's total
        service time under the caller's pricing model *including* any
        degraded-mode premiums (fail-slow ramps, link windows), so a
        slowly sickening device is visible here even though its cache
        counters look healthy.  Chunks with zero accesses leave the
        EWMAs untouched.
        """
        self.record(key, stats, degraded=degraded)
        if stats.accesses == 0:
            return
        latency = time_ns / stats.accesses
        miss = stats.miss_rate
        alpha = self.ewma_alpha
        prev_latency = self._ewma_latency_ns.get(key)
        if prev_latency is None:
            self._ewma_latency_ns[key] = latency
            self._ewma_miss[key] = miss
        else:
            self._ewma_latency_ns[key] = (
                alpha * latency + (1.0 - alpha) * prev_latency
            )
            self._ewma_miss[key] = (
                alpha * miss
                + (1.0 - alpha) * self._ewma_miss[key]
            )

    def ewma_latency_ns(self, key: str) -> float | None:
        """EWMA per-access latency of ``key`` (None before any
        timed observation)."""
        return self._ewma_latency_ns.get(key)

    def ewma_miss_rate(self, key: str) -> float | None:
        """EWMA miss rate of ``key`` (None before any timed
        observation)."""
        return self._ewma_miss.get(key)

    def reset_ewma(self, key: str) -> None:
        """Drop ``key``'s EWMAs so the next observation starts fresh.

        The health monitor rebases a device's estimate when it enters
        probation: the quarantine froze the sick EWMA, and probe
        chunks must be judged on current behaviour, not history.
        """
        self._ewma_latency_ns.pop(key, None)
        self._ewma_miss.pop(key, None)

    def keys(self) -> list[str]:
        """All keys seen so far, in first-seen order."""
        return list(self._windows)

    def last(self, key: str) -> CacheStats | None:
        """The most recent chunk delta recorded for ``key`` (or None).

        The serving front-end uses this to feed a per-chunk view to
        an attached :class:`~repro.serving.health.FleetHealthMonitor`
        without re-deriving shard routing.
        """
        window = self._windows.get(key)
        if not window:
            return None
        return window[-1]

    def window(self, key: str) -> CacheStats:
        """Merged counters over the rolling window of ``key``."""
        merged = CacheStats()
        for stats in self._windows.get(key, ()):
            merged = merged.merge(stats)
        return merged

    def total(self, key: str) -> CacheStats:
        """Merged counters over the whole run of ``key``."""
        return self._totals.get(key, CacheStats())

    def miss_rate(self, key: str) -> float:
        """Rolling miss rate of ``key`` (0.0 on an empty window)."""
        window = self.window(key)
        if window.accesses == 0:
            return 0.0
        return window.miss_rate

    def latency_us(self, key: str) -> float:
        """Rolling Table 1 average access time (0.0 on empty window)."""
        window = self.window(key)
        if window.accesses == 0:
            return 0.0
        return self.latency_model.average_access_time_us(window)

    # ------------------------------------------------------------------
    # Request-latency histograms + quantiles (pipelined front-end)
    # ------------------------------------------------------------------
    def observe_latency(
        self, key: str, value_us: float, count: int = 1
    ) -> None:
        """Record ``count`` observations of ``value_us`` for ``key``.

        Observations land in the same fixed exponential edges the
        telemetry layer uses (:data:`~repro.obs.registry.LATENCY_EDGES_US`),
        so a bridge collector can republish a key's histogram
        bucket-for-bucket.  ``count > 1`` batches identical
        observations (e.g. one chunk's wall latency attributed to
        every request in it) without a Python-level loop.
        """
        if count < 1:
            raise ValueError("count must be >= 1")
        counts = self._latency_counts.get(key)
        if counts is None:
            counts = [0] * (len(self.latency_edges_us) + 1)
            self._latency_counts[key] = counts
            self._latency_sum_us[key] = 0.0
            self._latency_total[key] = 0
            self._latency_max_us[key] = float(value_us)
        # First bucket whose upper edge admits the value; past the
        # last edge falls into the trailing overflow bucket.
        counts[
            bisect.bisect_left(self.latency_edges_us, float(value_us))
        ] += int(count)
        self._latency_sum_us[key] += float(value_us) * int(count)
        self._latency_total[key] += int(count)
        self._latency_max_us[key] = max(
            self._latency_max_us[key], float(value_us)
        )

    def latency_histogram(
        self, key: str
    ) -> tuple[tuple[float, ...], list[int], float, int] | None:
        """``(edges, counts, sum_us, total)`` for ``key`` (or None).

        ``counts`` has one trailing overflow bucket past the last
        edge, matching :class:`repro.obs.registry.Histogram` layout.
        """
        counts = self._latency_counts.get(key)
        if counts is None:
            return None
        return (
            self.latency_edges_us,
            list(counts),
            self._latency_sum_us[key],
            self._latency_total[key],
        )

    def latency_quantile(self, key: str, q: float) -> float | None:
        """The ``q``-quantile of ``key``'s observed latencies.

        Inverted-CDF estimate over the histogram: the upper edge of
        the first bucket whose cumulative count reaches ``q * N`` --
        exactly ``np.percentile(values, 100 * q,
        method="inverted_cdf")`` whenever the observed values sit on
        bucket edges, and an upper bound (bucket resolution) in
        general.  Observations past the last edge resolve to the
        maximum observed value.  ``None`` before any observation.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("q must be in (0, 1]")
        counts = self._latency_counts.get(key)
        if counts is None:
            return None
        total = self._latency_total[key]
        # Integer rank >= q*N, guarded against float droop just under
        # an integer (0.5 * 4 -> rank 2, never 3).
        rank = -((-q * total) // 1.0)
        if rank - q * total >= 1.0 - 1e-9:
            rank -= 1.0
        rank = max(rank, 1.0)
        cumulative = 0
        for index, bucket_count in enumerate(counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.latency_edges_us):
                    return float(self.latency_edges_us[index])
                return self._latency_max_us[key]
        return self._latency_max_us[key]

    def latency_p50(self, key: str) -> float | None:
        """Median observed latency of ``key`` (None if unobserved)."""
        return self.latency_quantile(key, 0.50)

    def latency_p99(self, key: str) -> float | None:
        """99th-percentile latency of ``key`` (None if unobserved)."""
        return self.latency_quantile(key, 0.99)

    # ------------------------------------------------------------------
    # Degraded-mode lens + failure/recovery events (chaos harness)
    # ------------------------------------------------------------------
    def degraded_total(self, key: str) -> CacheStats:
        """Merged counters of ``key``'s degraded-mode deltas."""
        return self._degraded.get(key, CacheStats())

    def degraded_miss_rate(self, key: str) -> float:
        """Miss rate over ``key``'s degraded windows (0.0 if none)."""
        total = self.degraded_total(key)
        if total.accesses == 0:
            return 0.0
        return total.miss_rate

    def record_event(
        self, key: str, kind: str, chunk_index: int, **info
    ) -> None:
        """Append one failure/recovery transition for ``key``."""
        self._events.append(
            FailureEvent(
                key=key, kind=kind, chunk_index=chunk_index, info=info
            )
        )

    def events(self, key: str | None = None) -> list[FailureEvent]:
        """Recorded transitions, optionally filtered by key."""
        if key is None:
            return list(self._events)
        return [event for event in self._events if event.key == key]

    def recovery_latencies(
        self, down_kind: str, up_kind: str
    ) -> list[int]:
        """Chunks between each ``down_kind`` and the next ``up_kind``.

        Pairs transitions per key in timeline order; an outage still
        open at the end of the record contributes nothing.  This is
        the time-to-recover view (time-to-detect is zero by
        construction: faults are observed at the chunk they start).
        """
        open_since: dict[str, int] = {}
        latencies: list[int] = []
        for event in self._events:
            if event.kind == down_kind:
                open_since.setdefault(event.key, event.chunk_index)
            elif event.kind == up_kind and event.key in open_since:
                latencies.append(
                    event.chunk_index - open_since.pop(event.key)
                )
        return latencies

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Rolling miss rate / latency / traffic share per key."""
        out: dict[str, dict[str, float]] = {}
        windows = {key: self.window(key) for key in self._windows}
        total_accesses = sum(
            window.accesses for window in windows.values()
        )
        for key, window in windows.items():
            out[key] = {
                "miss_rate": window.miss_rate,
                "latency_us": self.latency_model.average_access_time_us(
                    window
                ),
                "accesses": float(window.accesses),
                "traffic_share": (
                    window.accesses / total_accesses
                    if total_accesses
                    else 0.0
                ),
            }
            # Degraded lens only when something was actually served
            # degraded, so a chaos-free snapshot is byte-identical to
            # the pre-chaos format.
            degraded = self._degraded.get(key)
            if degraded is not None:
                out[key]["degraded_accesses"] = float(
                    degraded.accesses
                )
                out[key]["degraded_miss_rate"] = (
                    self.degraded_miss_rate(key)
                )
        return out

    @staticmethod
    def merge_snapshots(
        *snapshots: dict[str, dict[str, float]],
    ) -> dict[str, dict[str, float]]:
        """Combine :meth:`snapshot` dicts into one cross-view dict.

        Rates are re-derived as access-weighted averages, so a key
        present in several inputs (e.g. the same tenant seen by two
        service instances) gets the rates one combined window would
        have reported, and ``traffic_share`` is recomputed over the
        merged access total.  The degraded lens appears on a merged
        key iff any input carried it, weighted by degraded accesses --
        keys whose inputs never served degraded traffic keep the
        plain (pre-chaos) row shape.  Keys keep first-seen order
        across the inputs.
        """
        weights: dict[str, dict[str, float]] = {}
        degraded_seen: set[str] = set()
        for snapshot in snapshots:
            for key, row in snapshot.items():
                w = weights.setdefault(
                    key,
                    {
                        "accesses": 0.0,
                        "miss": 0.0,
                        "latency": 0.0,
                        "degraded_accesses": 0.0,
                        "degraded_miss": 0.0,
                    },
                )
                accesses = float(row.get("accesses", 0.0))
                w["accesses"] += accesses
                w["miss"] += row.get("miss_rate", 0.0) * accesses
                w["latency"] += row.get("latency_us", 0.0) * accesses
                if "degraded_accesses" in row:
                    degraded_seen.add(key)
                    served = float(row["degraded_accesses"])
                    w["degraded_accesses"] += served
                    w["degraded_miss"] += (
                        row.get("degraded_miss_rate", 0.0) * served
                    )
        total = sum(w["accesses"] for w in weights.values())
        merged: dict[str, dict[str, float]] = {}
        for key, w in weights.items():
            accesses = w["accesses"]
            merged[key] = {
                "miss_rate": (
                    w["miss"] / accesses if accesses else 0.0
                ),
                "latency_us": (
                    w["latency"] / accesses if accesses else 0.0
                ),
                "accesses": accesses,
                "traffic_share": (
                    accesses / total if total else 0.0
                ),
            }
            if key in degraded_seen:
                served = w["degraded_accesses"]
                merged[key]["degraded_accesses"] = served
                merged[key]["degraded_miss_rate"] = (
                    w["degraded_miss"] / served if served else 0.0
                )
        return merged

    @staticmethod
    def merge_event_timelines(
        *timelines: list[FailureEvent],
    ) -> list[FailureEvent]:
        """Interleave several instances' failure/recovery timelines.

        Events from all inputs are ordered by
        ``(chunk_index, key, kind)`` -- the logical clock first, so a
        cross-instance view (e.g. two service replicas watching the
        same fleet) pairs downs with ups in causal order and
        :meth:`recovery_latencies` computed over the merged list is
        meaningful.  The sort is stable, so same-tick events keep a
        deterministic order regardless of input order.
        """
        merged = [
            event for timeline in timelines for event in timeline
        ]
        merged.sort(
            key=lambda e: (e.chunk_index, e.key, e.kind)
        )
        return merged

"""Rolling per-shard / per-tenant serving metrics.

The serving loop records one :class:`~repro.cache.stats.CacheStats`
delta per key (shard or tenant) per chunk, reconstructed exactly from
the simulator's per-access outcome codes.  This module keeps a
bounded window of those deltas per key and derives the two numbers an
operator watches: the rolling miss rate and the rolling average
access time under the Table 1 :class:`~repro.hardware.latency.LatencyModel`.
"""

from __future__ import annotations

from collections import deque

from repro.cache.stats import CacheStats
from repro.hardware.latency import LatencyModel


class RollingMetrics:
    """Windowed metric aggregation keyed by shard/tenant label.

    Parameters
    ----------
    latency_model:
        Table 1 pricing model used for the latency view.
    window_chunks:
        Chunk deltas retained per key.
    """

    def __init__(
        self,
        latency_model: LatencyModel | None = None,
        window_chunks: int = 8,
    ) -> None:
        if window_chunks < 1:
            raise ValueError("window_chunks must be >= 1")
        self.latency_model = (
            latency_model if latency_model is not None else LatencyModel()
        )
        self.window_chunks = int(window_chunks)
        self._windows: dict[str, deque[CacheStats]] = {}
        self._totals: dict[str, CacheStats] = {}

    def record(self, key: str, stats: CacheStats) -> None:
        """Append one chunk's counter delta for ``key``."""
        window = self._windows.get(key)
        if window is None:
            window = deque(maxlen=self.window_chunks)
            self._windows[key] = window
            self._totals[key] = CacheStats()
        window.append(stats)
        self._totals[key] = self._totals[key].merge(stats)

    def keys(self) -> list[str]:
        """All keys seen so far, in first-seen order."""
        return list(self._windows)

    def window(self, key: str) -> CacheStats:
        """Merged counters over the rolling window of ``key``."""
        merged = CacheStats()
        for stats in self._windows.get(key, ()):
            merged = merged.merge(stats)
        return merged

    def total(self, key: str) -> CacheStats:
        """Merged counters over the whole run of ``key``."""
        return self._totals.get(key, CacheStats())

    def miss_rate(self, key: str) -> float:
        """Rolling miss rate of ``key``."""
        return self.window(key).miss_rate

    def latency_us(self, key: str) -> float:
        """Rolling Table 1 average access time of ``key``."""
        return self.latency_model.average_access_time_us(
            self.window(key)
        )

    def snapshot(self) -> dict[str, dict[str, float]]:
        """Rolling miss rate / latency / traffic share per key."""
        out: dict[str, dict[str, float]] = {}
        windows = {key: self.window(key) for key in self._windows}
        total_accesses = sum(
            window.accesses for window in windows.values()
        )
        for key, window in windows.items():
            out[key] = {
                "miss_rate": window.miss_rate,
                "latency_us": self.latency_model.average_access_time_us(
                    window
                ),
                "accesses": float(window.accesses),
                "traffic_share": (
                    window.accesses / total_accesses
                    if total_accesses
                    else 0.0
                ),
            }
        return out

"""Model refresh: fold recent traffic into the mixture and swap.

The paper trains the GMM offline and freezes it in the FPGA weight
buffer (Sec. 3.3); the hardware analogue of adapting to drift is a
periodic weight-buffer reload -- inference keeps running on the old
parameters until the new set is committed in one step.  This module
reproduces that split in software:

* :class:`ModelRefresher` is the *background stage*: it keeps a
  bounded buffer of recent chunk features and, on demand, folds them
  into an :class:`~repro.gmm.online.OnlineGmm` seeded from the
  currently-serving mixture (stepwise EM, bounded memory), then
  re-derives the admission threshold at the configured quantile of
  the refreshed scores.
* :class:`EngineSlot` is the *weight buffer*: the serving loop reads
  ``slot.engine`` at the top of every chunk, and a refresh replaces
  the whole engine reference in one assignment -- a chunk is scored
  entirely under one generation, never a mix.

The feature scaler is deliberately carried over from the deployed
engine: it is the fixed input-transform stage of the pipeline (the
hardware's address/timestamp mapping), and keeping it frozen is what
makes scores comparable across generations for the drift detector.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.engine import GmmPolicyEngine
from repro.gmm.online import OnlineGmm


class EngineSlot:
    """Atomic holder of the serving engine (weight-buffer analogue)."""

    def __init__(self, engine: GmmPolicyEngine) -> None:
        self._engine = engine
        self._generation = 0

    @property
    def engine(self) -> GmmPolicyEngine:
        """The currently-loaded engine."""
        return self._engine

    @property
    def generation(self) -> int:
        """Number of swaps since service start."""
        return self._generation

    def swap(self, engine: GmmPolicyEngine) -> int:
        """Install a new engine; returns the new generation."""
        self._engine = engine
        self._generation += 1
        return self._generation

    def __repr__(self) -> str:
        return (
            f"EngineSlot(generation={self._generation},"
            f" engine={self._engine!r})"
        )


class ModelRefresher:
    """Buffers recent features and builds refreshed engines.

    Parameters
    ----------
    buffer_chunks:
        Recent chunks of features retained (bounded memory).
    batch_size:
        Stepwise-EM mini-batch size for the fold-in.
    step_exponent:
        :class:`OnlineGmm` learning-rate exponent; lower adapts
        faster.
    threshold_quantile:
        Quantile of the refreshed scores at which the new admission
        threshold is cut.
    """

    def __init__(
        self,
        buffer_chunks: int = 6,
        batch_size: int = 2048,
        step_exponent: float = 0.6,
        threshold_quantile: float = 0.02,
    ) -> None:
        if buffer_chunks < 1:
            raise ValueError("buffer_chunks must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.batch_size = int(batch_size)
        self.step_exponent = float(step_exponent)
        self.threshold_quantile = float(threshold_quantile)
        self._buffer: deque[np.ndarray] = deque(maxlen=buffer_chunks)
        self.refreshes_built = 0

    def ingest(self, features: np.ndarray) -> None:
        """Retain one chunk of raw ``(N, 2)`` features."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != 2:
            raise ValueError("features must have shape (N, 2)")
        self._buffer.append(features)

    @property
    def buffered_samples(self) -> int:
        """Feature rows currently retained."""
        return sum(chunk.shape[0] for chunk in self._buffer)

    def build(self, current: GmmPolicyEngine) -> GmmPolicyEngine:
        """Fold the buffered traffic into ``current``'s mixture.

        Returns a fresh engine sharing the deployed scaler, with the
        stepwise-EM-updated mixture and a threshold re-cut at the
        configured quantile of the buffered traffic's new scores.
        """
        if not self._buffer:
            raise ValueError("no buffered features to refresh from")
        scaled = current.scaler.transform(
            np.concatenate(list(self._buffer))
        )
        online = OnlineGmm.from_model(
            current.model, step_exponent=self.step_exponent
        )
        for start in range(0, scaled.shape[0], self.batch_size):
            batch = scaled[start : start + self.batch_size]
            if batch.shape[0] > 0:
                online.update(batch)
        refreshed_scores = online.model.score_samples(scaled)
        threshold = float(
            np.quantile(refreshed_scores, self.threshold_quantile)
        )
        self.refreshes_built += 1
        return GmmPolicyEngine(
            model=online.model,
            scaler=current.scaler,
            admission_threshold=threshold,
        )

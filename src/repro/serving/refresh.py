"""Model refresh: fold recent traffic into the mixture and swap.

The paper trains the GMM offline and freezes it in the FPGA weight
buffer (Sec. 3.3); the hardware analogue of adapting to drift is a
periodic weight-buffer reload -- inference keeps running on the old
parameters until the new set is committed in one step.  This module
reproduces that split in software:

* :class:`ModelRefresher` is the *background stage*: it keeps a
  bounded buffer of recent chunk features and, on demand, folds them
  into an :class:`~repro.gmm.online.OnlineGmm` seeded from the
  currently-serving mixture (stepwise EM, bounded memory), then
  re-derives the admission threshold at the configured quantile of
  the refreshed scores.
* :class:`EngineSlot` is the *weight buffer*: the serving loop reads
  ``slot.engine`` at the top of every chunk, and a refresh replaces
  the whole engine reference in one assignment -- a chunk is scored
  entirely under one generation, never a mix.

The feature scaler is deliberately carried over from the deployed
engine: it is the fixed input-transform stage of the pipeline (the
hardware's address/timestamp mapping), and keeping it frozen is what
makes scores comparable across generations for the drift detector.
"""

from __future__ import annotations

import threading
from collections import deque

import numpy as np

from repro.core.config import REFRESH_MODES
from repro.core.engine import GmmPolicyEngine
from repro.gmm.em import EMTrainer, fast_log_score_samples
from repro.gmm.online import OnlineGmm

#: Sample budget of the warm fold-in's EM fit.  Refresh adapts an
#: already-trained mixture; a deterministic even-stride subsample of
#: the buffered traffic carries the drifted distribution at a
#: fraction of the per-iteration cost (mirroring the offline
#: pipeline's ``max_train_samples`` cap).
DEFAULT_MAX_FIT_SAMPLES = 8192


class StaleSwapError(RuntimeError):
    """A swap was attempted against an outdated generation.

    Raised when :meth:`EngineSlot.swap` is given an
    ``expected_generation`` that no longer matches -- i.e. another
    refresh committed between this builder's read and its swap.  The
    slot keeps the newer engine; the stale builder must re-read and
    rebuild.
    """


class EngineSlot:
    """Atomic holder of the serving engine (weight-buffer analogue).

    Reads and swaps are serialised by a lock, so a background refresh
    thread can never hand a reader a torn (engine, generation) pair,
    and the generation counter is strictly monotonic: a swap may pass
    the generation it built against (``expected_generation``) and the
    slot refuses the install -- :class:`StaleSwapError` -- if a newer
    engine landed in between, instead of silently rolling the
    service back onto an older mixture.
    """

    def __init__(self, engine: GmmPolicyEngine) -> None:
        self._engine = engine
        self._generation = 0
        self._lock = threading.Lock()

    @property
    def engine(self) -> GmmPolicyEngine:
        """The currently-loaded engine."""
        with self._lock:
            return self._engine

    @property
    def generation(self) -> int:
        """Number of swaps since service start."""
        with self._lock:
            return self._generation

    def read(self) -> tuple[GmmPolicyEngine, int]:
        """One consistent (engine, generation) pair."""
        with self._lock:
            return self._engine, self._generation

    def swap(
        self,
        engine: GmmPolicyEngine,
        expected_generation: int | None = None,
    ) -> int:
        """Install a new engine; returns the new generation.

        ``expected_generation`` is the generation the refresh was
        built against; passing it turns the swap into a
        compare-and-swap that fails (:class:`StaleSwapError`) rather
        than regress past an engine someone else installed first.
        """
        with self._lock:
            if (
                expected_generation is not None
                and expected_generation != self._generation
            ):
                raise StaleSwapError(
                    f"swap built against generation"
                    f" {expected_generation} but the slot is at"
                    f" {self._generation}"
                )
            self._engine = engine
            self._generation += 1
            return self._generation

    def __repr__(self) -> str:
        return (
            f"EngineSlot(generation={self._generation},"
            f" engine={self._engine!r})"
        )


def validate_engine(engine: GmmPolicyEngine) -> None:
    """Reject an engine with non-finite parameters.

    A corrupted refresh (chaos-injected or a genuinely diverged EM
    fold) must never reach the slot: every admission decision would
    compare against NaN and silently admit nothing (or everything).
    Raises :class:`ValueError` naming the first bad field.
    """
    if not np.isfinite(engine.admission_threshold):
        raise ValueError(
            "corrupted engine: non-finite admission_threshold"
        )
    model = engine.model
    for name in ("weights", "means", "covariances"):
        values = getattr(model, name, None)
        if values is not None and not np.all(np.isfinite(values)):
            raise ValueError(f"corrupted engine: non-finite {name}")


class ModelRefresher:
    """Buffers recent features and builds refreshed engines.

    Two fold-in modes:

    * ``"warm"`` (default) -- warm-started batch EM: the buffered
      traffic goes through :meth:`EMTrainer.fit` with the deployed
      mixture as the ``warm_start``, skipping seeding and restarts
      entirely and iterating the fused fast-path E+M pass a few
      times to (near) convergence on exactly the drifted
      distribution.  This is the refresh fast path: one blocked pass
      per EM iteration instead of one model rebuild per mini-batch.
    * ``"stepwise"`` -- the original stepwise-EM fold
      (Cappe & Moulines via :class:`OnlineGmm`): sequential
      mini-batches blended into exponentially-forgotten sufficient
      statistics.  Retains more of the pre-drift mixture; kept as
      the reference the training bench measures the warm path
      against.

    Parameters
    ----------
    buffer_chunks:
        Recent chunks of features retained (bounded memory).
    batch_size:
        Stepwise-EM mini-batch size for the fold-in.
    step_exponent:
        :class:`OnlineGmm` learning-rate exponent; lower adapts
        faster.
    threshold_quantile:
        Quantile of the refreshed scores at which the new admission
        threshold is cut.
    mode:
        Fold-in algorithm (see above).
    warm_max_iter / warm_tol:
        EM budget of the ``"warm"`` fold-in; a handful of iterations
        suffices because the deployed mixture is already a good
        starting point for the shifted traffic.
    max_fit_samples:
        Sample cap of the warm fold-in's EM fit (the admission
        threshold is still re-cut on the *full* buffered traffic).
    reg_covar:
        Covariance ridge shared by both fold-in modes.
    """

    def __init__(
        self,
        buffer_chunks: int = 6,
        batch_size: int = 2048,
        step_exponent: float = 0.6,
        threshold_quantile: float = 0.02,
        mode: str = "warm",
        warm_max_iter: int = 8,
        warm_tol: float = 1e-3,
        max_fit_samples: int = DEFAULT_MAX_FIT_SAMPLES,
        reg_covar: float = 1e-6,
    ) -> None:
        if buffer_chunks < 1:
            raise ValueError("buffer_chunks must be >= 1")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if mode not in REFRESH_MODES:
            raise ValueError(
                f"mode must be one of {REFRESH_MODES}, got {mode!r}"
            )
        if warm_max_iter < 1:
            raise ValueError("warm_max_iter must be >= 1")
        if max_fit_samples < 1:
            raise ValueError("max_fit_samples must be >= 1")
        self.max_fit_samples = int(max_fit_samples)
        self.batch_size = int(batch_size)
        self.step_exponent = float(step_exponent)
        self.threshold_quantile = float(threshold_quantile)
        self.mode = mode
        self.warm_max_iter = int(warm_max_iter)
        self.warm_tol = float(warm_tol)
        self.reg_covar = float(reg_covar)
        self._buffer: deque[np.ndarray] = deque(maxlen=buffer_chunks)
        self.refreshes_built = 0
        self.builds_attempted = 0

    def ingest(self, features: np.ndarray) -> None:
        """Retain one chunk of raw ``(N, 2)`` features."""
        features = np.asarray(features, dtype=np.float64)
        if features.ndim != 2 or features.shape[1] != 2:
            raise ValueError("features must have shape (N, 2)")
        self._buffer.append(features)

    @property
    def buffered_samples(self) -> int:
        """Feature rows currently retained."""
        return sum(chunk.shape[0] for chunk in self._buffer)

    def snapshot_features(self) -> np.ndarray | None:
        """One immutable copy of the buffered traffic, or ``None``.

        Off-critical-path builds must not read the live deque from a
        worker thread -- :meth:`ingest` keeps appending while the
        build runs, and a fold over a moving buffer would not be the
        fold the serving loop decided on.  The consumer snapshots on
        its own thread at submit time and hands the frozen array to
        :meth:`build_from`.
        """
        if not self._buffer:
            return None
        return np.concatenate(list(self._buffer))

    def build(self, current: GmmPolicyEngine) -> GmmPolicyEngine:
        """Fold the buffered traffic into ``current``'s mixture.

        Returns a fresh engine sharing the deployed scaler, with the
        refreshed mixture (warm-started EM or stepwise fold, per
        :attr:`mode`) and a threshold re-cut at the configured
        quantile of the buffered traffic's new scores.
        """
        return self.build_from(self.snapshot_features(), current)

    def build_from(
        self,
        features: np.ndarray | None,
        current: GmmPolicyEngine,
    ) -> GmmPolicyEngine:
        """:meth:`build` over a pre-taken feature snapshot.

        ``features`` is raw ``(N, 2)`` traffic (what
        :meth:`snapshot_features` returns); ``None`` or empty means
        there is nothing to fold and raises exactly like an
        empty-buffer :meth:`build` -- after counting the attempt, so
        the bookkeeping is identical on both entry points.
        """
        self.builds_attempted += 1
        if features is None or features.shape[0] == 0:
            raise ValueError("no buffered features to refresh from")
        scaled = current.scaler.transform(features)
        if self.mode == "warm":
            fit_points = scaled
            if scaled.shape[0] > self.max_fit_samples:
                # Deterministic even-stride subsample across the
                # whole buffer (every retained chunk contributes).
                index = np.linspace(
                    0,
                    scaled.shape[0] - 1,
                    self.max_fit_samples,
                ).astype(np.int64)
                fit_points = scaled[index]
            trainer = EMTrainer(
                n_components=current.model.n_components,
                max_iter=self.warm_max_iter,
                tol=self.warm_tol,
                reg_covar=self.reg_covar,
            )
            model = trainer.fit(
                fit_points, warm_start=current.model
            ).model
            # The quantile cut only needs score *ranks*; the fast
            # quadratic scorer agrees with the exact one far below
            # the threshold's resolution and keeps the recut off the
            # refresh critical path.
            refreshed_scores = np.exp(
                fast_log_score_samples(model, scaled)
            )
        else:
            online = OnlineGmm.from_model(
                current.model,
                step_exponent=self.step_exponent,
                reg_covar=self.reg_covar,
            )
            for start in range(0, scaled.shape[0], self.batch_size):
                batch = scaled[start : start + self.batch_size]
                if batch.shape[0] > 0:
                    online.update(batch)
            model = online.model
            refreshed_scores = model.score_samples(scaled)
        threshold = float(
            np.quantile(refreshed_scores, self.threshold_quantile)
        )
        self.refreshes_built += 1
        return GmmPolicyEngine(
            model=model,
            scaler=current.scaler,
            admission_threshold=threshold,
        )

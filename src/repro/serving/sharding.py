"""Sharded cache planes for the serving loop.

One logical DRAM cache is split into ``n_shards`` independent
:class:`~repro.cache.setassoc.SetAssociativeCache` planes so the
serving loop can simulate (and later, scale-out PRs can distribute)
them independently.  Two partitioning modes:

``hash`` -- *exact* set interleaving.  Global set ``s`` lives in
shard ``s % n_shards`` as local set ``s // n_shards``.  Because the
global set index is ``page % n_sets`` and ``n_shards`` divides
``n_sets``, this is equivalent to routing page ``p`` to shard
``p % n_shards`` with local tag ``p // n_shards``: two pages share a
(shard, local set, tag) exactly when they share a (global set, tag).
All simulator and policy state is per-set, so the union of the shard
planes behaves *bit-identically* to the unsharded cache -- the
property the serving equivalence test (and the acceptance bench)
asserts.

``tenant`` -- isolation partitioning.  Each tenant address partition
(``page // partition_pages``) owns one plane of ``1/n_shards`` of the
capacity.  This deliberately changes behaviour (no cross-tenant
interference), so it trades the exactness guarantee for isolation.
"""

from __future__ import annotations

import numpy as np

from repro.cache.setassoc import CacheGeometry, SetAssociativeCache
from repro.core.parallel import ParallelExecutor


class ShardedCachePlanes:
    """The shard planes plus the routing arithmetic.

    Parameters
    ----------
    geometry:
        The *logical* (total) cache geometry.
    n_shards:
        Number of planes; in ``hash`` mode it must divide the
        geometry's set count.
    mode:
        ``"hash"`` or ``"tenant"`` (see module docstring).
    partition_pages:
        Tenant partition stride (``tenant`` mode routing).
    executor:
        When the serving loop replays shards through a
        process-backend :class:`~repro.core.parallel.ParallelExecutor`,
        the planes must live in shared memory so workers mutate the
        same storage; passing the executor here routes allocation
        through :meth:`~repro.core.parallel.ParallelExecutor.make_cache`
        (a no-op for inline/thread execution).  Call :meth:`close`
        to release any shared segments.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        n_shards: int,
        mode: str = "hash",
        partition_pages: int = 1 << 20,
        executor: ParallelExecutor | None = None,
    ) -> None:
        if n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if mode not in ("hash", "tenant"):
            raise ValueError(f"unknown sharding mode {mode!r}")
        if partition_pages < 1:
            raise ValueError("partition_pages must be >= 1")
        if geometry.n_sets % n_shards != 0:
            raise ValueError(
                f"n_shards={n_shards} must divide the set count"
                f" ({geometry.n_sets}) so capacity splits evenly"
            )
        self.geometry = geometry
        self.n_shards = int(n_shards)
        self.mode = mode
        self.partition_pages = int(partition_pages)
        shard_geometry = CacheGeometry(
            capacity_bytes=geometry.capacity_bytes // n_shards,
            block_bytes=geometry.block_bytes,
            associativity=geometry.associativity,
        )
        self.shard_geometry = shard_geometry
        if executor is None:
            self.caches = [
                SetAssociativeCache(shard_geometry)
                for _ in range(n_shards)
            ]
            self.shared: list = [None] * n_shards
        else:
            self.caches = []
            self.shared = []
            for _ in range(n_shards):
                cache, handle = executor.make_cache(shard_geometry)
                self.caches.append(cache)
                self.shared.append(handle)

    def close(self) -> None:
        """Release any shared-memory segments backing the planes."""
        for handle in self.shared:
            if handle is not None:
                handle.close()
        self.shared = [None] * self.n_shards

    def route(
        self, pages: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-access ``(shard_id, local_page)`` arrays.

        ``hash`` mode divides the page by the shard count so the
        local page doubles as a collision-free tag (see module
        docstring); ``tenant`` mode keeps the global page (tags are
        unique within a tenant partition already).
        """
        pages = np.asarray(pages)
        if self.mode == "hash":
            shard_ids = pages % self.n_shards
            local_pages = pages // self.n_shards
        else:
            shard_ids = (
                pages // self.partition_pages
            ) % self.n_shards
            local_pages = pages
        return shard_ids, local_pages

    def partition(self, shard_ids: np.ndarray) -> list[np.ndarray]:
        """Positions per shard, preserving stream order within each.

        Order preservation matters: per-set access order is the only
        order the simulator is sensitive to, and every set lives in
        exactly one shard.
        """
        return [
            np.nonzero(shard_ids == shard)[0]
            for shard in range(self.n_shards)
        ]

    def occupancy(self) -> int:
        """Valid blocks across all planes."""
        return sum(cache.occupancy() for cache in self.caches)

    def __repr__(self) -> str:
        return (
            f"ShardedCachePlanes(n_shards={self.n_shards},"
            f" mode={self.mode!r},"
            f" shard_sets={self.shard_geometry.n_sets},"
            f" occupancy={self.occupancy()}/{self.geometry.n_blocks})"
        )

"""Pipelined serving front-end: producer, bounded queue, consumer.

The paper's deployment story is a cache controller that never stops
answering: the FPGA pipeline keeps scoring and serving while the host
retrains the mixture and reloads the weight buffer (ICGMM Sec. 4).
:class:`~repro.serving.service.IcgmmCacheService` reproduces every
*stage* of that loop but runs them strictly synchronously -- ingest,
score, simulate and refresh all serialize on one thread.  This module
adds the missing pipelining without touching the loop itself:

* a **producer stage** (:class:`ChunkProducer` -- the
  ``start``/``stop``/``collect`` workload-manager shape) that
  normalizes arbitrary trace windows into exact
  :attr:`~repro.core.config.ServingConfig.chunk_requests`-sized
  chunks and feeds them into
* a **bounded ingest queue** (:class:`IngestQueue`) with explicit
  backpressure accounting -- a full queue *blocks the producer*, it
  never drops or reorders a request -- drained by
* a **consumer stage** (:class:`ServingFrontend`) that drives the
  unchanged per-shard ``StagedPipeline`` replay through the service,
  one queue item per chunk, while
  :class:`~repro.serving.refresh.ModelRefresher` builds off the
  critical path (``ServingConfig.refresh_async``) and commits through
  the CAS :meth:`~repro.serving.refresh.EngineSlot.swap`.

Two modes, one exactness contract:

``deterministic``
    Producer and consumer interleave on a *logical clock*: the
    producer fills the queue until it refuses a put (each refusal is
    one accounted backpressure stall), the consumer drains exactly
    one chunk, repeat.  Single-threaded, so the chunk sequence the
    service sees is exactly the global
    ``chunk_requests``-chunking of the concatenated stream -- and
    because :meth:`IcgmmCacheService.ingest` cuts its input at the
    same boundaries, every per-chunk call is *byte-identical* to the
    plain synchronous loop over the same stream: same stats, same
    drift decisions, same telemetry snapshot digest, at any worker
    count, with or without chaos.  The parity suite in
    ``tests/serving/test_frontend.py`` asserts all of it.

``throughput``
    The producer runs on its own thread, the queue actually buffers,
    the consumer blocks only when the queue is empty, and refresh
    builds overlap serving.  Wall-clock enters the schedule, so this
    mode trades the digest guarantee for the headline number --
    gated in ``benchmarks/bench_serve_throughput.py`` (no request
    lost or reordered, refresh stall off the critical path).

The front-end publishes p50/p99 request-latency histograms and
queue/backpressure gauges through
:func:`repro.obs.bridge.register_frontend`; every family it touches
is flagged non-deterministic, and it records **no** tracer spans, so
an attached telemetry plane digests identically with and without the
front-end in deterministic mode.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.config import PIPELINE_MODES
from repro.obs.registry import exponential_edges
from repro.serving.metrics import RollingMetrics
from repro.serving.service import ChunkReport, IcgmmCacheService

#: Queue sentinel: the producer finished and the queue drained.
_CLOSED = object()

#: Request-latency bucket edges.  A request's latency is its chunk's
#: wall time (it waits for the whole batch), which at serving chunk
#: sizes runs three orders of magnitude past the telemetry layer's
#: per-access edges -- same exponential family, extended to ~8.4 s.
FRONTEND_LATENCY_EDGES_US = exponential_edges(0.0625, 2.0, 28)


class IngestQueue:
    """Bounded FIFO between the producer and consumer stages.

    Capacity is counted in *chunks* -- the unit the consumer drains --
    so the memory bound is ``capacity * chunk_requests`` requests.
    Two disciplines over one structure:

    * ``try_put``/``try_get`` never block; the deterministic
      interleave is built from them, so every counter below is a pure
      function of the stream length and the capacity.
    * ``put``/``get`` block (backpressure / starvation) and account
      the wall time they waited; the throughput pipeline uses them.

    A put refused or entered while the queue is full is one
    **backpressure stall** (:attr:`blocked_puts`); nothing is ever
    dropped or reordered -- zero-loss is structural, and the bench
    gate re-asserts it end to end.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = int(capacity)
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._aborted = False
        self.puts = 0
        self.gets = 0
        self.blocked_puts = 0
        self.max_depth = 0
        self.producer_wait_s = 0.0
        self.consumer_wait_s = 0.0

    @property
    def depth(self) -> int:
        """Chunks currently buffered."""
        return len(self._items)

    def _append(self, item) -> None:
        self._items.append(item)
        self.puts += 1
        if len(self._items) > self.max_depth:
            self.max_depth = len(self._items)
        self._cond.notify_all()

    def try_put(self, item) -> bool:
        """Non-blocking put; False (one stall counted) when full."""
        with self._cond:
            if self._closed:
                raise RuntimeError("put on a closed IngestQueue")
            if len(self._items) >= self.capacity:
                self.blocked_puts += 1
                return False
            self._append(item)
            return True

    def put(self, item) -> bool:
        """Blocking put; False only if the queue was aborted."""
        with self._cond:
            if self._closed:
                raise RuntimeError("put on a closed IngestQueue")
            if self._aborted:
                return False
            if len(self._items) >= self.capacity:
                self.blocked_puts += 1
                started = time.perf_counter()
                while (
                    len(self._items) >= self.capacity
                    and not self._aborted
                ):
                    self._cond.wait(0.05)
                self.producer_wait_s += (
                    time.perf_counter() - started
                )
                if self._aborted:
                    return False
            self._append(item)
            return True

    def try_get(self):
        """Non-blocking get; ``None`` when nothing is buffered."""
        with self._cond:
            if not self._items:
                return None
            item = self._items.popleft()
            self.gets += 1
            self._cond.notify_all()
            return item

    def get(self):
        """Blocking get; the :data:`_CLOSED` sentinel once the
        producer closed the queue and it drained."""
        with self._cond:
            if not self._items and not self._closed:
                started = time.perf_counter()
                while not self._items and not self._closed:
                    self._cond.wait(0.05)
                self.consumer_wait_s += (
                    time.perf_counter() - started
                )
            if self._items:
                item = self._items.popleft()
                self.gets += 1
                self._cond.notify_all()
                return item
            return _CLOSED

    def close(self) -> None:
        """Producer side is done; wakes any blocked consumer."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def abort(self) -> None:
        """Unblock a stuck producer (consumer bailed out early)."""
        with self._cond:
            self._aborted = True
            self._cond.notify_all()

    def counters(self) -> dict:
        """Accounting snapshot (logical counts + wall wait times)."""
        return {
            "capacity": self.capacity,
            "puts": self.puts,
            "gets": self.gets,
            "blocked_puts": self.blocked_puts,
            "max_depth": self.max_depth,
            "producer_wait_s": self.producer_wait_s,
            "consumer_wait_s": self.consumer_wait_s,
        }

    def __repr__(self) -> str:
        return (
            f"IngestQueue(depth={self.depth},"
            f" capacity={self.capacity},"
            f" blocked_puts={self.blocked_puts})"
        )


def _chunk_stream(windows, chunk_requests: int):
    """Re-chunk arbitrary ``(pages, is_write)`` windows exactly.

    Yields chunks of exactly ``chunk_requests`` requests (the last
    one may be short), carrying a remainder buffer across window
    boundaries -- so the chunk sequence is the *global* chunking of
    the concatenated stream, independent of how the trace reader
    happened to slice it.  That normalization is what makes the
    front-end byte-identical to one big ``service.ingest`` call.
    """
    if chunk_requests < 1:
        raise ValueError("chunk_requests must be >= 1")
    buf_pages: deque[np.ndarray] = deque()
    buf_write: deque[np.ndarray] = deque()
    buffered = 0
    for pages, is_write in windows:
        pages = np.asarray(pages, dtype=np.int64)
        is_write = np.asarray(is_write, dtype=bool)
        if pages.shape != is_write.shape or pages.ndim != 1:
            raise ValueError(
                "windows must yield 1-D (pages, is_write) pairs of"
                " equal length"
            )
        if pages.shape[0] == 0:
            continue
        buf_pages.append(pages)
        buf_write.append(is_write)
        buffered += pages.shape[0]
        while buffered >= chunk_requests:
            yield _take(buf_pages, buf_write, chunk_requests)
            buffered -= chunk_requests
    if buffered:
        yield _take(buf_pages, buf_write, buffered)


def _take(
    buf_pages: deque, buf_write: deque, count: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pop exactly ``count`` requests off the carry buffers."""
    take_pages: list[np.ndarray] = []
    take_write: list[np.ndarray] = []
    need = count
    while need:
        pages, is_write = buf_pages[0], buf_write[0]
        if pages.shape[0] <= need:
            take_pages.append(pages)
            take_write.append(is_write)
            need -= pages.shape[0]
            buf_pages.popleft()
            buf_write.popleft()
        else:
            take_pages.append(pages[:need])
            take_write.append(is_write[:need])
            buf_pages[0] = pages[need:]
            buf_write[0] = is_write[need:]
            need = 0
    if len(take_pages) == 1:
        return take_pages[0], take_write[0]
    return np.concatenate(take_pages), np.concatenate(take_write)


class ChunkProducer:
    """Threaded producer stage with a start/stop/collect lifecycle.

    The workload-manager shape (SREGym's generators, hopperkv's
    replay engines): :meth:`start` launches the feed on its own
    thread, :meth:`stop` requests an early halt and joins, and
    :meth:`collect` returns what was produced.  The thread pushes
    re-chunked trace windows through the bounded queue with blocking
    puts -- backpressure from a slow consumer stalls *production*,
    never loses a request -- and closes the queue when the stream (or
    an early stop) ends, which is the consumer's end-of-stream
    signal.
    """

    def __init__(self, chunks, queue: IngestQueue) -> None:
        self._chunks = iter(chunks)
        self.queue = queue
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self.produced_chunks = 0
        self.produced_requests = 0
        self.error: BaseException | None = None

    def start(self) -> None:
        """Launch the producer thread (once)."""
        if self._thread is not None:
            raise RuntimeError("producer already started")
        self._thread = threading.Thread(
            target=self._run,
            name="repro-frontend-producer",
            daemon=True,
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            for pages, is_write in self._chunks:
                if self._stop.is_set():
                    break
                if not self.queue.put((pages, is_write)):
                    break  # consumer aborted the queue
                self.produced_chunks += 1
                self.produced_requests += int(pages.shape[0])
        except BaseException as exc:  # noqa: BLE001 - reported via collect
            self.error = exc
        finally:
            self.queue.close()

    def stop(self) -> None:
        """Request an early halt and join the thread (idempotent)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join()
            self._thread = None

    def collect(self) -> dict:
        """Production counters (call after the run drains)."""
        out = {
            "chunks": self.produced_chunks,
            "requests": self.produced_requests,
            "stopped_early": self._stop.is_set(),
        }
        if self.error is not None:
            out["error"] = repr(self.error)
        return out


@dataclass
class FrontendReport:
    """What one front-end run did, end to end.

    ``produced_* == consumed_*`` is the zero-loss invariant (gated in
    the bench); ``reports`` carries the service's own per-chunk
    reports in consumption order, so downstream comparisons against a
    synchronous run need no extra bookkeeping.
    """

    mode: str
    chunk_requests: int
    queue: dict
    producer: dict
    consumed_chunks: int
    consumed_requests: int
    reports: list[ChunkReport] = field(default_factory=list)
    latency_p50_us: float | None = None
    latency_p99_us: float | None = None
    ingest_wait_s: float = 0.0
    refresh_overlap_chunks: int = 0
    drained_swap: bool = False
    monitor: dict | None = None

    @property
    def produced_chunks(self) -> int:
        return int(self.producer["chunks"])

    @property
    def produced_requests(self) -> int:
        return int(self.producer["requests"])

    @property
    def backpressure_stalls(self) -> int:
        return int(self.queue["blocked_puts"])

    def as_dict(self) -> dict:
        """JSON-ready view (chunk reports summarised, not dumped)."""
        return {
            "mode": self.mode,
            "chunk_requests": self.chunk_requests,
            "queue": dict(self.queue),
            "producer": dict(self.producer),
            "consumed_chunks": self.consumed_chunks,
            "consumed_requests": self.consumed_requests,
            "latency_p50_us": self.latency_p50_us,
            "latency_p99_us": self.latency_p99_us,
            "ingest_wait_s": self.ingest_wait_s,
            "refresh_overlap_chunks": self.refresh_overlap_chunks,
            "drained_swap": self.drained_swap,
            "monitor": self.monitor,
        }


class ServingFrontend:
    """Producer/queue/consumer pipeline over an existing service.

    Parameters
    ----------
    service:
        The (already configured) :class:`IcgmmCacheService` the
        consumer stage drives.  The front-end never reaches into the
        chunk loop -- it only decides *when* ``ingest`` runs and with
        which exact-size chunk.
    mode:
        ``"deterministic"`` or ``"throughput"``; defaults to
        :attr:`ServingConfig.pipeline` (``"off"`` is rejected here --
        it means *don't build a front-end*, the disabled-parity
        contract the CLI enforces).
    queue_chunks:
        Ingest-queue capacity override (defaults to
        :attr:`ServingConfig.ingest_queue_chunks`).
    monitor:
        Optional observe-only
        :class:`~repro.serving.health.FleetHealthMonitor` over the
        service's shards (device id = shard id).  It is fed the
        *priced* deterministic per-shard chunk times -- never
        wall-clock -- so its decision digest is bit-identical across
        modes and worker counts, and nothing it decides feeds back
        into serving (no re-homing; shards are not a fabric).
    """

    def __init__(
        self,
        service: IcgmmCacheService,
        mode: str | None = None,
        queue_chunks: int | None = None,
        monitor=None,
    ) -> None:
        resolved = (
            mode if mode is not None else service.serving.pipeline
        )
        if resolved not in PIPELINE_MODES:
            raise ValueError(
                f"mode must be one of {PIPELINE_MODES},"
                f" got {resolved!r}"
            )
        if resolved == "off":
            raise ValueError(
                "pipeline mode 'off' means calling service.ingest"
                " directly; build no front-end"
            )
        if resolved == "deterministic" and service.serving.refresh_async:
            raise ValueError(
                "refresh_async breaks the deterministic pipeline's"
                " byte-parity contract; use mode='throughput'"
            )
        self.service = service
        self.mode = resolved
        self.queue_chunks = int(
            queue_chunks
            if queue_chunks is not None
            else service.serving.ingest_queue_chunks
        )
        if self.queue_chunks < 1:
            raise ValueError("queue_chunks must be >= 1")
        self.monitor = monitor
        #: Request-latency accounting (fixed telemetry edges, so the
        #: bridge republished the histogram bucket-for-bucket).
        self.request_metrics = RollingMetrics(
            service.shard_metrics.latency_model,
            window_chunks=service.serving.metrics_window_chunks,
            latency_edges_us=FRONTEND_LATENCY_EDGES_US,
        )
        self.queue: IngestQueue | None = None
        self.consumed_chunks = 0
        self.consumed_requests = 0
        self._reports: list[ChunkReport] = []
        self._monitor_seen: dict[int, int] = {}
        if service.telemetry is not None:
            from repro.obs import bridge

            bridge.register_frontend(
                service.telemetry.registry, self
            )

    # ------------------------------------------------------------------
    # Consumer stage
    # ------------------------------------------------------------------
    def _consume(
        self, pages: np.ndarray, is_write: np.ndarray
    ) -> list[ChunkReport]:
        """Drive one exact-size chunk through the unchanged service."""
        started = time.perf_counter()
        reports = self.service.ingest(pages, is_write)
        elapsed_us = (time.perf_counter() - started) * 1e6
        self.consumed_chunks += len(reports)
        self._reports.extend(reports)
        for report in reports:
            self.consumed_requests += report.accesses
            if report.accesses:
                self.request_metrics.observe_latency(
                    "request", elapsed_us, count=report.accesses
                )
            if self.monitor is not None:
                self._feed_monitor(report)
        return reports

    def _feed_monitor(self, report: ChunkReport) -> None:
        """Observe-only monitor feed with deterministic pricing.

        Per-shard chunk deltas come straight off the service's
        rolling windows (``last``), priced under the Table 1 model --
        a pure function of the counters, so an attached monitor
        changes *nothing* about the run (parity-tested) while its
        decision log stays comparable across modes and worker counts.
        """
        metrics = self.service.shard_metrics
        for shard in range(self.service.serving.n_shards):
            key = f"shard:{shard}"
            total = metrics.total(key).accesses
            if total == self._monitor_seen.get(shard, 0):
                continue
            self._monitor_seen[shard] = total
            delta = metrics.last(key)
            if delta is None or delta.accesses == 0:
                continue
            time_ns = int(
                round(
                    metrics.latency_model.average_access_time_us(
                        delta
                    )
                    * delta.accesses
                    * 1_000.0
                )
            )
            self.monitor.observe(shard, delta, time_ns)
        self.monitor.step(report.chunk_index)

    # ------------------------------------------------------------------
    # The two schedules
    # ------------------------------------------------------------------
    def _run_deterministic(self, chunks) -> dict:
        """Fixed logical-clock interleave (single-threaded).

        Producer turn: fill the queue until a put is refused (one
        accounted stall) or the stream runs dry.  Consumer turn:
        drain exactly one chunk.  Repeat until both are exhausted.
        Every queue counter is a pure function of (stream length,
        capacity) -- asserted by the backpressure-determinism test.
        """
        queue = self.queue
        stream = iter(chunks)
        pending = None
        produced_chunks = 0
        produced_requests = 0
        exhausted = False
        while True:
            while not exhausted:
                if pending is None:
                    pending = next(stream, _CLOSED)
                    if pending is _CLOSED:
                        pending = None
                        exhausted = True
                        break
                if queue.try_put(pending):
                    produced_chunks += 1
                    produced_requests += int(pending[0].shape[0])
                    pending = None
                else:
                    break
            item = queue.try_get()
            if item is None:
                break
            self._consume(*item)
        queue.close()
        return {
            "chunks": produced_chunks,
            "requests": produced_requests,
            "stopped_early": False,
        }

    def _run_throughput(self, chunks) -> tuple[dict, bool]:
        """Free-running producer thread + blocking consumer."""
        queue = self.queue
        producer = ChunkProducer(chunks, queue)
        producer.start()
        try:
            while True:
                item = queue.get()
                if item is _CLOSED:
                    break
                self._consume(*item)
        except BaseException:
            queue.abort()
            raise
        finally:
            producer.stop()
        # A refresh still building at end-of-stream gets to land (and
        # its off-path seconds get accounted) instead of being
        # silently discarded at close.
        drained = self.service.drain_refresh()
        if producer.error is not None:
            raise producer.error
        profiler = self.service.pipeline.profiler
        if profiler is not None and self.consumed_chunks:
            profiler.add(
                "ingest.wait",
                queue.consumer_wait_s,
                calls=self.consumed_chunks,
            )
        return producer.collect(), drained

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def run(self, windows) -> FrontendReport:
        """Pipeline ``windows`` of ``(pages, is_write)`` end to end.

        Windows may be any sizes (streaming-CSV chunks, whole
        in-memory traces, synthetic generators); the producer
        re-chunks them to the service's global chunk boundaries.
        Returns a :class:`FrontendReport`; the per-chunk
        :class:`ChunkReport` list inside is exactly what the
        equivalent synchronous ``service.ingest`` calls would have
        returned.
        """
        self.queue = IngestQueue(self.queue_chunks)
        self.consumed_chunks = 0
        self.consumed_requests = 0
        chunks = _chunk_stream(
            windows, self.service.serving.chunk_requests
        )
        reports_before = len(self._reports)
        drained = False
        if self.mode == "deterministic":
            producer = self._run_deterministic(chunks)
        else:
            producer, drained = self._run_throughput(chunks)
        report = FrontendReport(
            mode=self.mode,
            chunk_requests=self.service.serving.chunk_requests,
            queue=self.queue.counters(),
            producer=producer,
            consumed_chunks=self.consumed_chunks,
            consumed_requests=self.consumed_requests,
            reports=self._reports[reports_before:],
            latency_p50_us=self.request_metrics.latency_p50(
                "request"
            ),
            latency_p99_us=self.request_metrics.latency_p99(
                "request"
            ),
            ingest_wait_s=self.queue.consumer_wait_s,
            refresh_overlap_chunks=(
                self.service.refresh_overlap_chunks
            ),
            drained_swap=drained,
            monitor=(
                self.monitor.summary()
                if self.monitor is not None
                else None
            ),
        )
        return report

    def __repr__(self) -> str:
        return (
            f"ServingFrontend(mode={self.mode!r},"
            f" queue_chunks={self.queue_chunks},"
            f" consumed_chunks={self.consumed_chunks})"
        )


__all__ = [
    "ChunkProducer",
    "FrontendReport",
    "IngestQueue",
    "ServingFrontend",
]

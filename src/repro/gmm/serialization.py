"""Persistence for trained mixtures.

The FPGA flow trains the GMM offline and loads the parameters into an
on-board weight buffer once before the kernel starts (Fig. 5).  These
helpers are the software analogue: dump the (weights, means,
covariances) triple to a dict or an ``.npz`` file and restore it.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.gmm.model import GaussianMixture

#: Schema version written into every blob, so stale files fail loudly.
_FORMAT_VERSION = 1


def gmm_to_dict(model: GaussianMixture) -> dict:
    """Serialise a mixture to a plain dict of numpy arrays."""
    return {
        "format_version": _FORMAT_VERSION,
        "weights": model.weights,
        "means": model.means,
        "covariances": model.covariances,
    }


def gmm_from_dict(blob: dict) -> GaussianMixture:
    """Reconstruct a mixture from :func:`gmm_to_dict` output.

    Raises
    ------
    ValueError
        If the blob is missing keys or carries an unknown version.
    """
    version = int(blob.get("format_version", -1))
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported GMM blob version {version},"
            f" expected {_FORMAT_VERSION}"
        )
    missing = {"weights", "means", "covariances"} - set(blob)
    if missing:
        raise ValueError(f"GMM blob missing keys: {sorted(missing)}")
    return GaussianMixture(
        weights=np.asarray(blob["weights"]),
        means=np.asarray(blob["means"]),
        covariances=np.asarray(blob["covariances"]),
    )


def save_gmm(model: GaussianMixture, path: str | Path) -> None:
    """Write a mixture to an ``.npz`` file at ``path``."""
    blob = gmm_to_dict(model)
    np.savez(
        Path(path),
        format_version=np.asarray(blob["format_version"]),
        weights=blob["weights"],
        means=blob["means"],
        covariances=blob["covariances"],
    )


def load_gmm(path: str | Path) -> GaussianMixture:
    """Load a mixture previously written by :func:`save_gmm`."""
    with np.load(Path(path)) as data:
        blob = {key: data[key] for key in data.files}
    return gmm_from_dict(blob)

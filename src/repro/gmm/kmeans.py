"""k-means clustering used to initialise EM.

EM for mixtures is sensitive to initialisation; the standard recipe
(k-means++ seeding followed by a few Lloyd iterations, then moments per
cluster) is what we use to start the trainer in :mod:`repro.gmm.em`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centers:
        Cluster centers, shape ``(K, D)``.
    labels:
        Index of the closest center per point, shape ``(N,)``.
    inertia:
        Sum of squared distances of points to their assigned center.
    n_iter:
        Number of Lloyd iterations executed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(N, K)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed without the NxKxD
    # intermediate that a broadcast subtraction would allocate.
    x_sq = np.sum(points * points, axis=1)[:, None]
    c_sq = np.sum(centers * centers, axis=1)[None, :]
    cross = points @ centers.T
    distances = x_sq - 2.0 * cross + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_plus_plus_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose ``n_clusters`` seeds with the k-means++ D^2 weighting.

    Parameters
    ----------
    points:
        Data of shape ``(N, D)`` with ``N >= n_clusters``.
    n_clusters:
        Number of seeds to draw.
    rng:
        Source of randomness; passing the generator explicitly keeps
        every experiment in the repository reproducible.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if n < n_clusters:
        raise ValueError(
            f"need at least n_clusters={n_clusters} points, got {n}"
        )
    centers = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = _squared_distances(points, centers[:1])[:, 0]
    for i in range(1, n_clusters):
        total = float(np.sum(closest_sq))
        if total <= 0.0:
            # All points coincide with chosen centers; fall back to
            # uniform sampling so we still return K seeds.
            idx = int(rng.integers(n))
        else:
            probabilities = closest_sq / total
            idx = int(rng.choice(n, p=probabilities))
        centers[i] = points[idx]
        new_sq = _squared_distances(points, centers[i : i + 1])[:, 0]
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    max_iter: int = 30,
    tol: float = 1e-6,
) -> KMeansResult:
    """Run k-means++ seeding followed by Lloyd iterations.

    Empty clusters are re-seeded to the point currently farthest from
    its assigned center, which keeps all ``K`` clusters alive -- EM
    initialisation needs a moment estimate for every component.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = kmeans_plus_plus_init(points, n_clusters, rng)
    labels = np.zeros(points.shape[0], dtype=np.int64)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        distances = _squared_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        new_inertia = float(np.sum(distances[np.arange(len(labels)), labels]))
        new_centers = np.empty_like(centers)
        farthest = np.argsort(
            -distances[np.arange(len(labels)), labels]
        )
        spare = 0
        for j in range(n_clusters):
            members = points[labels == j]
            if len(members) == 0:
                new_centers[j] = points[farthest[spare]]
                spare += 1
            else:
                new_centers[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        converged = shift <= tol or abs(inertia - new_inertia) <= tol
        inertia = new_inertia
        if converged:
            break
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, n_iter=n_iter
    )

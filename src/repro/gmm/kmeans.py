"""k-means clustering used to initialise EM.

EM for mixtures is sensitive to initialisation; the standard recipe
(k-means++ seeding followed by a few Lloyd iterations, then moments per
cluster) is what we use to start the trainer in :mod:`repro.gmm.em`.

Two implementations live here:

* :func:`kmeans` / :func:`kmeans_plus_plus_init` -- the reference:
  sequential D^2 sampling through ``rng.choice`` and a per-cluster
  Python loop in the Lloyd update.  Kept as the executable
  specification (and the baseline the training-throughput bench
  measures against).
* :func:`kmeans_fast` / :func:`kmeans_plus_plus_fast` -- the
  vectorized path the EM trainer seeds from by default: greedy
  k-means++ (a handful of candidates per step, drawn by D^2
  inverse-CDF sampling and scored by the resulting potential on a
  bounded subsample) followed by Lloyd iterations whose per-cluster
  means come from ``bincount`` accumulations instead of one boolean
  mask per cluster.  Both stages run on a size-capped subsample of
  the points -- an *initialisation* for EM needs well-spread moment
  estimates, not a converged clustering -- and the final labelling
  assigns every point once, reseeding any cluster that came back
  empty so EM always starts with ``K`` live components.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Point budget for the fast path's seeding/Lloyd subsample and for
#: scoring greedy k-means++ candidates.  Above this the subsample is
#: a uniform draw without replacement (deterministic under the
#: caller's rng).
DEFAULT_SAMPLE_CAP = 8192


@dataclass(frozen=True)
class KMeansResult:
    """Outcome of a k-means run.

    Attributes
    ----------
    centers:
        Cluster centers, shape ``(K, D)``.
    labels:
        Index of the closest center per point, shape ``(N,)``.
    inertia:
        Sum of squared distances of points to their assigned center.
    n_iter:
        Number of Lloyd iterations executed.
    """

    centers: np.ndarray
    labels: np.ndarray
    inertia: float
    n_iter: int


def _squared_distances(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Pairwise squared Euclidean distances, shape ``(N, K)``."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2, computed without the NxKxD
    # intermediate that a broadcast subtraction would allocate.
    x_sq = np.sum(points * points, axis=1)[:, None]
    c_sq = np.sum(centers * centers, axis=1)[None, :]
    cross = points @ centers.T
    distances = x_sq - 2.0 * cross + c_sq
    np.maximum(distances, 0.0, out=distances)
    return distances


def kmeans_plus_plus_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """Choose ``n_clusters`` seeds with the k-means++ D^2 weighting.

    Parameters
    ----------
    points:
        Data of shape ``(N, D)`` with ``N >= n_clusters``.
    n_clusters:
        Number of seeds to draw.
    rng:
        Source of randomness; passing the generator explicitly keeps
        every experiment in the repository reproducible.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if n < n_clusters:
        raise ValueError(
            f"need at least n_clusters={n_clusters} points, got {n}"
        )
    centers = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = _squared_distances(points, centers[:1])[:, 0]
    for i in range(1, n_clusters):
        total = float(np.sum(closest_sq))
        if total <= 0.0:
            # All points coincide with chosen centers; fall back to
            # uniform sampling so we still return K seeds.
            idx = int(rng.integers(n))
        else:
            probabilities = closest_sq / total
            idx = int(rng.choice(n, p=probabilities))
        centers[i] = points[idx]
        new_sq = _squared_distances(points, centers[i : i + 1])[:, 0]
        np.minimum(closest_sq, new_sq, out=closest_sq)
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    max_iter: int = 30,
    tol: float = 1e-6,
) -> KMeansResult:
    """Run k-means++ seeding followed by Lloyd iterations.

    Empty clusters are re-seeded to the point currently farthest from
    its assigned center, which keeps all ``K`` clusters alive -- EM
    initialisation needs a moment estimate for every component.
    """
    points = np.asarray(points, dtype=np.float64)
    centers = kmeans_plus_plus_init(points, n_clusters, rng)
    labels = np.zeros(points.shape[0], dtype=np.int64)
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        distances = _squared_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        new_inertia = float(np.sum(distances[np.arange(len(labels)), labels]))
        new_centers = np.empty_like(centers)
        farthest = np.argsort(
            -distances[np.arange(len(labels)), labels]
        )
        spare = 0
        for j in range(n_clusters):
            members = points[labels == j]
            if len(members) == 0:
                new_centers[j] = points[farthest[spare]]
                spare += 1
            else:
                new_centers[j] = members.mean(axis=0)
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        converged = shift <= tol or abs(inertia - new_inertia) <= tol
        inertia = new_inertia
        if converged:
            break
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, n_iter=n_iter
    )


def kmeans_plus_plus_fast(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    n_candidates: int | None = None,
) -> np.ndarray:
    """Greedy k-means++ seeding, fully vectorized.

    Per step, ``n_candidates`` seeds are drawn by D^2 sampling
    (inverse-CDF over the running closest-distance array -- no
    ``rng.choice(p=...)``, whose per-call CDF build dominated the
    reference seeding) and the candidate whose adoption leaves the
    smallest total potential wins.  Greedy candidate selection is
    the standard quality upgrade over single-draw k-means++ (it is
    what scikit-learn ships); the default candidate count follows
    the same ``2 + log K`` rule.  :func:`kmeans_fast` bounds the
    O(N * candidates) scoring cost by calling this on a size-capped
    subsample.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n_clusters < 1:
        raise ValueError(f"n_clusters must be >= 1, got {n_clusters}")
    if n < n_clusters:
        raise ValueError(
            f"need at least n_clusters={n_clusters} points, got {n}"
        )
    if n_candidates is None:
        n_candidates = 2 + int(np.log(n_clusters))
    centers = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = _squared_distances(points, centers[:1])[:, 0]
    for i in range(1, n_clusters):
        total = float(np.sum(closest_sq))
        if total <= 0.0:
            # All points coincide with chosen centers: any index works.
            candidates = np.asarray([int(rng.integers(n))])
        else:
            draws = rng.random(n_candidates) * total
            candidates = np.searchsorted(
                np.cumsum(closest_sq), draws
            )
            np.minimum(candidates, n - 1, out=candidates)
        cand_sq = _squared_distances(
            points, points[candidates]
        )  # (N, L)
        potential = np.minimum(
            closest_sq[:, None], cand_sq
        ).sum(axis=0)
        best = int(np.argmin(potential))
        centers[i] = points[candidates[best]]
        np.minimum(closest_sq, cand_sq[:, best], out=closest_sq)
    return centers


def _lloyd_fast(
    points: np.ndarray,
    centers: np.ndarray,
    max_iter: int,
    tol: float,
) -> tuple[np.ndarray, int]:
    """Lloyd iterations with bincount-accumulated cluster means.

    Replaces the reference update's per-cluster boolean-mask loop
    (O(N * K) mask evaluations per iteration) with one ``bincount``
    per feature dimension.  Empty clusters are re-seeded to the
    points currently farthest from their assigned centers, the same
    rule as the reference.
    """
    n_clusters, d = centers.shape
    inertia = np.inf
    n_iter = 0
    for n_iter in range(1, max_iter + 1):
        distances = _squared_distances(points, centers)
        labels = np.argmin(distances, axis=1)
        assigned = distances[np.arange(labels.shape[0]), labels]
        new_inertia = float(assigned.sum())
        counts = np.bincount(labels, minlength=n_clusters)
        new_centers = np.empty_like(centers)
        for j in range(d):
            new_centers[:, j] = np.bincount(
                labels, weights=points[:, j], minlength=n_clusters
            )
        new_centers /= np.maximum(counts, 1)[:, None]
        empty = np.nonzero(counts == 0)[0]
        if empty.size:
            farthest = np.argsort(-assigned)
            new_centers[empty] = points[farthest[: empty.size]]
        shift = float(np.max(np.abs(new_centers - centers)))
        centers = new_centers
        converged = shift <= tol or abs(inertia - new_inertia) <= tol
        inertia = new_inertia
        if converged:
            break
    return centers, n_iter


def kmeans_fast(
    points: np.ndarray,
    n_clusters: int,
    rng: np.random.Generator,
    max_iter: int = 30,
    tol: float = 1e-6,
    sample_cap: int = DEFAULT_SAMPLE_CAP,
) -> KMeansResult:
    """Vectorized k-means for EM initialisation.

    Greedy k-means++ seeding plus bincount-Lloyd, both on a
    ``sample_cap``-bounded subsample, then one full-data assignment
    pass.  Any cluster left empty by the final assignment is patched
    with the points farthest from their assigned center (one point
    per empty cluster, farthest first), so every cluster has at
    least one member -- the property EM initialisation relies on.

    Deterministic given ``rng``; *not* numerically identical to the
    reference :func:`kmeans` (different sampling and summation
    order), which stays available as the executable specification.
    """
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n < n_clusters:
        raise ValueError(
            f"need at least n_clusters={n_clusters} points, got {n}"
        )
    if sample_cap < n_clusters:
        sample_cap = n_clusters
    if n > sample_cap:
        sample = points[
            np.sort(rng.choice(n, size=sample_cap, replace=False))
        ]
    else:
        sample = points
    centers = kmeans_plus_plus_fast(sample, n_clusters, rng)
    centers, n_iter = _lloyd_fast(sample, centers, max_iter, tol)
    distances = _squared_distances(points, centers)
    labels = np.argmin(distances, axis=1)
    assigned = distances[np.arange(n), labels]
    counts = np.bincount(labels, minlength=n_clusters)
    empty = np.nonzero(counts == 0)[0]
    if empty.size:
        # Reassign the farthest points, but only from donor clusters
        # that keep at least one member afterwards -- stealing a
        # singleton cluster's only point would just move the hole.
        farthest = np.argsort(-assigned)
        counts = counts.copy()
        cursor = 0
        for j in empty:
            while counts[labels[farthest[cursor]]] <= 1:
                cursor += 1
            member = farthest[cursor]
            cursor += 1
            counts[labels[member]] -= 1
            counts[j] += 1
            labels[member] = j
            centers[j] = points[member]
            assigned[member] = 0.0
    inertia = float(assigned.sum())
    return KMeansResult(
        centers=centers, labels=labels, inertia=inertia, n_iter=n_iter
    )

"""Model selection for the mixture size K.

The paper fixes K = 256 without justification; the principled way to
choose K is an information criterion.  BIC penalises parameters by
``log N`` (consistent -- recovers the true K asymptotically), AIC by 2
(better predictive fit for small samples).  The K ablation bench uses
the miss rate directly; these criteria give the statistical view and
are what a practitioner would run before committing an engine size to
hardware.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gmm.em import EMTrainer
from repro.gmm.model import GaussianMixture


def bic(model: GaussianMixture, points: np.ndarray) -> float:
    """Bayesian information criterion (lower is better)."""
    points = np.asarray(points, dtype=np.float64)
    n = points.shape[0]
    if n == 0:
        raise ValueError("points must not be empty")
    total_ll = float(np.sum(model.log_score_samples(points)))
    return model.parameter_count * np.log(n) - 2.0 * total_ll


def aic(model: GaussianMixture, points: np.ndarray) -> float:
    """Akaike information criterion (lower is better)."""
    points = np.asarray(points, dtype=np.float64)
    if points.shape[0] == 0:
        raise ValueError("points must not be empty")
    total_ll = float(np.sum(model.log_score_samples(points)))
    return 2.0 * model.parameter_count - 2.0 * total_ll


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of a K selection sweep.

    Attributes
    ----------
    best_k:
        The K minimising the criterion.
    scores:
        Criterion value per candidate K.
    models:
        The fitted mixture per candidate K.
    """

    best_k: int
    scores: dict[int, float]
    models: dict[int, GaussianMixture]


def select_n_components(
    points: np.ndarray,
    candidates: tuple[int, ...],
    rng: np.random.Generator,
    criterion: str = "bic",
    max_iter: int = 60,
) -> SelectionResult:
    """Fit every candidate K and pick the criterion's minimiser.

    Parameters
    ----------
    points:
        Training data of shape ``(N, D)``.
    candidates:
        Mixture sizes to evaluate.
    criterion:
        ``"bic"`` (default) or ``"aic"``.
    """
    if not candidates:
        raise ValueError("candidates must not be empty")
    if criterion not in ("bic", "aic"):
        raise ValueError(f"unknown criterion {criterion!r}")
    score_fn = bic if criterion == "bic" else aic
    scores: dict[int, float] = {}
    models: dict[int, GaussianMixture] = {}
    for k in candidates:
        model = EMTrainer(
            n_components=k, max_iter=max_iter
        ).fit(points, rng).model
        models[k] = model
        scores[k] = score_fn(model, points)
    best_k = min(scores, key=scores.get)
    return SelectionResult(best_k=best_k, scores=scores, models=models)

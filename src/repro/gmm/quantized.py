"""Fixed-point GMM inference emulating the FPGA score pipeline.

The hardware engine of Sec. 4.1 streams (P, T) points through a deep
pipeline with initiation interval 1: per Gaussian it evaluates the
quadratic form with the precomputed inverse covariance, feeds the
exponent into an exp unit, weights by ``pi_k`` and accumulates through a
shift register.  This module reproduces that datapath bit-for-bit *in
structure*: all constants are stored in a fixed-point format, the exp
unit is a lookup table with linear interpolation, and the accumulator is
quantized after every addition.

The point of the emulation is twofold: it lets the test suite bound the
score error introduced by hardware quantization, and it provides the
operation counts that the FPGA resource model (:mod:`repro.hardware`)
uses to size the engine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gmm.model import GaussianMixture


@dataclass(frozen=True)
class FixedPointFormat:
    """Signed fixed-point format ``Q(total_bits - frac_bits).frac_bits``.

    Attributes
    ----------
    total_bits:
        Word width including the sign bit (e.g. 32).
    frac_bits:
        Bits to the right of the binary point (e.g. 20).
    """

    total_bits: int = 32
    frac_bits: int = 20

    def __post_init__(self) -> None:
        if self.total_bits < 2:
            raise ValueError("total_bits must be >= 2")
        if not 0 <= self.frac_bits < self.total_bits:
            raise ValueError(
                "frac_bits must satisfy 0 <= frac_bits < total_bits"
            )

    @property
    def scale(self) -> float:
        """Value of one least-significant bit."""
        return 2.0 ** (-self.frac_bits)

    @property
    def max_value(self) -> float:
        """Largest representable value."""
        return (2 ** (self.total_bits - 1) - 1) * self.scale

    @property
    def min_value(self) -> float:
        """Smallest (most negative) representable value."""
        return -(2 ** (self.total_bits - 1)) * self.scale

    def quantize(self, values: np.ndarray) -> np.ndarray:
        """Round ``values`` to the grid and saturate to the range.

        Saturation (rather than wrap-around) matches the HLS
        ``ap_fixed<..., AP_RND, AP_SAT>`` configuration a careful
        implementation would use.
        """
        values = np.asarray(values, dtype=np.float64)
        quantized = np.round(values / self.scale) * self.scale
        return np.clip(quantized, self.min_value, self.max_value)


class _ExpTable:
    """Lookup-table exponential: the pipeline's exp unit.

    Covers ``[input_floor, 0]`` with ``2**address_bits`` entries and
    linear interpolation; inputs below the floor return exactly zero
    (the hardware flushes them to zero because the true value is below
    one LSB of the output format).
    """

    def __init__(
        self, input_floor: float = -40.0, address_bits: int = 12
    ) -> None:
        if input_floor >= 0:
            raise ValueError("input_floor must be negative")
        self.input_floor = float(input_floor)
        self.address_bits = int(address_bits)
        self._n_entries = 2**address_bits
        self._grid = np.linspace(self.input_floor, 0.0, self._n_entries)
        self._table = np.exp(self._grid)
        self._step = self._grid[1] - self._grid[0]

    @property
    def n_entries(self) -> int:
        """Number of table entries (sizes one BRAM in the cost model)."""
        return self._n_entries

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        clipped = np.clip(values, self.input_floor, 0.0)
        position = (clipped - self.input_floor) / self._step
        low = np.floor(position).astype(np.int64)
        low = np.clip(low, 0, self._n_entries - 2)
        frac = position - low
        interpolated = (
            self._table[low] * (1.0 - frac) + self._table[low + 1] * frac
        )
        return np.where(values < self.input_floor, 0.0, interpolated)


class QuantizedGmm:
    """Fixed-point re-implementation of :meth:`GaussianMixture.score_samples`.

    Parameters
    ----------
    model:
        The float64 reference mixture (trained by EM in software, as the
        paper does -- training happens offline, only inference runs on
        the FPGA).
    fmt:
        Fixed-point format used for parameters and the accumulator.
    exp_table:
        The exp unit; defaults to a 4K-entry table over ``[-40, 0]``.

    Notes
    -----
    Restricted to ``n_features == 2`` -- the datapath hard-codes the
    2x2 symmetric inverse covariance (three multipliers per component),
    exactly as the paper's engine does.
    """

    def __init__(
        self,
        model: GaussianMixture,
        fmt: FixedPointFormat | None = None,
        exp_table: _ExpTable | None = None,
    ) -> None:
        if model.n_features != 2:
            raise ValueError(
                "QuantizedGmm supports 2-D mixtures only,"
                f" got n_features={model.n_features}"
            )
        self.fmt = fmt if fmt is not None else FixedPointFormat()
        self.exp_table = exp_table if exp_table is not None else _ExpTable()
        self._n_components = model.n_components
        covariances = model.covariances
        inverses = np.linalg.inv(covariances)
        dets = np.linalg.det(covariances)
        # Per-component constants, all quantized once at load time (the
        # "one-time loading from HBM before kernel starts" of Fig. 5).
        self._means = self.fmt.quantize(model.means)  # (K, 2)
        self._inv_a = self.fmt.quantize(inverses[:, 0, 0])
        self._inv_b = self.fmt.quantize(inverses[:, 0, 1])
        self._inv_c = self.fmt.quantize(inverses[:, 1, 1])
        # log(pi_k / (2 pi sqrt(det))) folded into a single additive
        # constant per component, so the exponent needs one add.
        with np.errstate(divide="ignore"):
            log_norm = np.log(model.weights) - np.log(
                2.0 * np.pi * np.sqrt(dets)
            )
        self._log_norm = self.fmt.quantize(log_norm)

    @property
    def n_components(self) -> int:
        """Number of Gaussian components in the pipeline."""
        return self._n_components

    @property
    def weight_buffer_bits(self) -> int:
        """Total parameter storage in bits (sizes the weight buffer).

        Six words per component: mean x/y, three inverse-covariance
        entries, and the folded log-normalisation constant.
        """
        return self._n_components * 6 * self.fmt.total_bits

    def multiply_accumulate_ops_per_point(self) -> int:
        """Fixed-point multiply ops needed to score one point.

        Per component: quadratic form ``a dx^2 + 2 b dx dy + c dy^2``
        costs 6 multiplies (dx*dx, dy*dy, dx*dy and the three
        coefficient products), plus one multiply inside the exp-table
        interpolation.  Used by the DSP-count model.
        """
        return self._n_components * 7

    def score_samples_reference(self, points: np.ndarray) -> np.ndarray:
        """Per-component-loop scoring (the executable specification).

        Follows the hardware order of operations: quantize the input,
        evaluate the quadratic form per component, add the folded
        log-constant, exponentiate through the table, and accumulate
        with quantization after every partial sum (the shift-register
        accumulator of Sec. 4.1).  The vectorized
        :meth:`score_samples` must match it bit for bit (asserted by
        the test suite).
        """
        points = self._validate_points(points)
        q = self.fmt.quantize
        x = q(points)
        accumulator = np.zeros(x.shape[0], dtype=np.float64)
        for k in range(self._n_components):
            dx = q(x[:, 0] - self._means[k, 0])
            dy = q(x[:, 1] - self._means[k, 1])
            quad = q(
                q(self._inv_a[k] * dx * dx)
                + q(2.0 * self._inv_b[k] * dx * dy)
                + q(self._inv_c[k] * dy * dy)
            )
            exponent = q(self._log_norm[k] - 0.5 * quad)
            term = q(self.exp_table(exponent))
            accumulator = q(accumulator + term)
        return accumulator

    #: Element budget of one ``(rows, K)`` term block in
    #: :meth:`score_samples` (bounds peak memory to a few MB).
    _BLOCK_ELEMENTS = 1 << 21

    def score_samples(self, points: np.ndarray) -> np.ndarray:
        """Quantized mixture score per point, shape ``(N,)``.

        Bit-identical to :meth:`score_samples_reference`, evaluated
        as whole ``(rows, K)`` arrays: every per-component operation
        is elementwise, so broadcasting across components reproduces
        the scalar loop's values exactly.  The one sequential step --
        the shift-register accumulator quantized after every add --
        collapses to a plain row sum whenever no partial sum
        saturates: all terms lie on the fixed-point grid, sums of
        grid values stay on the grid (and are exact in float64 at
        these magnitudes), so the per-step round is the identity.
        Rows whose running sum would leave the representable range
        are re-run through the reference loop to reproduce the
        saturation behaviour exactly.
        """
        points = self._validate_points(points)
        # The exactness argument needs every partial sum, measured in
        # LSBs, to stay inside float64's 2**53 integer range; K terms
        # of at most max_value each bound it by K * 2**(total_bits-1).
        if self._n_components * 2 ** (self.fmt.total_bits - 1) >= 2**53:
            return self.score_samples_reference(points)
        n = points.shape[0]
        out = np.empty(n, dtype=np.float64)
        rows_per_block = max(
            1, self._BLOCK_ELEMENTS // max(1, self._n_components)
        )
        q = self.fmt.quantize
        for lo in range(0, n, rows_per_block):
            block = points[lo : lo + rows_per_block]
            x = q(block)
            dx = q(x[:, 0:1] - self._means[None, :, 0])  # (m, K)
            dy = q(x[:, 1:2] - self._means[None, :, 1])
            quad = q(
                q(self._inv_a[None, :] * dx * dx)
                + q(2.0 * self._inv_b[None, :] * dx * dy)
                + q(self._inv_c[None, :] * dy * dy)
            )
            exponent = q(self._log_norm[None, :] - 0.5 * quad)
            terms = q(self.exp_table(exponent))
            partial = np.cumsum(terms, axis=1)
            in_range = (
                (partial <= self.fmt.max_value)
                & (partial >= self.fmt.min_value)
            ).all(axis=1)
            result = partial[:, -1]
            if not in_range.all():
                saturated = np.nonzero(~in_range)[0]
                result[saturated] = self.score_samples_reference(
                    block[saturated]
                )
            out[lo : lo + block.shape[0]] = result
        return out

    @staticmethod
    def _validate_points(points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[None, :]
        if points.shape[1] != 2:
            raise ValueError(
                f"points must have shape (N, 2), got {points.shape}"
            )
        return points

    def max_abs_error(
        self, reference: GaussianMixture, points: np.ndarray
    ) -> float:
        """Largest |quantized - float| score difference over ``points``."""
        exact = reference.score_samples(points)
        approx = self.score_samples(points)
        return float(np.max(np.abs(exact - approx)))

"""Incremental (online) GMM training -- stepwise EM.

The paper trains its GMM offline on a collected trace and freezes the
parameters in the FPGA weight buffer.  Real deployments face *drift*:
the access pattern changes when the workload mix shifts.  This module
implements the natural extension -- stepwise EM (Cappe & Moulines,
2009): the model keeps exponentially-forgotten sufficient statistics
and blends in each new mini-batch, so the mixture tracks the live
trace with bounded memory.  On hardware this is a periodic weight-
buffer refresh, no pipeline change.

Usage::

    online = OnlineGmm.from_model(initial_model)
    for batch in stream_of_feature_batches:
        online.update(batch, rng)
    scores = online.model.score_samples(points)
"""

from __future__ import annotations

import numpy as np

from repro.gmm import linalg
from repro.gmm.model import GaussianMixture


class OnlineGmm:
    """Stepwise-EM wrapper around a :class:`GaussianMixture`.

    Parameters
    ----------
    weights, means, covariances:
        Initial mixture parameters (typically from a batch EM fit on a
        warm-up trace).
    step_exponent:
        Learning-rate schedule ``rho_t = (t + t0) ** -step_exponent``;
        must lie in (0.5, 1] for stepwise-EM convergence guarantees.
        Smaller values adapt faster (more weight on new data).
    t0:
        Learning-rate offset; larger values damp early updates.
    reg_covar:
        Diagonal ridge applied after every parameter refresh.
    """

    def __init__(
        self,
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
        step_exponent: float = 0.7,
        t0: float = 2.0,
        reg_covar: float = 1e-6,
    ) -> None:
        if not 0.5 < step_exponent <= 1.0:
            raise ValueError("step_exponent must be in (0.5, 1]")
        if t0 <= 0:
            raise ValueError("t0 must be positive")
        self.step_exponent = step_exponent
        self.t0 = t0
        self.reg_covar = reg_covar
        self._model = GaussianMixture(weights, means, covariances)
        k, d = self._model.n_components, self._model.n_features
        # Normalised sufficient statistics (per-sample expectations):
        # s0[k] = E[r_k], s1[k] = E[r_k x], s2[k] = E[r_k x x^T].
        self._s0 = np.array(weights, dtype=np.float64)
        self._s1 = self._s0[:, None] * np.asarray(means, np.float64)
        covs = np.asarray(covariances, dtype=np.float64)
        mom2 = covs + np.einsum("ki,kj->kij", means, means)
        self._s2 = self._s0[:, None, None] * mom2
        self._step = 0

    @classmethod
    def from_model(cls, model: GaussianMixture, **kwargs) -> "OnlineGmm":
        """Wrap an existing mixture for incremental updates."""
        return cls(
            model.weights, model.means, model.covariances, **kwargs
        )

    @property
    def model(self) -> GaussianMixture:
        """The current mixture (rebuild after each update)."""
        return self._model

    @property
    def updates_applied(self) -> int:
        """Number of mini-batch updates performed."""
        return self._step

    def _learning_rate(self) -> float:
        return float(
            (self._step + self.t0) ** (-self.step_exponent)
        )

    def update(self, points: np.ndarray) -> float:
        """Blend one mini-batch into the model; returns its mean ll.

        E-step under the current parameters, then a stepwise blend of
        the batch's sufficient statistics into the running ones, then
        a parameter refresh (the M-step applied to blended stats).
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[1] != self._model.n_features:
            raise ValueError(
                f"points must have shape (N, {self._model.n_features})"
            )
        if points.shape[0] == 0:
            raise ValueError("batch must not be empty")
        # One density pass serves both the responsibilities and the
        # batch log-likelihood (its normaliser *is* the per-sample
        # log-score) -- the former two-call version paid the full
        # (N, K) triangular-solve twice per mini-batch, which
        # dominated refresh latency.
        weighted = self._model.log_weighted_densities(points)
        log_norm = linalg.logsumexp(weighted, axis=1)
        resp = np.exp(weighted - log_norm[:, None])
        batch_ll = float(np.mean(log_norm))
        n, d = points.shape
        batch_s0 = resp.sum(axis=0) / n
        batch_s1 = (resp.T @ points) / n
        # All K second-moment matrices from one GEMM over per-sample
        # outer products (replaces an O(N K D^2) einsum with a far
        # better-tuned matrix product).
        moment_matrix = (
            points[:, :, None] * points[:, None, :]
        ).reshape(n, d * d)
        batch_s2 = (resp.T @ moment_matrix).reshape(-1, d, d) / n
        self._step += 1
        rho = self._learning_rate()
        self._s0 = (1 - rho) * self._s0 + rho * batch_s0
        self._s1 = (1 - rho) * self._s1 + rho * batch_s1
        self._s2 = (1 - rho) * self._s2 + rho * batch_s2
        self._refresh_parameters()
        return batch_ll

    def _refresh_parameters(self) -> None:
        """M-step on the blended sufficient statistics."""
        s0_safe = np.maximum(self._s0, 1e-12)
        weights = self._s0 / self._s0.sum()
        means = self._s1 / s0_safe[:, None]
        mom2 = self._s2 / s0_safe[:, None, None]
        covariances = mom2 - np.einsum("ki,kj->kij", means, means)
        covariances = linalg.ensure_positive_definite(
            covariances, self.reg_covar
        )
        self._model = GaussianMixture(weights, means, covariances)

    def score_samples(self, points: np.ndarray) -> np.ndarray:
        """Score under the current mixture (policy-engine interface)."""
        return self._model.score_samples(points)

"""Dense linear-algebra kernels for small-dimension Gaussian mixtures.

The paper's GMM is two-dimensional (Eq. 2: ``x = [P, T]``), so every
covariance is a tiny symmetric positive-definite matrix.  These helpers
operate on *batches* of such matrices, shaped ``(K, D, D)`` for ``K``
mixture components, and avoid any dependency beyond numpy.
"""

from __future__ import annotations

import numpy as np

#: Smallest diagonal jitter used when repairing a non-PD covariance.
_MIN_JITTER = 1e-12

#: Element budget for the batched-solve temporaries (block * K * D);
#: ~4M float64 elements keeps each temporary around 32 MB.
_SOLVE_TEMP_ELEMENTS = 1 << 22


class NotPositiveDefiniteError(ValueError):
    """Raised when a covariance matrix cannot be Cholesky-factorised."""


def cholesky_batch(covariances: np.ndarray) -> np.ndarray:
    """Cholesky-factorise a batch of SPD matrices.

    Parameters
    ----------
    covariances:
        Array of shape ``(K, D, D)``; each slice must be symmetric
        positive-definite.

    Returns
    -------
    numpy.ndarray
        Lower-triangular factors ``L`` with ``L @ L.T == covariance``,
        shape ``(K, D, D)``.

    Raises
    ------
    NotPositiveDefiniteError
        If any matrix in the batch is not positive-definite.
    """
    covariances = np.asarray(covariances, dtype=np.float64)
    if covariances.ndim != 3 or covariances.shape[1] != covariances.shape[2]:
        raise ValueError(
            f"expected shape (K, D, D), got {covariances.shape!r}"
        )
    try:
        return np.linalg.cholesky(covariances)
    except np.linalg.LinAlgError as exc:
        raise NotPositiveDefiniteError(
            "covariance batch contains a non positive-definite matrix"
        ) from exc


def regularize_covariances(
    covariances: np.ndarray, reg_covar: float
) -> np.ndarray:
    """Add ``reg_covar`` to every diagonal, returning a new array.

    EM shrinks covariances towards singularity when a component captures
    very few points; the standard fix (also used by the reference EM
    literature the paper cites) is a small diagonal ridge.
    """
    if reg_covar < 0:
        raise ValueError(f"reg_covar must be non-negative, got {reg_covar}")
    covariances = np.array(covariances, dtype=np.float64, copy=True)
    k, d, _ = covariances.shape
    idx = np.arange(d)
    covariances[:, idx, idx] += reg_covar
    return covariances


def ensure_positive_definite(
    covariances: np.ndarray, reg_covar: float = 1e-6, max_tries: int = 8
) -> np.ndarray:
    """Return a PD-repaired copy of a covariance batch.

    Repeatedly increases the diagonal jitter (starting from
    ``max(reg_covar, _MIN_JITTER)``, multiplying by 10) until the whole
    batch factorises.  Gives up after ``max_tries`` escalations.
    """
    jitter = max(reg_covar, _MIN_JITTER)
    repaired = np.array(covariances, dtype=np.float64, copy=True)
    # Symmetrise first: EM updates can drift off-symmetric by rounding.
    repaired = 0.5 * (repaired + np.swapaxes(repaired, 1, 2))
    for _ in range(max_tries):
        try:
            cholesky_batch(regularize_covariances(repaired, jitter))
        except NotPositiveDefiniteError:
            jitter *= 10.0
        else:
            return regularize_covariances(repaired, jitter)
    raise NotPositiveDefiniteError(
        f"could not repair covariance batch after {max_tries} attempts"
    )


def log_det_from_cholesky(cholesky_factors: np.ndarray) -> np.ndarray:
    """Log-determinants of SPD matrices from their Cholesky factors.

    ``log det(Sigma) = 2 * sum(log(diag(L)))`` for ``Sigma = L L^T``.
    Returns shape ``(K,)``.
    """
    k, d, _ = cholesky_factors.shape
    diag = cholesky_factors[:, np.arange(d), np.arange(d)]
    return 2.0 * np.sum(np.log(diag), axis=1)


def mahalanobis_squared_batch(
    points: np.ndarray, means: np.ndarray, cholesky_factors: np.ndarray
) -> np.ndarray:
    """Squared Mahalanobis distance of each point to each component.

    Parameters
    ----------
    points:
        Shape ``(N, D)``.
    means:
        Shape ``(K, D)``.
    cholesky_factors:
        Shape ``(K, D, D)`` lower factors of the covariances.

    Returns
    -------
    numpy.ndarray
        Shape ``(N, K)``; entry ``(n, k)`` is
        ``(x_n - mu_k)^T Sigma_k^{-1} (x_n - mu_k)``.
    """
    points = np.asarray(points, dtype=np.float64)
    n, d = points.shape
    k = means.shape[0]
    # Batched forward substitution: solve L_k z = (x_n - mu_k) for
    # every (point, component) pair at once.  The D-step loop runs
    # over the *tiny* feature dimension (2 for the paper's [P, T]
    # features) while each step is a vectorized (block, K) operation
    # -- replacing the former per-component ``np.linalg.solve`` loop,
    # which also ignored the factors' triangularity.  Points are
    # processed in blocks so the (block, K, D) temporaries stay
    # memory-bounded on arbitrarily long request streams.
    out = np.empty((n, k), dtype=np.float64)
    block = max(1, _SOLVE_TEMP_ELEMENTS // max(k * d, 1))
    for lo in range(0, n, block):
        hi = min(lo + block, n)
        centered = points[lo:hi, None, :] - means[None, :, :]
        z = np.empty_like(centered)  # (block, K, D)
        for i in range(d):
            acc = centered[:, :, i]
            if i:
                acc = acc - np.einsum(
                    "nkj,kj->nk",
                    z[:, :, :i],
                    cholesky_factors[:, i, :i],
                )
            z[:, :, i] = acc / cholesky_factors[:, i, i]
        np.einsum("nkd,nkd->nk", z, z, out=out[lo:hi])
    return out


def log_gaussian_density(
    points: np.ndarray, means: np.ndarray, covariances: np.ndarray
) -> np.ndarray:
    """Per-component log N(x | mu_k, Sigma_k) for a batch of points.

    Implements the log of Eq. 1 of the paper for every (point, component)
    pair.  Returns shape ``(N, K)``.
    """
    points = np.asarray(points, dtype=np.float64)
    d = points.shape[1]
    factors = cholesky_batch(covariances)
    maha = mahalanobis_squared_batch(points, means, factors)
    log_det = log_det_from_cholesky(factors)  # (K,)
    return -0.5 * (d * np.log(2.0 * np.pi) + log_det[None, :] + maha)


def logsumexp(values: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable ``log(sum(exp(values)))`` along ``axis``.

    Handles rows that are entirely ``-inf`` (probability zero under
    every component) by returning ``-inf`` for them instead of NaN.
    """
    values = np.asarray(values, dtype=np.float64)
    peak = np.max(values, axis=axis, keepdims=True)
    # Rows of all -inf would produce (-inf) - (-inf) = nan below.
    safe_peak = np.where(np.isfinite(peak), peak, 0.0)
    summed = np.sum(np.exp(values - safe_peak), axis=axis)
    with np.errstate(divide="ignore"):
        result = np.log(summed) + np.squeeze(safe_peak, axis=axis)
    return np.where(
        np.isfinite(np.squeeze(peak, axis=axis)), result, -np.inf
    )

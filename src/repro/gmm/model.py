"""The Gaussian Mixture Model used as the cache policy's scorer.

Implements Eq. 1-3 of the paper: ``K`` two-dimensional Gaussian
components with full covariances, mixed by normalised weights ``pi_k``.
The mixture density

    G(x) = sum_k pi_k N(x | mu_k, Sigma_k)

is the *score* that predicts the future access frequency of the page
whose (transformed address, transformed timestamp) pair is ``x``.
The class is dimension-generic, but the paper (and this repository's
cache engine) always uses ``n_features == 2``.
"""

from __future__ import annotations

import numpy as np

from repro.gmm import linalg

#: Tolerance for checking that mixture weights sum to one.
_WEIGHT_TOL = 1e-8


class GaussianMixture:
    """Inference-side Gaussian mixture with fixed parameters.

    Parameters
    ----------
    weights:
        Component weights ``pi_k``, shape ``(K,)``; non-negative, summing
        to one (Sec. 2.3).
    means:
        Component means ``mu_k``, shape ``(K, D)``.
    covariances:
        Component covariances ``Sigma_k``, shape ``(K, D, D)``; each must
        be symmetric positive-definite.

    Notes
    -----
    The constructor validates and *copies* its inputs, then precomputes
    the Cholesky factors and log-determinants so that scoring is a pure
    pipelined computation -- mirroring the FPGA engine, which loads the
    weight buffer once and then streams points through (Sec. 4.1).
    """

    def __init__(
        self,
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
    ) -> None:
        weights = np.array(weights, dtype=np.float64, copy=True)
        means = np.array(means, dtype=np.float64, copy=True)
        covariances = np.array(covariances, dtype=np.float64, copy=True)
        if weights.ndim != 1:
            raise ValueError(f"weights must be 1-D, got shape {weights.shape}")
        k = weights.shape[0]
        if means.ndim != 2 or means.shape[0] != k:
            raise ValueError(
                f"means must have shape (K={k}, D), got {means.shape}"
            )
        d = means.shape[1]
        if covariances.shape != (k, d, d):
            raise ValueError(
                f"covariances must have shape ({k}, {d}, {d}),"
                f" got {covariances.shape}"
            )
        if np.any(weights < 0):
            raise ValueError("weights must be non-negative")
        total = float(np.sum(weights))
        if not np.isclose(total, 1.0, atol=_WEIGHT_TOL):
            raise ValueError(f"weights must sum to 1, got {total}")
        self._weights = weights
        self._means = means
        self._covariances = covariances
        self._cholesky = linalg.cholesky_batch(covariances)
        self._log_det = linalg.log_det_from_cholesky(self._cholesky)
        with np.errstate(divide="ignore"):
            self._log_weights = np.log(weights)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_components(self) -> int:
        """Number of Gaussian components ``K``."""
        return self._weights.shape[0]

    @property
    def n_features(self) -> int:
        """Dimensionality ``D`` of the input points (2 in the paper)."""
        return self._means.shape[1]

    @property
    def weights(self) -> np.ndarray:
        """Copy of the mixture weights ``pi``."""
        return self._weights.copy()

    @property
    def means(self) -> np.ndarray:
        """Copy of the component means ``mu``."""
        return self._means.copy()

    @property
    def covariances(self) -> np.ndarray:
        """Copy of the component covariances ``Sigma``."""
        return self._covariances.copy()

    @property
    def parameter_count(self) -> int:
        """Number of free scalar parameters in the mixture.

        ``K - 1`` weights plus ``K * D`` means plus ``K * D(D+1)/2``
        covariance entries.  Used by the FPGA resource model to size the
        on-board weight buffer.
        """
        k, d = self.n_components, self.n_features
        return (k - 1) + k * d + k * (d * (d + 1) // 2)

    def __repr__(self) -> str:
        return (
            f"GaussianMixture(n_components={self.n_components},"
            f" n_features={self.n_features})"
        )

    # ------------------------------------------------------------------
    # Densities and scores
    # ------------------------------------------------------------------
    def _validate_points(self, points: np.ndarray) -> np.ndarray:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim == 1:
            points = points[None, :]
        if points.ndim != 2 or points.shape[1] != self.n_features:
            raise ValueError(
                f"points must have shape (N, {self.n_features}),"
                f" got {points.shape}"
            )
        return points

    def log_component_densities(self, points: np.ndarray) -> np.ndarray:
        """``log N(x_n | mu_k, Sigma_k)`` for every point and component.

        Returns shape ``(N, K)``.
        """
        points = self._validate_points(points)
        maha = linalg.mahalanobis_squared_batch(
            points, self._means, self._cholesky
        )
        d = self.n_features
        return -0.5 * (
            d * np.log(2.0 * np.pi) + self._log_det[None, :] + maha
        )

    def log_weighted_densities(self, points: np.ndarray) -> np.ndarray:
        """``log pi_k + log N(x_n | mu_k, Sigma_k)``, shape ``(N, K)``.

        The shared intermediate of scoring and responsibilities: its
        row-wise logsumexp is ``log G(x)`` and its row-normalised
        form the posterior.  Exposed so incremental trainers
        (:class:`repro.gmm.online.OnlineGmm`) can derive both from
        one density pass.
        """
        return self.log_component_densities(points) + self._log_weights

    def log_score_samples(self, points: np.ndarray) -> np.ndarray:
        """Log of the mixture density ``log G(x)`` per point (Eq. 3)."""
        weighted = self.log_weighted_densities(points)
        return linalg.logsumexp(weighted, axis=1)

    def score_samples(self, points: np.ndarray) -> np.ndarray:
        """Mixture density ``G(x)`` per point -- the paper's cache score.

        Higher scores indicate addresses in denser regions of the learnt
        access distribution, i.e. pages predicted to be accessed more
        frequently (Sec. 3.2).
        """
        return np.exp(self.log_score_samples(points))

    def mean_log_likelihood(self, points: np.ndarray) -> float:
        """Average per-sample log-likelihood of ``points``."""
        return float(np.mean(self.log_score_samples(points)))

    def log_responsibilities(self, points: np.ndarray) -> np.ndarray:
        """Posterior ``log p(k | x_n)`` (Bayes step of Sec. 3.3).

        Returns shape ``(N, K)``; each row log-sums to zero.
        """
        weighted = self.log_weighted_densities(points)
        norm = linalg.logsumexp(weighted, axis=1)
        return weighted - norm[:, None]

    def predict(self, points: np.ndarray) -> np.ndarray:
        """Hard component assignment per point, shape ``(N,)``."""
        return np.argmax(self.log_responsibilities(points), axis=1)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, n_samples: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n_samples`` points from the mixture.

        Used by tests (round-tripping EM on known mixtures) and by the
        synthetic trace generators to plant Gaussian spatial clusters.
        """
        if n_samples < 0:
            raise ValueError(f"n_samples must be >= 0, got {n_samples}")
        counts = rng.multinomial(n_samples, self._weights)
        chunks = []
        for k, count in enumerate(counts):
            if count == 0:
                continue
            noise = rng.standard_normal((count, self.n_features))
            chunks.append(self._means[k] + noise @ self._cholesky[k].T)
        if not chunks:
            return np.empty((0, self.n_features), dtype=np.float64)
        samples = np.concatenate(chunks, axis=0)
        rng.shuffle(samples)
        return samples

"""Expectation-Maximization training for the Gaussian mixture.

Sec. 3.3 of the paper: unsupervised EM with (1) an expectation step
computing, via Bayes' theorem, the probability of each trace belonging
to each Gaussian, (2) a maximization step updating ``pi``, ``mu`` and
``Sigma``, and (3) a convergence test on the change of the maximum
likelihood estimate between iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gmm import linalg
from repro.gmm.kmeans import kmeans
from repro.gmm.model import GaussianMixture


@dataclass(frozen=True)
class FitResult:
    """Outcome of one EM fit.

    Attributes
    ----------
    model:
        The trained :class:`GaussianMixture`.
    converged:
        Whether the MLE-change test fired before ``max_iter``.
    n_iter:
        EM iterations executed.
    log_likelihood:
        Final mean per-sample log-likelihood.
    history:
        Mean log-likelihood after each iteration (monotonically
        non-decreasing -- a property the test suite asserts).
    """

    model: GaussianMixture
    converged: bool
    n_iter: int
    log_likelihood: float
    history: tuple[float, ...] = field(repr=False, default=())


class EMTrainer:
    """Expectation-Maximization trainer for :class:`GaussianMixture`.

    Parameters
    ----------
    n_components:
        Number of Gaussians ``K`` (the paper's prototype uses 256; the
        simulator default in :mod:`repro.core.config` is smaller because
        miss-rate results saturate well below that on synthetic traces).
    max_iter:
        Upper bound on EM iterations.
    tol:
        Convergence threshold on the change in mean log-likelihood
        between iterations (the "change in MLE" test of Sec. 3.3).
    reg_covar:
        Diagonal ridge added to every covariance at each M-step, keeping
        components positive-definite when they collapse onto few points.
    init:
        ``"kmeans"`` (k-means++ seeding then per-cluster moments, the
        default) or ``"random"`` (random responsibilities).
    n_init:
        Number of independent restarts; the fit with the best final
        log-likelihood wins.
    """

    def __init__(
        self,
        n_components: int,
        max_iter: int = 100,
        tol: float = 1e-4,
        reg_covar: float = 1e-6,
        init: str = "kmeans",
        n_init: int = 1,
    ) -> None:
        if n_components < 1:
            raise ValueError(
                f"n_components must be >= 1, got {n_components}"
            )
        if max_iter < 1:
            raise ValueError(f"max_iter must be >= 1, got {max_iter}")
        if tol <= 0:
            raise ValueError(f"tol must be > 0, got {tol}")
        if init not in ("kmeans", "random"):
            raise ValueError(f"unknown init method: {init!r}")
        if n_init < 1:
            raise ValueError(f"n_init must be >= 1, got {n_init}")
        self.n_components = n_components
        self.max_iter = max_iter
        self.tol = tol
        self.reg_covar = reg_covar
        self.init = init
        self.n_init = n_init

    # ------------------------------------------------------------------
    # Initialisation
    # ------------------------------------------------------------------
    def _initial_parameters(
        self,
        points: np.ndarray,
        rng: np.random.Generator,
        moments=None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Produce (weights, means, covariances) to start EM from."""
        n, d = points.shape
        k = self.n_components
        if self.init == "kmeans":
            result = kmeans(points, k, rng)
            labels = result.labels
            responsibilities = np.zeros((n, k), dtype=np.float64)
            responsibilities[np.arange(n), labels] = 1.0
        else:
            responsibilities = rng.random((n, k))
            responsibilities /= responsibilities.sum(axis=1, keepdims=True)
        return self._m_step(points, responsibilities, moments)

    # ------------------------------------------------------------------
    # E and M steps
    # ------------------------------------------------------------------
    @staticmethod
    def _moment_features(
        points: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """(global mean, per-sample shifted second moments).

        Both depend only on ``points``, so a fit computes them once
        and reuses them across every M-step (the flattened moment
        matrix is the larger of the two: ``(N, D*D)``).
        """
        n, d = points.shape
        global_mean = points.mean(axis=0)
        shifted = points - global_mean  # (N, D)
        moment_matrix = (
            shifted[:, :, None] * shifted[:, None, :]
        ).reshape(n, d * d)
        return global_mean, moment_matrix

    def _m_step(
        self,
        points: np.ndarray,
        responsibilities: np.ndarray,
        moments: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Maximisation step: moment-match each component.

        Given responsibilities ``r_{nk}``, computes

        * ``N_k = sum_n r_{nk}``
        * ``pi_k = N_k / N``
        * ``mu_k = sum_n r_{nk} x_n / N_k``
        * ``Sigma_k = sum_n r_{nk} (x_n - mu_k)(x_n - mu_k)^T / N_k``

        with a ``reg_covar`` ridge on each ``Sigma_k`` diagonal.
        """
        n, d = points.shape
        k = responsibilities.shape[1]
        nk = responsibilities.sum(axis=0)  # (K,)
        # A component that lost all mass keeps a tiny floor so the
        # division below stays finite; its weight becomes ~0.
        nk_safe = np.maximum(nk, 10.0 * np.finfo(np.float64).tiny)
        weights = nk / n
        weights = weights / weights.sum()
        means = (responsibilities.T @ points) / nk_safe[:, None]
        # All K scatter matrices from one GEMM over per-sample second
        # moments -- replaces the former component-at-a-time Python
        # loop (the EM hot spot: K skinny matmuls plus 3K
        # temporaries per iteration).  Moments are taken around the
        # *global* mean, so the usual E[yy^T] - E[y]E[y]^T
        # cancellation is scaled by the data spread rather than the
        # raw feature magnitude (numerically benign), and the result
        # is exactly symmetric.
        if moments is None:
            moments = self._moment_features(points)
        global_mean, moment_matrix = moments
        second_moment = (
            responsibilities.T @ moment_matrix
        ).reshape(k, d, d) / nk_safe[:, None, None]
        delta = means - global_mean  # (K, D)
        covariances = second_moment - delta[:, :, None] * delta[:, None, :]
        # A zero-mass component has means[j] = 0 (not the conditional
        # mean), so the identity above would yield the spurious
        # -global_mean outer product; match the old per-component
        # loop, which degraded to the regularized zero matrix.
        dead = nk <= 10.0 * np.finfo(np.float64).tiny
        if np.any(dead):
            covariances[dead] = 0.0
        # Cancellation guard: the shifted-moment identity loses about
        # eps * |terms| of absolute accuracy, which can swamp (or turn
        # negative) a genuinely tiny variance when a component sits
        # far from the global mean of raw-scale data.  Components
        # whose smallest variance falls inside that noise band are
        # recomputed with the exact centered form (PSD by
        # construction); the suspect set is empty on standardised
        # features, keeping the fast path one GEMM.
        eps = np.finfo(np.float64).eps
        term_scale = np.abs(second_moment).reshape(k, -1).max(axis=1)
        min_variance = covariances[:, np.arange(d), np.arange(d)].min(
            axis=1
        )
        suspect = (min_variance <= 64.0 * eps * term_scale) & ~dead
        for j in np.nonzero(suspect)[0]:
            centered = points - means[j]
            weighted = responsibilities[:, j : j + 1] * centered
            covariances[j] = (weighted.T @ centered) / nk_safe[j]
        covariances = linalg.regularize_covariances(
            covariances, self.reg_covar
        )
        return weights, means, covariances

    def _e_step(
        self,
        points: np.ndarray,
        weights: np.ndarray,
        means: np.ndarray,
        covariances: np.ndarray,
    ) -> tuple[np.ndarray, float]:
        """Expectation step.

        Returns the responsibility matrix ``(N, K)`` and the mean
        per-sample log-likelihood under the current parameters.
        """
        log_density = linalg.log_gaussian_density(points, means, covariances)
        with np.errstate(divide="ignore"):
            weighted = log_density + np.log(weights)[None, :]
        log_norm = linalg.logsumexp(weighted, axis=1)
        log_resp = weighted - log_norm[:, None]
        return np.exp(log_resp), float(np.mean(log_norm))

    # ------------------------------------------------------------------
    # Fit
    # ------------------------------------------------------------------
    def _fit_once(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> FitResult:
        moments = self._moment_features(points)
        weights, means, covariances = self._initial_parameters(
            points, rng, moments
        )
        history: list[float] = []
        previous = -np.inf
        converged = False
        n_iter = 0
        for n_iter in range(1, self.max_iter + 1):
            responsibilities, log_likelihood = self._e_step(
                points, weights, means, covariances
            )
            weights, means, covariances = self._m_step(
                points, responsibilities, moments
            )
            history.append(log_likelihood)
            if abs(log_likelihood - previous) < self.tol:
                converged = True
                break
            previous = log_likelihood
        covariances = linalg.ensure_positive_definite(
            covariances, self.reg_covar
        )
        model = GaussianMixture(weights, means, covariances)
        return FitResult(
            model=model,
            converged=converged,
            n_iter=n_iter,
            log_likelihood=model.mean_log_likelihood(points),
            history=tuple(history),
        )

    def fit(
        self, points: np.ndarray, rng: np.random.Generator
    ) -> FitResult:
        """Fit the mixture to ``points`` of shape ``(N, D)``.

        Runs ``n_init`` independent EM restarts and returns the result
        with the highest final log-likelihood.
        """
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2:
            raise ValueError(
                f"points must have shape (N, D), got {points.shape}"
            )
        if points.shape[0] < self.n_components:
            raise ValueError(
                f"need at least n_components={self.n_components} points,"
                f" got {points.shape[0]}"
            )
        best: FitResult | None = None
        for _ in range(self.n_init):
            result = self._fit_once(points, rng)
            if best is None or result.log_likelihood > best.log_likelihood:
                best = result
        assert best is not None  # n_init >= 1
        return best


def fit_gmm(
    points: np.ndarray,
    n_components: int,
    rng: np.random.Generator,
    **kwargs,
) -> GaussianMixture:
    """Convenience wrapper: train and return just the model.

    Keyword arguments are forwarded to :class:`EMTrainer`.
    """
    trainer = EMTrainer(n_components=n_components, **kwargs)
    return trainer.fit(points, rng).model
